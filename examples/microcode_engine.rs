//! The protocol-engine microsequencer of paper §2.5.1, running the
//! paper's own example: "a typical read transaction to a remote home
//! involves a total of four instructions at the remote engine ... a SEND
//! of the request to the home, a RECEIVE of the reply, a TEST of a state
//! variable, and an LSEND that replies to the waiting processor".
//!
//! Run with: `cargo run --release --example microcode_engine`

use piranha::protocol::microcode::{MicroAsm, MicroEffect, MicroEngine, MicroInstr};
use piranha::types::LineAddr;

const MSG_READ: u8 = 1;
const MSG_DATA: u8 = 2;
const MSG_FILL: u8 = 3;

fn main() {
    // Microcode for the remote engine's read path.
    let mut asm = MicroAsm::new();
    asm.label("read");
    asm.send(MSG_READ, 0); // SEND read -> home (node id in var0)
    asm.receive("reply_table"); // RECEIVE reply (16-way dispatch)
    asm.align16();
    asm.label("reply_table");
    for i in 0..16u8 {
        if i == MSG_DATA {
            asm.test(1, "state_table"); // TEST state variable
        } else {
            asm.lsend_end(0);
        }
    }
    asm.align16();
    asm.label("state_table");
    asm.lsend_end(MSG_FILL); // LSEND fill to the waiting processor
    for _ in 1..16 {
        asm.lsend_end(0);
    }
    let program = asm.assemble();
    println!("microstore: {} of 1024 instructions used", program.len());
    for (i, mi) in program.iter().take(4).enumerate() {
        println!("  [{i:>3}] {:?} (encoded {:#07x})", mi.op, mi.encode());
    }
    assert_eq!(MicroInstr::decode(program[0].encode()), program[0]);

    let mut engine = MicroEngine::new(program);
    let line = LineAddr(0x40);
    println!("\n-- transaction start: read of {line} --");
    let fx = engine.start(line, 0, /* home node */ 3).unwrap();
    println!("effects: {fx:?}");
    println!("TSRF occupancy while waiting: {}", engine.occupancy());
    let fx = engine.deliver(line, MSG_DATA, false);
    println!("reply delivered, effects: {fx:?}");
    assert!(fx.contains(&MicroEffect::LocalSend { msg_type: MSG_FILL }));
    println!(
        "\ntotal microinstructions executed: {} (the paper's four)",
        engine.executed()
    );
}
