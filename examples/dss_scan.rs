//! DSS (TPC-D Q6-like) scan: the workload where wide-issue out-of-order
//! shines — and where eight simple cores still win on throughput.
//!
//! Run with: `cargo run --release --example dss_scan`

use piranha::experiments::RunScale;
use piranha::workloads::{DssConfig, Workload};
use piranha::{Machine, SystemConfig};

fn main() {
    let scale = RunScale::quick();
    let w = Workload::Dss(DssConfig::paper_default());
    let mut results = Vec::new();
    for cfg in [
        SystemConfig::piranha_p1(),
        SystemConfig::ino(),
        SystemConfig::ooo(),
        SystemConfig::piranha_p8(),
    ] {
        let name = cfg.name.clone();
        let mut m = Machine::new(cfg, &w);
        let r = m.run(scale.warmup, scale.measure);
        println!(
            "{:<5} {:>8.2} instrs/ns | busy {:>3.0}% | memory stall {:>3.0}%",
            name,
            r.throughput_ipns(),
            r.breakdown().busy * 100.0,
            r.breakdown().l2_miss * 100.0
        );
        results.push(r);
    }
    let ooo = &results[2];
    println!(
        "\nOOO beats the in-order INO by {:.1}x on DSS (ILP pays off),\n\
         but P8's eight cores still deliver {:.1}x OOO's throughput.",
        results[1].normalized_time_vs(ooo),
        results[3].speedup_over(ooo)
    );
}
