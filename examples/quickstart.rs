//! Quickstart: build the paper's 8-CPU Piranha chip, run the OLTP
//! workload, and print the headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use piranha::experiments::RunScale;
use piranha::workloads::{OltpConfig, Workload};
use piranha::{Machine, SystemConfig};

fn main() {
    let scale = RunScale::quick();

    // The paper's two single-chip contenders (Table 1).
    let p8 = SystemConfig::piranha_p8();
    let ooo = SystemConfig::ooo();
    println!("Configurations:\n{}", piranha::experiments::table1());

    let workload = Workload::Oltp(OltpConfig::paper_default());

    println!("Running OLTP on P8 (8 x 500 MHz in-order CPUs)...");
    let mut m = Machine::new(p8, &workload);
    let rp8 = m.run(scale.warmup, scale.measure);
    let b = rp8.breakdown();
    println!(
        "  throughput {:.2} instrs/ns | busy {:.0}% | L2-hit stall {:.0}% | L2-miss stall {:.0}%",
        rp8.throughput_ipns(),
        b.busy * 100.0,
        b.l2_hit * 100.0,
        b.l2_miss * 100.0
    );
    let (hit, fwd, miss) = rp8.l1_miss_breakdown();
    println!(
        "  L1 misses served by: L2 {:.0}% | another L1 {:.0}% | memory {:.0}%",
        hit * 100.0,
        fwd * 100.0,
        miss * 100.0
    );
    println!(
        "  RDRAM open-page hit rate: {:.0}%",
        m.mem_page_hit_rate() * 100.0
    );

    println!("Running OLTP on OOO (1 GHz 4-issue out-of-order)...");
    let mut m = Machine::new(ooo, &workload);
    let rooo = m.run(scale.warmup, scale.measure);
    println!("  throughput {:.2} instrs/ns", rooo.throughput_ipns());

    println!(
        "\nP8 outperforms OOO by {:.2}x on OLTP (paper: 2.3-2.9x)",
        rp8.speedup_over(&rooo)
    );
}
