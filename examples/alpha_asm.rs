//! Run a real Alpha-subset program through the Piranha core timing model:
//! the assembler, functional interpreter, and in-order pipeline together.
//!
//! Run with: `cargo run --release --example alpha_asm`

use piranha::cpu::IsaStream;
use piranha::isa::{asm, Machine as IsaMachine};
use piranha::workloads::Workload;
use piranha::{Machine, SystemConfig};

const PROGRAM: &str = r#"
    ; Sum an array of 64 quadwords at 0x10000, then store the result
    ; and a checksum computed with wh64-prepared buffers.
        li   r1, 0x10000     ; array base
        li   r2, 64          ; count
        li   r3, 0           ; sum
    loop:
        ldq  r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 8
        subi r2, r2, 1
        bgt  r2, loop
        li   r5, 0x20000     ; result buffer
        wh64 (r5)            ; whole-line store hint
        stq  r3, 0(r5)
        halt
"#;

fn main() {
    let prog = asm::assemble(PROGRAM).expect("assembles");
    println!("{} instructions assembled", prog.instrs.len());

    // Functional run: seed memory, execute, inspect the sum.
    let mut func = IsaMachine::new(prog.clone());
    for i in 0..64u64 {
        func.mem_mut()
            .write_u64(piranha::types::Addr(0x10000 + i * 8), i + 1);
    }
    func.run(10_000).expect("halts");
    let sum = func.mem().read_u64(piranha::types::Addr(0x20000));
    println!("functional result: sum = {sum} (expect {})", 64 * 65 / 2);

    // Timing run: the same program drives a single-CPU Piranha chip.
    let mut timed = IsaMachine::new(prog);
    for i in 0..64u64 {
        timed
            .mem_mut()
            .write_u64(piranha::types::Addr(0x10000 + i * 8), i + 1);
    }
    let stream = IsaStream::new(timed);
    let mut machine = Machine::with_streams(SystemConfig::piranha_p1(), vec![Box::new(stream)]);
    machine.run_until_total(u64::MAX); // runs until the program halts
    let stats = machine.cpu_stats().remove(0);
    println!(
        "timing: {} instructions in {} — {} L1d misses, {} L1i misses",
        stats.instrs,
        machine.now(),
        stats.l1d_misses,
        stats.l1i_misses
    );
    let _ = Workload::Synth; // (see synth example usage in the docs)
}
