//! The Piranha I/O node (paper §2, Figure 2): a stripped-down chip with
//! one CPU and one L2/MC pair whose memory and device traffic fully
//! participate in the global coherence protocol — "I/O is a full-fledged
//! member of the interconnect".
//!
//! Run with: `cargo run --release --example io_node`

use piranha::workloads::{OltpConfig, Workload};
use piranha::{Machine, SystemConfig};

fn main() {
    // Two 4-CPU processing chips plus one I/O chip whose CPU runs the
    // device-driver/DMA stream (the paper's motivation for putting a
    // core on the I/O chip: drivers run next to the devices).
    let cfg = SystemConfig::piranha_pn(4)
        .scaled_to_chips(2)
        .with_io_nodes(1);
    let mut m = Machine::new(cfg, &Workload::Oltp(OltpConfig::paper_default()));
    m.run_until_total(400_000);
    m.check_coherence();

    let stats = m.cpu_stats();
    let io = stats.last().unwrap();
    println!(
        "I/O-node CPU: {} driver instructions, {} remote fills (coherent DMA)",
        io.instrs,
        io.fills[3] + io.fills[4]
    );
    for node in 0..3 {
        let sc = m.system_controller(node);
        println!(
            "node {node}: SC handled {} control packets, routes ready: {}",
            sc.packets_handled(),
            sc.routes_ready()
        );
    }

    // The SC can take a core offline (e.g. for service) and bring it
    // back; the rest of the system keeps running.
    m.stop_cpu(0, 3);
    m.run_until_total(m.total_instrs() + 100_000);
    m.start_cpu(0, 3);
    m.run_until_total(m.total_instrs() + 100_000);
    m.check_coherence();
    println!("hot core stop/restart survived; coherence verified");
}
