//! Glueless multi-chip scaling: four 4-CPU Piranha chips with the
//! inter-node directory protocol, cruise-missile invalidates, and the
//! hot-potato router (paper §2.5-§2.6, Figure 7).
//!
//! Run with: `cargo run --release --example multichip`

use piranha::experiments::RunScale;
use piranha::workloads::{OltpConfig, Workload};
use piranha::{Machine, SystemConfig};

fn main() {
    let scale = RunScale::quick();
    let w = Workload::Oltp(OltpConfig::paper_default());
    let mut base = None;
    for chips in [1usize, 2, 4] {
        let cfg = if chips == 1 {
            SystemConfig::piranha_pn(4)
        } else {
            SystemConfig::piranha_pn(4).scaled_to_chips(chips)
        };
        let mut m = Machine::new(cfg, &w);
        let r = m.run(scale.warmup, scale.measure);
        let ipns = r.throughput_ipns();
        let b = *base.get_or_insert(ipns);
        let merged = r.merged();
        let remote = merged.fills[3] + merged.fills[4];
        let (hm, rm, hw, rw) = m.engine_stats();
        println!(
            "{} chip(s): speedup {:.2} | remote fills {:>6} | protocol msgs {:>7} | TSRF high-water {}/{} | net deflections {}",
            chips,
            ipns / b,
            remote,
            hm + rm,
            hw,
            rw,
            m.network().deflections(),
        );
        m.check_coherence();
        if chips == 4 {
            println!("\n{}", m.report());
        }
    }
    println!("Coherence invariants verified after every run.");
}
