//! OLTP deep dive: how Piranha's shared, non-inclusive L2 behaves as
//! CPUs are added to the chip (the paper's Figure 6 analysis).
//!
//! Run with: `cargo run --release --example oltp_chip`

use piranha::experiments::RunScale;
use piranha::workloads::{OltpConfig, Workload};
use piranha::{Machine, SystemConfig};

fn main() {
    let scale = RunScale::quick();
    let w = Workload::Oltp(OltpConfig::paper_default());
    println!(
        "{:<5} {:>10} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "Chip", "instrs/ns", "L2hit%", "L2fwd%", "L2miss%", "MPKI", "busy%"
    );
    let mut base_ipns = None;
    for n in [1usize, 2, 4, 8] {
        let mut m = Machine::new(SystemConfig::piranha_pn(n), &w);
        let r = m.run(scale.warmup, scale.measure);
        let (hit, fwd, miss) = r.l1_miss_breakdown();
        let ipns = r.throughput_ipns();
        base_ipns.get_or_insert(ipns);
        println!(
            "{:<5} {:>10.2} {:>8.0}% {:>8.0}% {:>8.0}% {:>8.1} {:>8.0}%",
            format!("P{n}"),
            ipns,
            hit * 100.0,
            fwd * 100.0,
            miss * 100.0,
            r.mpki(),
            r.breakdown().busy * 100.0
        );
    }
    println!(
        "\nAs CPUs are added, L2 hits become L1-to-L1 forwards while the\n\
         memory-miss fraction stays roughly flat — the paper's evidence that\n\
         non-inclusion turns the aggregate L1+L2 capacity into one big cache."
    );
}
