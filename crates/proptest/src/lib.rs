//! A minimal, dependency-free stand-in for the `proptest` property-testing
//! framework, vendored so the workspace builds offline.
//!
//! It implements the subset of the proptest 1.x API this workspace's tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`ProptestConfig`], range / tuple / collection / bool strategies, and a
//! deterministic per-test RNG. There is no shrinking: a failing case
//! panics with the generated inputs printed, which is enough to reproduce
//! (generation is deterministic per test name).

use std::collections::BTreeSet;
use std::ops::Range;

/// Everything a `proptest!` test body needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Test-runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A deterministic splitmix64 RNG, seeded from the test name so every
/// `cargo test` run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// a strategy simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of values from `element`; like proptest, the generated set
    /// may be smaller than the drawn size when duplicates collide.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so small domains cannot loop forever.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Assert inside a property test (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)+) =
                    ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let _ = case;
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u16..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
            let s = Strategy::generate(&crate::collection::btree_set(0u8..4, 0..4), &mut rng);
            assert!(s.len() < 4);
            let l = Strategy::generate(&crate::collection::vec(0u8..4, 2..5), &mut rng);
            assert!((2..5).contains(&l.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: patterns bind, tuples destructure, asserts fire.
        #[test]
        fn macro_binds_patterns((a, b) in (0u8..10, 0u8..10), flip in crate::bool::ANY) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(a as u16 + 300, b as u16);
        }
    }
}
