//! An Alpha-like instruction set for the Piranha core model.
//!
//! Piranha's CPU core "uses a single-issue, in-order design capable of
//! executing the Alpha instruction set" (paper §2.1). This crate provides
//! the subset needed to demonstrate that core executing real programs: a
//! 64-bit integer register file, loads/stores, conditional branches, and
//! the Alpha `wh64` write-hint instruction that backs the protocol's
//! *exclusive-without-data* request (paper §2.5.3 footnote 2).
//!
//! Three layers:
//!
//! * [`Instr`] — the instruction representation;
//! * [`asm`] — a two-pass assembler from a simple textual syntax;
//! * [`Machine`] — a functional interpreter that yields one [`Exec`]
//!   record per retired instruction, which the timing models in
//!   `piranha-cpu` consume.
//!
//! # Examples
//!
//! ```
//! use piranha_isa::{asm, Machine};
//!
//! let prog = asm::assemble(
//!     r#"
//!         addi r1, r31, 10    ; r1 = 10
//!     loop:
//!         addi r2, r2, 3
//!         subi r1, r1, 1
//!         bne  r1, loop
//!         halt
//!     "#,
//! ).unwrap();
//! let mut m = Machine::new(prog);
//! m.run(1_000).unwrap();
//! assert_eq!(m.reg(2), 30);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod interp;

pub use interp::{Exec, ExecKind, Machine, Trap};

/// Number of architectural integer registers. Register 31 always reads as
/// zero, as on Alpha.
pub const NUM_REGS: usize = 32;

/// The always-zero register (Alpha `r31`).
pub const ZERO_REG: u8 = 31;

/// A register name (0..=31).
pub type Reg = u8;

/// Binary ALU operations (the Alpha "operate" format subset we model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (executes in the pipelined 5-stage ALU).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Compare equal (result 1 or 0).
    Cmpeq,
    /// Compare signed less-than (result 1 or 0).
    Cmplt,
    /// Compare unsigned less-than (result 1 or 0).
    Cmpult,
}

impl AluOp {
    /// Evaluate the operation on two 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Cmpeq => (a == b) as u64,
            AluOp::Cmplt => ((a as i64) < (b as i64)) as u64,
            AluOp::Cmpult => (a < b) as u64,
        }
    }

    /// Whether this op uses the long (multiply) pipe.
    pub fn is_multiply(self) -> bool {
        matches!(self, AluOp::Mul)
    }
}

/// Branch conditions (tested against register `ra`, as in Alpha's
/// conditional branch format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if `ra == 0`.
    Eq,
    /// Branch if `ra != 0`.
    Ne,
    /// Branch if `ra < 0` (signed).
    Lt,
    /// Branch if `ra >= 0` (signed).
    Ge,
    /// Branch if `ra <= 0` (signed).
    Le,
    /// Branch if `ra > 0` (signed).
    Gt,
}

impl Cond {
    /// Evaluate the condition against a register value.
    pub fn eval(self, v: u64) -> bool {
        let s = v as i64;
        match self {
            Cond::Eq => s == 0,
            Cond::Ne => s != 0,
            Cond::Lt => s < 0,
            Cond::Ge => s >= 0,
            Cond::Le => s <= 0,
            Cond::Gt => s > 0,
        }
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `ra = rb op rc`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        ra: Reg,
        /// First source register.
        rb: Reg,
        /// Second source register.
        rc: Reg,
    },
    /// `ra = rb op imm` (Alpha's literal form).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        ra: Reg,
        /// Source register.
        rb: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// `ra = mem[rb + disp]` (64-bit load, Alpha `ldq`).
    Ldq {
        /// Destination register.
        ra: Reg,
        /// Base register.
        rb: Reg,
        /// Byte displacement.
        disp: i32,
    },
    /// `mem[rb + disp] = ra` (64-bit store, Alpha `stq`).
    Stq {
        /// Source register.
        ra: Reg,
        /// Base register.
        rb: Reg,
        /// Byte displacement.
        disp: i32,
    },
    /// Write hint: the full cache line at `rb` will be entirely written
    /// (Alpha `wh64`); acquires exclusive ownership without data.
    Wh64 {
        /// Register holding the line address.
        rb: Reg,
    },
    /// Conditional branch on `ra` to instruction index `target`.
    Br {
        /// Condition on `ra`.
        cond: Cond,
        /// Tested register.
        ra: Reg,
        /// Destination instruction index.
        target: u32,
    },
    /// Unconditional jump to instruction index `target`.
    Jmp {
        /// Destination instruction index.
        target: u32,
    },
    /// Stop execution.
    Halt,
}

impl Instr {
    /// Destination register written by this instruction, if any.
    pub fn dest(self) -> Option<Reg> {
        match self {
            Instr::Alu { ra, .. } | Instr::AluImm { ra, .. } | Instr::Ldq { ra, .. } => {
                (ra != ZERO_REG).then_some(ra)
            }
            _ => None,
        }
    }

    /// Source registers read by this instruction.
    pub fn sources(self) -> Vec<Reg> {
        match self {
            Instr::Alu { rb, rc, .. } => vec![rb, rc],
            Instr::AluImm { rb, .. } => vec![rb],
            Instr::Ldq { rb, .. } => vec![rb],
            Instr::Stq { ra, rb, .. } => vec![ra, rb],
            Instr::Wh64 { rb } => vec![rb],
            Instr::Br { ra, .. } => vec![ra],
            Instr::Jmp { .. } | Instr::Halt => vec![],
        }
    }
}

/// An assembled program: instructions plus symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction sequence; instruction *i* notionally lives at byte
    /// address `text_base + 4*i`.
    pub instrs: Vec<Instr>,
    /// Label name → instruction index.
    pub labels: std::collections::BTreeMap<String, u32>,
    /// Base byte address of the text segment (for I-cache modelling).
    pub text_base: u64,
}

impl Program {
    /// The byte address of instruction `index` (Alpha instructions are 4
    /// bytes).
    pub fn pc_of(&self, index: u32) -> u64 {
        self.text_base + 4 * index as u64
    }

    /// Look up a label's instruction index.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 65), 2, "shift amount is mod 64");
        assert_eq!(AluOp::Srl.eval(8, 2), 2);
        assert_eq!(AluOp::Cmpeq.eval(4, 4), 1);
        assert_eq!(AluOp::Cmplt.eval(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Cmpult.eval(u64::MAX, 0), 0, "max > 0 unsigned");
        assert!(AluOp::Mul.is_multiply());
        assert!(!AluOp::Add.is_multiply());
    }

    #[test]
    fn cond_semantics() {
        let neg = (-5i64) as u64;
        assert!(Cond::Eq.eval(0) && !Cond::Eq.eval(1));
        assert!(Cond::Ne.eval(1) && !Cond::Ne.eval(0));
        assert!(Cond::Lt.eval(neg) && !Cond::Lt.eval(0));
        assert!(Cond::Ge.eval(0) && !Cond::Ge.eval(neg));
        assert!(Cond::Le.eval(0) && Cond::Le.eval(neg) && !Cond::Le.eval(1));
        assert!(Cond::Gt.eval(1) && !Cond::Gt.eval(0));
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::Alu {
            op: AluOp::Add,
            ra: 1,
            rb: 2,
            rc: 3,
        };
        assert_eq!(i.dest(), Some(1));
        assert_eq!(i.sources(), vec![2, 3]);
        // Writes to r31 are discarded, so it is not a real destination.
        let z = Instr::AluImm {
            op: AluOp::Add,
            ra: ZERO_REG,
            rb: 0,
            imm: 1,
        };
        assert_eq!(z.dest(), None);
        let s = Instr::Stq {
            ra: 4,
            rb: 5,
            disp: 0,
        };
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), vec![4, 5]);
    }

    #[test]
    fn program_pc_mapping() {
        let p = Program {
            instrs: vec![Instr::Halt],
            labels: Default::default(),
            text_base: 0x1000,
        };
        assert_eq!(p.pc_of(0), 0x1000);
        assert_eq!(p.pc_of(3), 0x100c);
    }
}
