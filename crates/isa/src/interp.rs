//! A functional interpreter for the Alpha-like ISA.
//!
//! The interpreter is *architectural only*: it computes what each
//! instruction does and reports a per-instruction [`Exec`] record (kind,
//! PC, memory address) that the timing models in `piranha-cpu` replay
//! through the simulated memory hierarchy. Memory is sparse (paged), so
//! programs can use large, scattered address ranges cheaply.

use std::collections::HashMap;

use piranha_types::Addr;

use crate::{Instr, Program, Reg, NUM_REGS, ZERO_REG};

/// What category of work one retired instruction represents; the timing
/// models charge cycles by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecKind {
    /// Single-cycle integer operation.
    Alu,
    /// Multi-cycle (pipelined) multiply.
    Mul,
    /// Data load from the given address.
    Load(Addr),
    /// Data store to the given address.
    Store(Addr),
    /// Write-hint for the full line at the given address.
    WriteHint(Addr),
    /// Control transfer; `taken` says whether the branch redirected fetch.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// The halt instruction.
    Halt,
}

/// One retired instruction, as seen by a timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    /// Byte address of the instruction (for I-cache modelling).
    pub pc: Addr,
    /// What the instruction did.
    pub kind: ExecKind,
}

/// A runtime fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The PC fell outside the program.
    PcOutOfRange {
        /// The bad instruction index.
        index: u32,
    },
    /// The cycle budget given to [`Machine::run`] expired before `halt`.
    OutOfFuel,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::PcOutOfRange { index } => write!(f, "pc out of range: instruction {index}"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted before halt"),
        }
    }
}

impl std::error::Error for Trap {}

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable data memory.
#[derive(Debug, Default, Clone)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl SparseMem {
    /// Read a 64-bit little-endian word (unallocated memory reads as 0).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(Addr(addr.0 + i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Write a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(Addr(addr.0 + i as u64), *b);
        }
    }

    fn read_u8(&self, addr: Addr) -> u8 {
        let page = addr.0 >> PAGE_SHIFT;
        let off = (addr.0 as usize) & (PAGE_BYTES - 1);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    fn write_u8(&mut self, addr: Addr, value: u8) {
        let page = addr.0 >> PAGE_SHIFT;
        let off = (addr.0 as usize) & (PAGE_BYTES - 1);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_BYTES]))[off] = value;
    }
}

/// The architectural state of one Alpha-like CPU: register file, PC, and
/// sparse data memory.
///
/// # Examples
///
/// ```
/// use piranha_isa::{asm, Machine};
/// let prog = asm::assemble("li r1, 7\nstq r1, 0(r31)\nldq r2, 0(r31)\nhalt").unwrap();
/// let mut m = Machine::new(prog);
/// m.run(100).unwrap();
/// assert_eq!(m.reg(2), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    regs: [u64; NUM_REGS],
    /// Instruction index (not byte address) of the next instruction.
    pc: u32,
    mem: SparseMem,
    halted: bool,
    retired: u64,
}

impl Machine {
    /// A machine about to execute `program` from its first instruction,
    /// with zeroed registers and memory.
    pub fn new(program: Program) -> Self {
        Machine {
            program,
            regs: [0; NUM_REGS],
            pc: 0,
            mem: SparseMem::default(),
            halted: false,
            retired: 0,
        }
    }

    /// Read register `r` (register 31 always reads 0).
    pub fn reg(&self, r: Reg) -> u64 {
        if r == ZERO_REG {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Write register `r` (writes to register 31 are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r != ZERO_REG {
            self.regs[r as usize] = v;
        }
    }

    /// The data memory, for setting up inputs and inspecting results.
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable access to data memory.
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// Whether the machine has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Execute one instruction and report what it did.
    ///
    /// Returns `None` if the machine has already halted.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::PcOutOfRange`] if control flowed past the end of
    /// the program.
    pub fn step(&mut self) -> Result<Option<Exec>, Trap> {
        if self.halted {
            return Ok(None);
        }
        let index = self.pc;
        let instr = *self
            .program
            .instrs
            .get(index as usize)
            .ok_or(Trap::PcOutOfRange { index })?;
        let pc = Addr(self.program.pc_of(index));
        self.pc += 1;
        self.retired += 1;

        let kind = match instr {
            Instr::Alu { op, ra, rb, rc } => {
                let v = op.eval(self.reg(rb), self.reg(rc));
                self.set_reg(ra, v);
                if op.is_multiply() {
                    ExecKind::Mul
                } else {
                    ExecKind::Alu
                }
            }
            Instr::AluImm { op, ra, rb, imm } => {
                let v = op.eval(self.reg(rb), imm as i64 as u64);
                self.set_reg(ra, v);
                if op.is_multiply() {
                    ExecKind::Mul
                } else {
                    ExecKind::Alu
                }
            }
            Instr::Ldq { ra, rb, disp } => {
                let addr = Addr(self.reg(rb).wrapping_add(disp as i64 as u64));
                let v = self.mem.read_u64(addr);
                self.set_reg(ra, v);
                ExecKind::Load(addr)
            }
            Instr::Stq { ra, rb, disp } => {
                let addr = Addr(self.reg(rb).wrapping_add(disp as i64 as u64));
                self.mem.write_u64(addr, self.reg(ra));
                ExecKind::Store(addr)
            }
            Instr::Wh64 { rb } => {
                let addr = Addr(self.reg(rb));
                // Architecturally, wh64 may zero the target line; we model
                // it as a pure ownership hint with no data effect.
                ExecKind::WriteHint(addr)
            }
            Instr::Br { cond, ra, target } => {
                let taken = cond.eval(self.reg(ra));
                if taken {
                    self.pc = target;
                }
                ExecKind::Branch { taken }
            }
            Instr::Jmp { target } => {
                self.pc = target;
                ExecKind::Branch { taken: true }
            }
            Instr::Halt => {
                self.halted = true;
                ExecKind::Halt
            }
        };
        Ok(Some(Exec { pc, kind }))
    }

    /// Run until `halt` or until `fuel` instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfFuel`] if the budget expires first, or
    /// [`Trap::PcOutOfRange`] on a wild control transfer.
    pub fn run(&mut self, fuel: u64) -> Result<(), Trap> {
        for _ in 0..fuel {
            if self.step()?.is_none() {
                return Ok(());
            }
            if self.halted {
                return Ok(());
            }
        }
        if self.halted {
            Ok(())
        } else {
            Err(Trap::OutOfFuel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str) -> Machine {
        let mut m = Machine::new(assemble(src).unwrap());
        m.run(100_000).unwrap();
        m
    }

    #[test]
    fn arithmetic_loop_sums() {
        // Sum 1..=10 into r3.
        let m = run_src(
            r#"
                li r1, 10
            top:
                add r3, r3, r1
                subi r1, r1, 1
                bgt r1, top
                halt
            "#,
        );
        assert_eq!(m.reg(3), 55);
    }

    #[test]
    fn memory_round_trip_and_exec_records() {
        let mut m = Machine::new(
            assemble("li r1, 0x100\nli r2, 99\nstq r2, 8(r1)\nldq r3, 8(r1)\nhalt").unwrap(),
        );
        let mut kinds = Vec::new();
        while let Some(e) = m.step().unwrap() {
            kinds.push(e.kind);
            if m.halted() {
                break;
            }
        }
        assert_eq!(m.reg(3), 99);
        assert!(matches!(kinds[2], ExecKind::Store(a) if a.0 == 0x108));
        assert!(matches!(kinds[3], ExecKind::Load(a) if a.0 == 0x108));
        assert!(matches!(kinds[4], ExecKind::Halt));
        assert_eq!(m.retired(), 5);
    }

    #[test]
    fn zero_register_is_immutable() {
        let m = run_src("li r31, 42\naddi r1, r31, 0\nhalt");
        assert_eq!(m.reg(31), 0);
        assert_eq!(m.reg(1), 0);
    }

    #[test]
    fn unallocated_memory_reads_zero() {
        let m = run_src("li r1, 0x123456\nldq r2, 0(r1)\nhalt");
        assert_eq!(m.reg(2), 0);
    }

    #[test]
    fn branch_taken_and_not_taken_records() {
        let mut m = Machine::new(assemble("li r1, 1\nbeq r1, skip\nskip: halt").unwrap());
        m.step().unwrap();
        let e = m.step().unwrap().unwrap();
        assert_eq!(e.kind, ExecKind::Branch { taken: false });
    }

    #[test]
    fn wh64_reports_line_address() {
        let mut m = Machine::new(assemble("li r1, 0x1000\nwh64 (r1)\nhalt").unwrap());
        m.step().unwrap();
        let e = m.step().unwrap().unwrap();
        assert_eq!(e.kind, ExecKind::WriteHint(Addr(0x1000)));
    }

    #[test]
    fn out_of_fuel_traps() {
        let mut m = Machine::new(assemble("top: br top").unwrap());
        assert_eq!(m.run(10), Err(Trap::OutOfFuel));
    }

    #[test]
    fn falling_off_the_end_traps() {
        let mut m = Machine::new(assemble("li r1, 1").unwrap());
        m.step().unwrap();
        assert!(matches!(m.step(), Err(Trap::PcOutOfRange { index: 1 })));
    }

    #[test]
    fn halted_machine_steps_to_none() {
        let mut m = Machine::new(assemble("halt").unwrap());
        m.step().unwrap();
        assert!(m.halted());
        assert_eq!(m.step().unwrap(), None);
    }

    #[test]
    fn negative_displacement_wraps_correctly() {
        let m = run_src("li r1, 0x100\nli r2, 5\nstq r2, -8(r1)\nldq r3, -8(r1)\nhalt");
        assert_eq!(m.reg(3), 5);
    }

    #[test]
    fn sparse_mem_u64_round_trip() {
        let mut mem = SparseMem::default();
        mem.write_u64(Addr(0xfffe), 0x0123_4567_89ab_cdef); // straddles a page
        assert_eq!(mem.read_u64(Addr(0xfffe)), 0x0123_4567_89ab_cdef);
    }
}
