//! A two-pass assembler for the Alpha-like ISA.
//!
//! Syntax, one instruction per line; `;` or `#` begins a comment; labels
//! end with `:` and may share a line with an instruction.
//!
//! ```text
//!     addi r1, r31, 64       ; r1 = 64
//! top:
//!     ldq  r2, 0(r1)         ; r2 = mem[r1]
//!     add  r3, r3, r2
//!     addi r1, r1, 8
//!     subi r4, r4, 1
//!     bne  r4, top
//!     stq  r3, 8(r31)
//!     wh64 (r5)
//!     halt
//! ```
//!
//! Mnemonics: `add sub mul and or xor sll srl cmpeq cmplt cmpult` (three
//! registers), the same with an `i` suffix (register, register, immediate),
//! `ldq ra, disp(rb)`, `stq ra, disp(rb)`, `wh64 (rb)`, conditional
//! branches `beq bne blt bge ble bgt ra, label`, `br label`, `halt`, and
//! the pseudo-instruction `li ra, imm` (expands to `addi ra, r31, imm`).

use std::collections::BTreeMap;

use crate::{AluOp, Cond, Instr, Program, Reg};

/// An assembly error, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assemble `source` into a [`Program`] with text base 0.
///
/// # Errors
///
/// Returns an [`AsmError`] identifying the offending line for unknown
/// mnemonics, malformed operands, bad register names, or undefined labels.
///
/// # Examples
///
/// ```
/// let p = piranha_isa::asm::assemble("li r1, 5\nhalt").unwrap();
/// assert_eq!(p.instrs.len(), 2);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, 0)
}

/// Assemble `source` with the given text base address.
///
/// # Errors
///
/// Same conditions as [`assemble`].
pub fn assemble_at(source: &str, text_base: u64) -> Result<Program, AsmError> {
    // Pass 1: strip comments, record labels, collect raw statements.
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut stmts: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find([';', '#']) {
            text = &text[..i];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(lineno, format!("invalid label {label:?}")));
            }
            if labels
                .insert(label.to_string(), stmts.len() as u32)
                .is_some()
            {
                return Err(err(lineno, format!("duplicate label {label:?}")));
            }
            text = text[colon + 1..].trim();
        }
        if !text.is_empty() {
            stmts.push((lineno, text.to_string()));
        }
    }

    // Pass 2: encode.
    let mut instrs = Vec::with_capacity(stmts.len());
    for (lineno, text) in &stmts {
        instrs.push(encode(*lineno, text, &labels)?);
    }
    Ok(Program {
        instrs,
        labels,
        text_base,
    })
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    let n: u32 = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got {tok:?}")))?
        .parse()
        .map_err(|_| err(line, format!("bad register {tok:?}")))?;
    if n >= crate::NUM_REGS as u32 {
        return Err(err(line, format!("register out of range: {tok}")));
    }
    Ok(n as Reg)
}

fn parse_imm(line: usize, tok: &str) -> Result<i32, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v: i64 = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate {tok:?}")))?
    } else {
        body.parse()
            .map_err(|_| err(line, format!("bad immediate {tok:?}")))?
    };
    let v = if neg { -v } else { v };
    i32::try_from(v).map_err(|_| err(line, format!("immediate out of range: {tok}")))
}

/// Parse `disp(rb)` memory operand syntax.
fn parse_mem(line: usize, tok: &str) -> Result<(i32, Reg), AsmError> {
    let tok = tok.trim();
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected disp(reg), got {tok:?}")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing ')' in {tok:?}")))?;
    let disp_str = tok[..open].trim();
    let disp = if disp_str.is_empty() {
        0
    } else {
        parse_imm(line, disp_str)?
    };
    let rb = parse_reg(line, &close[open + 1..])?;
    Ok((disp, rb))
}

fn parse_label(line: usize, tok: &str, labels: &BTreeMap<String, u32>) -> Result<u32, AsmError> {
    labels
        .get(tok.trim())
        .copied()
        .ok_or_else(|| err(line, format!("undefined label {tok:?}")))
}

fn alu_op(mnemonic: &str) -> Option<(AluOp, bool)> {
    let (base, imm) = match mnemonic.strip_suffix('i') {
        // `cmpulti` etc. end with 'i' only in the immediate form; the bare
        // names that happen to end in 'i' don't exist in this ISA.
        Some(base) => (base, true),
        None => (mnemonic, false),
    };
    let op = match base {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "cmpeq" => AluOp::Cmpeq,
        "cmplt" => AluOp::Cmplt,
        "cmpult" => AluOp::Cmpult,
        _ => return None,
    };
    Some((op, imm))
}

fn branch_cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "ble" => Cond::Le,
        "bgt" => Cond::Gt,
        _ => None?,
    })
}

fn encode(line: usize, text: &str, labels: &BTreeMap<String, u32>) -> Result<Instr, AsmError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<&str> = if rest.is_empty() {
        vec![]
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{mnemonic} expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    if let Some((op, imm_form)) = alu_op(&mnemonic) {
        want(3)?;
        let ra = parse_reg(line, ops[0])?;
        let rb = parse_reg(line, ops[1])?;
        return if imm_form {
            Ok(Instr::AluImm {
                op,
                ra,
                rb,
                imm: parse_imm(line, ops[2])?,
            })
        } else {
            Ok(Instr::Alu {
                op,
                ra,
                rb,
                rc: parse_reg(line, ops[2])?,
            })
        };
    }
    if let Some(cond) = branch_cond(&mnemonic) {
        want(2)?;
        let ra = parse_reg(line, ops[0])?;
        let target = parse_label(line, ops[1], labels)?;
        return Ok(Instr::Br { cond, ra, target });
    }
    match mnemonic.as_str() {
        "ldq" => {
            want(2)?;
            let ra = parse_reg(line, ops[0])?;
            let (disp, rb) = parse_mem(line, ops[1])?;
            Ok(Instr::Ldq { ra, rb, disp })
        }
        "stq" => {
            want(2)?;
            let ra = parse_reg(line, ops[0])?;
            let (disp, rb) = parse_mem(line, ops[1])?;
            Ok(Instr::Stq { ra, rb, disp })
        }
        "wh64" => {
            want(1)?;
            let (disp, rb) = parse_mem(line, ops[0])?;
            if disp != 0 {
                return Err(err(line, "wh64 takes a bare (reg) operand"));
            }
            Ok(Instr::Wh64 { rb })
        }
        "br" => {
            want(1)?;
            Ok(Instr::Jmp {
                target: parse_label(line, ops[0], labels)?,
            })
        }
        "li" => {
            want(2)?;
            let ra = parse_reg(line, ops[0])?;
            let imm = parse_imm(line, ops[1])?;
            Ok(Instr::AluImm {
                op: AluOp::Add,
                ra,
                rb: crate::ZERO_REG,
                imm,
            })
        }
        "halt" => {
            want(0)?;
            Ok(Instr::Halt)
        }
        other => Err(err(line, format!("unknown mnemonic {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_every_form() {
        let p = assemble(
            r#"
            start:
                li    r1, 0x40
                add   r2, r1, r1
                subi  r3, r2, -4
                mul   r4, r2, r3
                cmpulti r5, r4, 100
                ldq   r6, 8(r1)
                stq   r6, -8(r1)
                wh64  (r6)
                beq   r5, done
                br    start
            done:
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.instrs.len(), 11);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("done"), Some(10));
        assert_eq!(
            p.instrs[0],
            Instr::AluImm {
                op: AluOp::Add,
                ra: 1,
                rb: 31,
                imm: 0x40
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::AluImm {
                op: AluOp::Sub,
                ra: 3,
                rb: 2,
                imm: -4
            }
        );
        assert_eq!(
            p.instrs[5],
            Instr::Ldq {
                ra: 6,
                rb: 1,
                disp: 8
            }
        );
        assert_eq!(
            p.instrs[6],
            Instr::Stq {
                ra: 6,
                rb: 1,
                disp: -8
            }
        );
        assert_eq!(p.instrs[7], Instr::Wh64 { rb: 6 });
        assert_eq!(
            p.instrs[8],
            Instr::Br {
                cond: Cond::Eq,
                ra: 5,
                target: 10
            }
        );
        assert_eq!(p.instrs[9], Instr::Jmp { target: 0 });
        assert_eq!(p.instrs[10], Instr::Halt);
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("br end\nhalt\nend: halt").unwrap();
        assert_eq!(p.instrs[0], Instr::Jmp { target: 2 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; nothing\n\n# also nothing\nhalt ; trailing\n").unwrap();
        assert_eq!(p.instrs.len(), 1);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let p = assemble("a: b: halt").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
    }

    #[test]
    fn error_reporting() {
        assert!(assemble("frob r1, r2")
            .unwrap_err()
            .message
            .contains("unknown mnemonic"));
        assert!(assemble("add r1, r2")
            .unwrap_err()
            .message
            .contains("expects 3"));
        assert!(assemble("add r1, r2, r99")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(assemble("br nowhere")
            .unwrap_err()
            .message
            .contains("undefined label"));
        assert!(assemble("x: halt\nx: halt")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(assemble("ldq r1, r2")
            .unwrap_err()
            .message
            .contains("disp(reg)"));
        let e = assemble("halt\nadd r1, r2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().starts_with("line 2:"));
    }

    #[test]
    fn text_base_applies() {
        let p = assemble_at("halt", 0x8000).unwrap();
        assert_eq!(p.pc_of(0), 0x8000);
    }
}
