//! Fast non-cryptographic hashing for simulator-internal maps.
//!
//! The standard library's default `HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs ~20 ns per lookup on short keys, which is
//! material in the simulator's hot paths: duplicate-tag lookups, L2
//! MSHR tracking, and directory state are all keyed by line addresses
//! and hit on every cache miss. Simulator state is never exposed to
//! untrusted key distributions, so we trade collision resistance for
//! speed with a multiply-rotate hash in the spirit of FNV/fxhash.
//!
//! Determinism note: [`FastMap`] has a *fixed* (seedless) hash
//! function, so its internal bucket order is stable across runs —
//! unlike `RandomState`, which reseeds per process. No simulation
//! code may iterate a map in bucket order anyway (event ordering must
//! come from the calendar queue), but fixed seeding removes even the
//! possibility of run-to-run divergence from map internals.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for short, trusted keys.
///
/// Each 8-byte word is folded in as
/// `h = (h.rotate_left(5) ^ w) * K` with an odd 64-bit constant `K`
/// derived from the golden ratio. This is 2-3 instructions per word
/// and mixes line addresses (which differ in their low-middle bits)
/// well enough for the load factors `HashMap` maintains.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

/// Odd multiplier: `floor(2^64 / phi)`, the 64-bit golden-ratio
/// constant also used by Fibonacci hashing.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path for composite/odd-sized keys: fold 8 bytes at
        // a time, then the tail padded with its own length so "ab"
        // and "ab\0" differ.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            tail[7] = rest.len() as u8;
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; zero-sized and seedless.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed with the fast seedless hasher.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` keyed with the fast seedless hasher.
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_line_addr_like_keys() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        // Line addresses: sequential multiples of a cache-line stride.
        for i in 0..10_000u64 {
            m.insert(i * 64, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn composite_and_stream_hashing_distinguish_tails() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        let mut b = FastHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());

        let mut m: FastMap<(u8, u64), u8> = FastMap::default();
        m.insert((1, 7), 1);
        m.insert((2, 7), 2);
        assert_eq!(m.get(&(1, 7)), Some(&1));
        assert_eq!(m.get(&(2, 7)), Some(&2));
    }

    #[test]
    fn hashes_are_stable_across_instances() {
        // Seedless: two independent hashers agree, so bucket layout
        // is identical across runs of the same binary.
        let h = |x: u64| {
            let mut f = FastHasher::default();
            f.write_u64(x);
            f.finish()
        };
        assert_eq!(h(0xdead_beef), h(0xdead_beef));
        assert_ne!(h(1), h(2));
    }
}
