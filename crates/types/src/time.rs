//! Simulated time.
//!
//! The simulator keeps one global clock in **picoseconds** so that chips
//! with different cycle times (500 MHz ASIC Piranha, 1 GHz OOO baseline,
//! 1.25 GHz full-custom Piranha — paper Table 1) can coexist in one event
//! queue without rounding error: all of those clocks have integral periods
//! in picoseconds (2000, 1000, and 800 ps).

/// An absolute simulated time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1000)
    }

    /// This time expressed in whole nanoseconds (truncating).
    pub fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// This time expressed in picoseconds.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        Duration(ns * 1000)
    }

    /// Construct from picoseconds.
    pub fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// This span in whole nanoseconds (truncating).
    pub fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// This span in picoseconds.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Multiply the span by an integer count (e.g. cycles × period).
    pub fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl core::ops::Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl core::ops::AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl core::ops::Add for Duration {
    type Output = Duration;
    fn add(self, o: Duration) -> Duration {
        Duration(self.0 + o.0)
    }
}

impl core::ops::AddAssign for Duration {
    fn add_assign(&mut self, o: Duration) {
        self.0 += o.0;
    }
}

impl core::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, o: Duration) -> Duration {
        Duration(self.0.saturating_sub(o.0))
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}ns", self.0 as f64 / 1000.0)
    }
}

impl core::fmt::Display for Duration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}ns", self.0 as f64 / 1000.0)
    }
}

/// A fixed clock: converts between cycles of a component and global time.
///
/// ```
/// use piranha_types::time::Clock;
/// let c = Clock::from_mhz(500);
/// assert_eq!(c.period().as_ps(), 2000);
/// assert_eq!(c.cycles(c.period().times(10)), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// A clock with the given frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if the frequency does not divide 1 THz evenly (all clocks in
    /// the paper — 400, 500, 1000, 1250 MHz — do) or is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be positive");
        assert_eq!(
            1_000_000 % mhz,
            0,
            "clock frequency {mhz} MHz has a non-integral period in ps"
        );
        Clock {
            period_ps: 1_000_000 / mhz,
        }
    }

    /// The clock period.
    pub fn period(self) -> Duration {
        Duration(self.period_ps)
    }

    /// The span of `n` cycles.
    pub fn cycles_dur(self, n: u64) -> Duration {
        Duration(self.period_ps * n)
    }

    /// How many whole cycles fit in `d`.
    pub fn cycles(self, d: Duration) -> u64 {
        d.0 / self.period_ps
    }

    /// The frequency in MHz.
    pub fn mhz(self) -> u64 {
        1_000_000 / self.period_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        assert_eq!(SimTime::from_ns(80).as_ns(), 80);
        assert_eq!(Duration::from_ns(60).as_ps(), 60_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(10) + Duration::from_ns(5);
        assert_eq!(t, SimTime::from_ns(15));
        assert_eq!(t.since(SimTime::from_ns(3)), Duration::from_ns(12));
        // `since` saturates rather than underflowing.
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
        assert_eq!(
            Duration::from_ns(3) + Duration::from_ns(4),
            Duration::from_ns(7)
        );
        assert_eq!(Duration::from_ns(2).times(5), Duration::from_ns(10));
    }

    #[test]
    fn paper_clocks_have_exact_periods() {
        assert_eq!(Clock::from_mhz(500).period().as_ps(), 2000);
        assert_eq!(Clock::from_mhz(1000).period().as_ps(), 1000);
        assert_eq!(Clock::from_mhz(1250).period().as_ps(), 800);
        assert_eq!(Clock::from_mhz(400).period().as_ps(), 2500);
    }

    #[test]
    fn clock_cycle_conversions() {
        let c = Clock::from_mhz(1000);
        assert_eq!(c.cycles_dur(7), Duration::from_ns(7));
        assert_eq!(c.cycles(Duration::from_ns(7)), 7);
        assert_eq!(c.mhz(), 1000);
    }

    #[test]
    #[should_panic(expected = "non-integral")]
    fn odd_clock_rejected() {
        let _ = Clock::from_mhz(999_999);
    }

    #[test]
    fn time_display() {
        assert_eq!(SimTime::from_ns(2).to_string(), "2ns");
        assert_eq!(Duration(1500).to_string(), "1.5ns");
    }
}
