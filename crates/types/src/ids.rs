//! Identifiers for the replicated components of a Piranha system.
//!
//! A system is a set of *nodes* (chips) connected point-to-point; each
//! processing node contains up to eight CPUs, eight L2 banks (each with its
//! own memory controller), two protocol engines, and a router (paper §2).

/// Identifies a node (one Piranha chip — processing or I/O) in the system.
///
/// The paper's design scales gluelessly to 1024 nodes, which is why the
/// directory formats in `piranha-mem` encode node IDs in 10 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

/// Maximum number of nodes a system may contain (paper §2: "glueless
/// scaling up to 1024 nodes").
pub const MAX_NODES: usize = 1024;

impl NodeId {
    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a CPU *within* its chip (0..=7 on a processing node, always 0
/// on an I/O node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub u8);

impl CpuId {
    /// Index into per-CPU arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for CpuId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A fully-qualified CPU identity: node plus on-chip CPU number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipCpuId {
    /// The node the CPU lives on.
    pub node: NodeId,
    /// The CPU's index within the node.
    pub cpu: CpuId,
}

impl core::fmt::Display for ChipCpuId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{}", self.node, self.cpu)
    }
}

/// Identifies an L2 bank (and its attached memory controller) within a
/// chip. Banks are interleaved by the low bits of the line address
/// (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u8);

impl BankId {
    /// Index into per-bank arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for BankId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Distinguishes the two first-level caches attached to each CPU.
///
/// Unlike other Alpha implementations, Piranha keeps the instruction cache
/// hardware-coherent and uses virtually the same design for both (paper
/// §2.1), so most of the simulator treats them uniformly via this tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheKind {
    /// The instruction L1 (iL1).
    Instruction,
    /// The data L1 (dL1).
    Data,
}

impl CacheKind {
    /// Both kinds, for iteration.
    pub const BOTH: [CacheKind; 2] = [CacheKind::Instruction, CacheKind::Data];

    /// Index (0 = instruction, 1 = data) for per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            CacheKind::Instruction => 0,
            CacheKind::Data => 1,
        }
    }
}

impl core::fmt::Display for CacheKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CacheKind::Instruction => write!(f, "iL1"),
            CacheKind::Data => write!(f, "dL1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        let c = ChipCpuId {
            node: NodeId(3),
            cpu: CpuId(5),
        };
        assert_eq!(c.to_string(), "n3.cpu5");
        assert_eq!(BankId(7).to_string(), "b7");
        assert_eq!(CacheKind::Instruction.to_string(), "iL1");
        assert_eq!(CacheKind::Data.to_string(), "dL1");
    }

    #[test]
    fn cache_kind_indexes_are_distinct() {
        assert_ne!(CacheKind::Instruction.index(), CacheKind::Data.index());
        assert_eq!(CacheKind::BOTH.len(), 2);
    }

    #[test]
    fn indices_match_raw_values() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(CpuId(7).index(), 7);
        assert_eq!(BankId(3).index(), 3);
    }
}
