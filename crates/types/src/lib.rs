//! Shared architectural vocabulary for the Piranha CMP simulator.
//!
//! This crate defines the types that every subsystem crate agrees on:
//! physical addresses and cache-line geometry, component identifiers
//! (nodes, CPUs, L2 banks), simulated time, coherence request kinds, and
//! virtual-lane identifiers. Keeping these in a leaf crate lets the cache,
//! switch, memory, protocol-engine, and interconnect crates evolve
//! independently while speaking one language.
//!
//! # Examples
//!
//! ```
//! use piranha_types::{Addr, LineAddr, SimTime};
//!
//! let a = Addr(0x1_0047);
//! let line = a.line();
//! assert_eq!(line.base().0, 0x1_0040);
//! assert_eq!(SimTime::from_ns(80).as_ns(), 80);
//! ```

#![warn(missing_docs)]

pub mod fastmap;
pub mod ids;
pub mod time;

pub use fastmap::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use ids::{BankId, CacheKind, ChipCpuId, CpuId, NodeId};
pub use time::{Duration, SimTime};

/// Log2 of the cache-line size: Piranha uses 64-byte lines (paper §2.3).
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes (64, per the paper).
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// A byte-granularity physical address.
///
/// The simulator models a single global physical address space spanning all
/// nodes; the home node of an address is determined by the interleaving
/// policy in the system crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    ///
    /// ```
    /// # use piranha_types::Addr;
    /// assert_eq!(Addr(0x7f).line(), Addr(0x40).line());
    /// ```
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset of this address within its cache line.
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line-granularity address (the byte address shifted right by
/// [`LINE_SHIFT`]).
///
/// All coherence traffic is at line granularity, so protocol messages carry
/// `LineAddr` rather than [`Addr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The base byte address of the line.
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }
}

impl core::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

/// The kind of access a CPU performs against its first-level caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (served by the iL1).
    IFetch,
    /// Data load (served by the dL1).
    Load,
    /// Data store (served by the dL1 via the store buffer).
    Store,
    /// Full-line store hint (Alpha `wh64`): requests exclusive ownership
    /// without fetching the line's current contents (paper §2.5.3).
    StoreFullLine,
}

impl AccessKind {
    /// Whether the access requires exclusive (writable) ownership.
    pub fn needs_exclusive(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::StoreFullLine)
    }
}

/// Coherence request types supported by the inter-node protocol
/// (paper §2.5.3): read, read-exclusive, exclusive (upgrade: the requester
/// already holds a shared copy), and exclusive-without-data (`wh64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqType {
    /// Read a shared (or clean-exclusive, if unshared) copy.
    Read,
    /// Read an exclusive copy, invalidating all sharers.
    ReadEx,
    /// Upgrade an already-held shared copy to exclusive (no data needed
    /// unless the copy was invalidated by a race).
    Upgrade,
    /// Obtain exclusive ownership without the line's current data
    /// (the requester promises to write the whole line).
    ReadExNoData,
}

impl ReqType {
    /// Whether this request, when satisfied, leaves the requester with an
    /// exclusive copy.
    pub fn is_exclusive(self) -> bool {
        !matches!(self, ReqType::Read)
    }
}

/// Virtual lanes used by the system interconnect to avoid protocol
/// deadlock (paper §2.5.3): I/O, low priority (requests to home), and high
/// priority (forwards, write-backs, and all replies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// The I/O lane.
    Io,
    /// Low-priority lane: requests sent to a home node.
    Low,
    /// High-priority lane: forwarded requests, write-backs, and replies.
    High,
}

impl Lane {
    /// All lanes, in increasing priority order.
    pub const ALL: [Lane; 3] = [Lane::Io, Lane::Low, Lane::High];
}

/// Where an L1 miss was ultimately serviced. This drives the stall-time
/// and L1-miss breakdowns of Figures 5 and 6(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillSource {
    /// Serviced by the local L2 bank (an "L2 Hit" in the paper).
    L2Hit,
    /// Forwarded to and serviced by another on-chip L1 ("L2 Fwd").
    L2Fwd,
    /// Serviced by local memory ("L2 Miss" going to local RDRAM).
    LocalMem,
    /// Serviced by a remote node's memory (clean at home).
    RemoteMem,
    /// Serviced by a remote owner's cache via 3-hop forwarding ("remote
    /// dirty").
    RemoteDirty,
}

impl FillSource {
    /// Whether the fill left the chip.
    pub fn is_remote(self) -> bool {
        matches!(self, FillSource::RemoteMem | FillSource::RemoteDirty)
    }
}

/// Summary of a line's remote caching state, as the L2 controller partially
/// interprets the directory (paper §2.3): enough to decide whether a local
/// request can complete on-chip, without the full sharer set (which only
/// the protocol engines manipulate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RemoteSummary {
    /// No remote node caches the line.
    #[default]
    None,
    /// One or more remote nodes hold shared copies.
    Shared,
    /// A remote node holds the line exclusively (memory may be stale).
    Exclusive,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_geometry_round_trips() {
        let a = Addr(0x1234_5678);
        let l = a.line();
        assert_eq!(l.base().0, a.0 & !(LINE_BYTES - 1));
        assert_eq!(a.line_offset(), a.0 % LINE_BYTES);
        assert_eq!(LineAddr::from(a), l);
    }

    #[test]
    fn same_line_for_all_offsets() {
        let base = Addr(0xabc0_0000);
        for off in 0..LINE_BYTES {
            assert_eq!(Addr(base.0 + off).line(), base.line());
        }
        assert_ne!(Addr(base.0 + LINE_BYTES).line(), base.line());
    }

    #[test]
    fn access_kind_exclusivity() {
        assert!(!AccessKind::IFetch.needs_exclusive());
        assert!(!AccessKind::Load.needs_exclusive());
        assert!(AccessKind::Store.needs_exclusive());
        assert!(AccessKind::StoreFullLine.needs_exclusive());
    }

    #[test]
    fn req_type_exclusivity() {
        assert!(!ReqType::Read.is_exclusive());
        assert!(ReqType::ReadEx.is_exclusive());
        assert!(ReqType::Upgrade.is_exclusive());
        assert!(ReqType::ReadExNoData.is_exclusive());
    }

    #[test]
    fn lane_priority_order() {
        assert!(Lane::Io < Lane::Low);
        assert!(Lane::Low < Lane::High);
        assert_eq!(Lane::ALL.len(), 3);
    }

    #[test]
    fn fill_source_remoteness() {
        assert!(!FillSource::L2Hit.is_remote());
        assert!(!FillSource::L2Fwd.is_remote());
        assert!(!FillSource::LocalMem.is_remote());
        assert!(FillSource::RemoteMem.is_remote());
        assert!(FillSource::RemoteDirty.is_remote());
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(0x40).to_string(), "0x40");
        assert_eq!(LineAddr(0x2).to_string(), "L0x2");
    }
}
