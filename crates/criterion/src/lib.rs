//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, vendored so the workspace builds offline.
//!
//! It implements the subset of the criterion 0.x API this workspace's
//! benches use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`], [`black_box`] — with real
//! wall-clock measurement (warm-up, calibrated iteration counts, mean /
//! min / max over samples) but none of criterion's statistics machinery,
//! plotting, or baseline storage.
//!
//! Passing `--test` (as `cargo test --benches` does) runs every
//! benchmark exactly once, so bench targets double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: holds measurement settings and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }

    /// Open a named group of benchmarks (`group/bench` ids).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// No-op, for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    /// Set the measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.c, &full, f);
        self
    }

    /// Close the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_iters<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    if c.test_mode {
        time_iters(&mut f, 1);
        println!("Testing {id} ... ok");
        return;
    }
    // Warm up and estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut warm_spent = Duration::ZERO;
    while warm_spent < c.warm_up_time || warm_iters == 0 {
        warm_spent += time_iters(&mut f, 1);
        warm_iters += 1;
        if warm_start.elapsed() > c.warm_up_time.mul_f64(4.0) {
            break;
        }
    }
    let per_iter = warm_spent
        .checked_div(warm_iters as u32)
        .unwrap_or(Duration::ZERO);
    // Pick iterations per sample so the whole run fits measurement_time.
    let budget_per_sample = c.measurement_time.checked_div(c.sample_size as u32);
    let iters_per_sample = match (budget_per_sample, per_iter.as_nanos()) {
        (Some(budget), ns) if ns > 0 => (budget.as_nanos() / ns).clamp(1, u64::MAX as u128) as u64,
        _ => 1,
    };
    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let d = time_iters(&mut f, iters_per_sample);
        samples.push(d.as_secs_f64() / iters_per_sample as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {iters_per_sample} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1, "test mode runs each bench once");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
