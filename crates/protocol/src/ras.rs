//! Reliability/Availability/Serviceability hooks (paper §2.7).
//!
//! "These RAS features can be implemented by changing the semantics of
//! memory accesses through the flexibility available in the programmable
//! protocol engines." The paper names three examples — *persistent
//! memory regions*, *memory mirroring*, and *dual-redundant execution* —
//! and notes that persistence needs "mechanisms to force volatile
//! (cached) state to safe memory, as well as mechanisms to control
//! access to persistent regions ... by making the protocol engines
//! intervene in accesses to persistent areas and perform capability
//! checks or persistent memory barriers".
//!
//! [`RasPolicy`] is that intervention point: the home engine consults it
//! on every memory write it performs, and the chip can issue
//! [`RasPolicy::persist_barrier`] to force lines home. Mirroring
//! duplicates home writes into a mirror log; capability checks gate
//! persistent regions.

use std::collections::{BTreeMap, HashMap};

use piranha_types::{LineAddr, NodeId};

/// A half-open line range `[start, end)` with RAS semantics attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    /// First line.
    pub start: LineAddr,
    /// One past the last line.
    pub end: LineAddr,
}

impl LineRange {
    /// Whether `line` falls in the range.
    pub fn contains(&self, line: LineAddr) -> bool {
        (self.start.0..self.end.0).contains(&line.0)
    }

    /// Number of lines covered.
    pub fn lines(&self) -> u64 {
        self.end.0.saturating_sub(self.start.0)
    }
}

/// A write capability for a persistent region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability(pub u64);

/// What the policy says about a memory write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteVerdict {
    /// Plain volatile memory: proceed.
    Allow,
    /// Persistent region, capability valid: proceed and journal.
    AllowPersistent,
    /// Persistent region, no/invalid capability: the engine must raise a
    /// protection fault instead of writing.
    Deny,
}

/// The per-node RAS policy the protocol engines consult.
///
/// # Examples
///
/// ```
/// use piranha_protocol::ras::{Capability, LineRange, RasPolicy, WriteVerdict};
/// use piranha_types::{LineAddr, NodeId};
///
/// let mut ras = RasPolicy::new(NodeId(0));
/// let region = LineRange { start: LineAddr(100), end: LineAddr(200) };
/// let cap = ras.register_persistent(region);
/// assert_eq!(ras.check_write(LineAddr(150), None), WriteVerdict::Deny);
/// assert_eq!(ras.check_write(LineAddr(150), Some(cap)), WriteVerdict::AllowPersistent);
/// assert_eq!(ras.check_write(LineAddr(50), None), WriteVerdict::Allow);
/// ```
#[derive(Debug)]
pub struct RasPolicy {
    node: NodeId,
    persistent: Vec<(LineRange, Capability)>,
    mirrored: Vec<LineRange>,
    next_cap: u64,
    /// Journal of persistent writes: line → last persisted version
    /// (survives "power failure" — i.e., is kept outside the cache
    /// model and never invalidated).
    journal: BTreeMap<LineAddr, u64>,
    /// Mirror copies of mirrored-region writes.
    mirror: HashMap<LineAddr, u64>,
    faults: u64,
}

impl RasPolicy {
    /// A policy with no special regions (every write is plain volatile).
    pub fn new(node: NodeId) -> Self {
        RasPolicy {
            node,
            persistent: Vec::new(),
            mirrored: Vec::new(),
            next_cap: 1,
            journal: BTreeMap::new(),
            mirror: HashMap::new(),
            faults: 0,
        }
    }

    /// The node this policy belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Register a persistent region; returns the capability writers must
    /// present.
    pub fn register_persistent(&mut self, range: LineRange) -> Capability {
        let cap = Capability(self.next_cap);
        self.next_cap += 1;
        self.persistent.push((range, cap));
        cap
    }

    /// Register a mirrored region: home writes are duplicated.
    pub fn register_mirrored(&mut self, range: LineRange) {
        self.mirrored.push(range);
    }

    /// Check a write to home memory, counting capability faults.
    pub fn check_write(&mut self, line: LineAddr, cap: Option<Capability>) -> WriteVerdict {
        for (range, required) in &self.persistent {
            if range.contains(line) {
                return if cap == Some(*required) {
                    WriteVerdict::AllowPersistent
                } else {
                    self.faults += 1;
                    WriteVerdict::Deny
                };
            }
        }
        WriteVerdict::Allow
    }

    /// Apply the memory-write side effects: journal persistent lines,
    /// duplicate mirrored lines. Call after the engine performed the
    /// actual memory write.
    pub fn on_home_write(&mut self, line: LineAddr, version: u64) {
        if self.persistent.iter().any(|(r, _)| r.contains(line)) {
            self.journal.insert(line, version);
        }
        if self.mirrored.iter().any(|r| r.contains(line)) {
            self.mirror.insert(line, version);
        }
    }

    /// A persistent-memory barrier: returns the lines of `range` that
    /// are dirty relative to the journal given the current cached
    /// versions — the engine must force exactly these home (write-back
    /// plus journal) before the barrier completes, which is how
    /// transaction commits avoid the disk/NVDRAM round-trip the paper
    /// describes.
    pub fn persist_barrier(
        &self,
        range: LineRange,
        cached: impl Iterator<Item = (LineAddr, u64)>,
    ) -> Vec<(LineAddr, u64)> {
        cached
            .filter(|(l, v)| range.contains(*l) && self.journal.get(l) != Some(v))
            .collect()
    }

    /// The journaled (persisted) version of a line, if any.
    pub fn persisted(&self, line: LineAddr) -> Option<u64> {
        self.journal.get(&line).copied()
    }

    /// The mirror copy of a line, if any.
    pub fn mirror_copy(&self, line: LineAddr) -> Option<u64> {
        self.mirror.get(&line).copied()
    }

    /// All (line, version) pairs currently held in the mirror log, in
    /// line order — the end-of-run consistency audit walks these and
    /// compares each against home memory.
    pub fn mirror_entries(&self) -> Vec<(LineAddr, u64)> {
        let mut entries: Vec<_> = self.mirror.iter().map(|(l, v)| (*l, *v)).collect();
        entries.sort_by_key(|(l, _)| l.0);
        entries
    }

    /// The registered mirrored ranges.
    pub fn mirrored_ranges(&self) -> &[LineRange] {
        &self.mirrored
    }

    /// Capability faults raised so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Simulate recovery after a crash: the journal survives; everything
    /// volatile is gone. Returns the recovered (line, version) pairs of
    /// `range`.
    pub fn recover(&self, range: LineRange) -> Vec<(LineAddr, u64)> {
        self.journal
            .range(range.start..range.end)
            .map(|(l, v)| (*l, *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(a: u64, b: u64) -> LineRange {
        LineRange {
            start: LineAddr(a),
            end: LineAddr(b),
        }
    }

    #[test]
    fn capability_gating() {
        let mut ras = RasPolicy::new(NodeId(0));
        let cap = ras.register_persistent(range(10, 20));
        let other = ras.register_persistent(range(30, 40));
        assert_eq!(
            ras.check_write(LineAddr(15), Some(cap)),
            WriteVerdict::AllowPersistent
        );
        assert_eq!(
            ras.check_write(LineAddr(15), Some(other)),
            WriteVerdict::Deny
        );
        assert_eq!(ras.check_write(LineAddr(15), None), WriteVerdict::Deny);
        assert_eq!(ras.check_write(LineAddr(5), None), WriteVerdict::Allow);
        assert_eq!(ras.faults(), 2);
    }

    #[test]
    fn journal_and_recovery() {
        let mut ras = RasPolicy::new(NodeId(0));
        ras.register_persistent(range(0, 100));
        ras.on_home_write(LineAddr(3), 7);
        ras.on_home_write(LineAddr(4), 9);
        ras.on_home_write(LineAddr(200), 1); // outside: not journaled
        assert_eq!(ras.persisted(LineAddr(3)), Some(7));
        assert_eq!(ras.persisted(LineAddr(200)), None);
        // "Power failure": only the journal survives.
        let recovered = ras.recover(range(0, 100));
        assert_eq!(recovered, vec![(LineAddr(3), 7), (LineAddr(4), 9)]);
    }

    #[test]
    fn persist_barrier_finds_unjournaled_dirty_lines() {
        let mut ras = RasPolicy::new(NodeId(0));
        ras.register_persistent(range(0, 100));
        ras.on_home_write(LineAddr(1), 5);
        // Cached state: line 1 moved on to v6; line 2 dirty at v3; line
        // 200 outside the region.
        let cached = vec![(LineAddr(1), 6u64), (LineAddr(2), 3), (LineAddr(200), 9)];
        let todo = ras.persist_barrier(range(0, 100), cached.into_iter());
        assert_eq!(todo, vec![(LineAddr(1), 6), (LineAddr(2), 3)]);
        // After forcing them home, the barrier is clean.
        ras.on_home_write(LineAddr(1), 6);
        ras.on_home_write(LineAddr(2), 3);
        let cached = vec![(LineAddr(1), 6u64), (LineAddr(2), 3)];
        assert!(ras
            .persist_barrier(range(0, 100), cached.into_iter())
            .is_empty());
    }

    #[test]
    fn mirroring_duplicates_writes() {
        let mut ras = RasPolicy::new(NodeId(1));
        ras.register_mirrored(range(50, 60));
        ras.on_home_write(LineAddr(55), 11);
        ras.on_home_write(LineAddr(70), 12);
        assert_eq!(ras.mirror_copy(LineAddr(55)), Some(11));
        assert_eq!(ras.mirror_copy(LineAddr(70)), None);
    }

    #[test]
    fn range_arithmetic() {
        let r = range(10, 20);
        assert!(r.contains(LineAddr(10)) && r.contains(LineAddr(19)));
        assert!(!r.contains(LineAddr(20)) && !r.contains(LineAddr(9)));
        assert_eq!(r.lines(), 10);
    }
}
