//! Inter-node coherence messages.
//!
//! These are the payloads of the Short/Long interconnect packets. The
//! lane assignment follows paper §2.5.3: requests to a home travel on
//! the low-priority lane, while write-backs, forwarded requests, and all
//! replies travel on the high-priority lane — one of the two ingredients
//! (with buffer sizing) that removes the deadlock-avoidance use of NAKs.

use piranha_types::{Lane, LineAddr, NodeId, ReqType};

/// The access right granted by a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// A shared (read-only) copy.
    Shared,
    /// An exclusive (writable) copy.
    Exclusive,
}

/// An inter-node protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoMsg {
    /// A request sent to the line's home node.
    Req {
        /// Request type.
        kind: ReqType,
        /// The line.
        line: LineAddr,
    },
    /// An exclusive owner returns (possibly clean) data to the home,
    /// relinquishing ownership. The owner keeps a valid copy until
    /// [`ProtoMsg::WbAck`] arrives so it can service forwarded requests
    /// (the write-back race solution).
    WriteBack {
        /// The line.
        line: LineAddr,
        /// Data version written back.
        version: u64,
    },
    /// Home acknowledges a write-back; the former owner may now drop its
    /// retained copy.
    WbAck {
        /// The line.
        line: LineAddr,
    },
    /// An owner that serviced a forwarded *read* freshens the home's
    /// memory (the directory already lists both sharers).
    SharingWb {
        /// The line.
        line: LineAddr,
        /// Data version.
        version: u64,
    },
    /// Home forwards a request to the current exclusive owner, which
    /// replies directly to the requester (reply forwarding).
    Fwd {
        /// Original request type.
        kind: ReqType,
        /// The line.
        line: LineAddr,
        /// Who to reply to.
        requester: NodeId,
        /// The line's home (for the sharing write-back).
        home: NodeId,
    },
    /// A data or acknowledgement reply to the requester.
    Reply {
        /// The line.
        line: LineAddr,
        /// Granted right.
        grant: Grant,
        /// Data version; `None` for a data-less upgrade acknowledgement.
        version: Option<u64>,
        /// How many [`ProtoMsg::InvalAck`]s the requester must gather
        /// before its transaction fully completes (eager exclusive
        /// replies let it *use* the data immediately).
        acks_expected: u32,
        /// Whether the reply came from a remote owner's cache (3-hop)
        /// rather than home memory — drives remote-dirty stall
        /// attribution.
        from_owner: bool,
    },
    /// A cruise-missile invalidate: visits each node in `route` in turn;
    /// the last node acknowledges to `requester`. Injecting a handful of
    /// these instead of one message per sharer bounds both network
    /// buffering and home-engine occupancy (paper §2.5.3).
    Inval {
        /// The line.
        line: LineAddr,
        /// Nodes to visit, in order.
        route: Vec<NodeId>,
        /// Index of the node currently being visited.
        hop: u32,
        /// Who gathers the acknowledgement.
        requester: NodeId,
    },
    /// The terminal acknowledgement of one CMI route.
    InvalAck {
        /// The line.
        line: LineAddr,
    },
}

impl ProtoMsg {
    /// The virtual lane this message travels on (paper §2.5.3).
    pub fn lane(&self) -> Lane {
        match self {
            ProtoMsg::Req { .. } => Lane::Low,
            _ => Lane::High,
        }
    }

    /// Whether the message carries a 64-byte data section (long packet).
    pub fn is_long(&self) -> bool {
        match self {
            ProtoMsg::WriteBack { .. } | ProtoMsg::SharingWb { .. } => true,
            ProtoMsg::Reply { version, .. } => version.is_some(),
            _ => false,
        }
    }

    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match self {
            ProtoMsg::Req { line, .. }
            | ProtoMsg::WriteBack { line, .. }
            | ProtoMsg::WbAck { line }
            | ProtoMsg::SharingWb { line, .. }
            | ProtoMsg::Fwd { line, .. }
            | ProtoMsg::Reply { line, .. }
            | ProtoMsg::Inval { line, .. }
            | ProtoMsg::InvalAck { line } => *line,
        }
    }
}

/// Partition invalidation targets into at most `max_routes` CMI routes,
/// each visiting a disjoint subset of nodes.
///
/// The paper bounds messages injected per request to "a total of 4";
/// with 16 TSRF entries per engine this caps buffering at 128 message
/// headers per node *independent of system size*.
///
/// # Panics
///
/// Panics if `max_routes` is zero.
pub fn plan_cmi_routes(targets: &[NodeId], max_routes: usize) -> Vec<Vec<NodeId>> {
    assert!(max_routes > 0, "need at least one route");
    if targets.is_empty() {
        return Vec::new();
    }
    let routes = targets.len().min(max_routes);
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); routes];
    for (i, &t) in targets.iter().enumerate() {
        out[i % routes].push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_assignment_follows_paper() {
        let line = LineAddr(1);
        assert_eq!(
            ProtoMsg::Req {
                kind: ReqType::Read,
                line
            }
            .lane(),
            Lane::Low
        );
        assert_eq!(ProtoMsg::WriteBack { line, version: 0 }.lane(), Lane::High);
        assert_eq!(
            ProtoMsg::Fwd {
                kind: ReqType::Read,
                line,
                requester: NodeId(0),
                home: NodeId(1)
            }
            .lane(),
            Lane::High
        );
        assert_eq!(
            ProtoMsg::Reply {
                line,
                grant: Grant::Shared,
                version: Some(1),
                acks_expected: 0,
                from_owner: false
            }
            .lane(),
            Lane::High
        );
    }

    #[test]
    fn packet_length_by_content() {
        let line = LineAddr(1);
        assert!(ProtoMsg::WriteBack { line, version: 0 }.is_long());
        assert!(ProtoMsg::SharingWb { line, version: 0 }.is_long());
        assert!(!ProtoMsg::WbAck { line }.is_long());
        assert!(!ProtoMsg::Req {
            kind: ReqType::Read,
            line
        }
        .is_long());
        assert!(ProtoMsg::Reply {
            line,
            grant: Grant::Exclusive,
            version: Some(2),
            acks_expected: 0,
            from_owner: true
        }
        .is_long());
        assert!(!ProtoMsg::Reply {
            line,
            grant: Grant::Exclusive,
            version: None,
            acks_expected: 1,
            from_owner: false
        }
        .is_long());
    }

    #[test]
    fn line_accessor_covers_all_variants() {
        let line = LineAddr(77);
        let msgs = [
            ProtoMsg::Req {
                kind: ReqType::Read,
                line,
            },
            ProtoMsg::WriteBack { line, version: 1 },
            ProtoMsg::WbAck { line },
            ProtoMsg::SharingWb { line, version: 1 },
            ProtoMsg::Fwd {
                kind: ReqType::Read,
                line,
                requester: NodeId(0),
                home: NodeId(1),
            },
            ProtoMsg::Reply {
                line,
                grant: Grant::Shared,
                version: None,
                acks_expected: 0,
                from_owner: false,
            },
            ProtoMsg::Inval {
                line,
                route: vec![],
                hop: 0,
                requester: NodeId(0),
            },
            ProtoMsg::InvalAck { line },
        ];
        for m in msgs {
            assert_eq!(m.line(), line);
        }
    }

    #[test]
    fn cmi_routes_bound_injections() {
        let targets: Vec<NodeId> = (0..11u16).map(NodeId).collect();
        let routes = plan_cmi_routes(&targets, 4);
        assert_eq!(routes.len(), 4, "at most 4 messages injected");
        let visited: usize = routes.iter().map(Vec::len).sum();
        assert_eq!(visited, 11, "every target visited exactly once");
        // Balanced within one.
        let (min, max) = (
            routes.iter().map(Vec::len).min().unwrap(),
            routes.iter().map(Vec::len).max().unwrap(),
        );
        assert!(max - min <= 1);
    }

    #[test]
    fn cmi_with_few_targets_uses_fewer_routes() {
        let routes = plan_cmi_routes(&[NodeId(3), NodeId(9)], 4);
        assert_eq!(routes.len(), 2);
        assert!(plan_cmi_routes(&[], 4).is_empty());
    }
}
