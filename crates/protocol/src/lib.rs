//! The Piranha protocol engines and inter-node coherence protocol
//! (paper §2.5).
//!
//! Each processing node has two microprogrammable controllers: the **home
//! engine**, exporting memory homed at the node, and the **remote
//! engine**, importing memory homed elsewhere. Both share one hardware
//! design and differ only in microcode.
//!
//! This crate provides:
//!
//! * [`microcode`] — a faithful model of the microsequencer itself
//!   (1024×21-bit microstore, the seven instruction types
//!   SEND/RECEIVE/LSEND/LRECEIVE/TEST/SET/MOVE, 16-way conditional
//!   branching by OR-ing a condition code into the next-address field,
//!   and interleaved even/odd thread execution), plus a small
//!   microassembler — demonstrated with the paper's example: a remote
//!   read handled in four microinstructions;
//! * [`tsrf`] — the Transaction State Register File: 16 entries per
//!   engine holding per-transaction thread state, matched by address;
//! * [`msg`] — the inter-node message vocabulary;
//! * [`coherence`] — the production protocol state machines
//!   ([`HomeEngine`], [`RemoteEngine`]) implementing the paper's
//!   invalidation-based, **NAK-free** directory protocol: clean-exclusive
//!   optimization, reply forwarding from the remote owner, eager
//!   exclusive replies with acknowledgements gathered at the requester,
//!   immediate directory state changes on 3-hop writes (no "ownership
//!   change" confirmations), write-back races resolved by the owner
//!   retaining its copy until the home acknowledges, early forwarded
//!   requests parked in the outstanding TSRF entry, and cruise-missile
//!   invalidates (CMI) that bound both injected messages and buffering.
//!
//! The state machines are expressed as plain Rust handlers whose
//! *occupancy* is charged from per-operation microinstruction counts
//! ([`coherence::occupancy_cycles`]) matching the microcode cost model —
//! the same timing as interpreting the microcode, with far better
//! auditability of the protocol itself.

#![warn(missing_docs)]

pub mod coherence;
pub mod component;
pub mod microcode;
pub mod msg;
pub mod ras;
pub mod recovery;
pub mod tsrf;

pub use coherence::{EngineAction, HomeEngine, HomeIn, RemoteEngine, RemoteIn};
pub use component::{EngineComplex, EngineEvent};
pub use msg::{Grant, ProtoMsg};
pub use ras::{Capability, LineRange, RasPolicy, WriteVerdict};
pub use recovery::EngineRecovery;
pub use tsrf::{Tsrf, TsrfEntry, TSRF_ENTRIES};
