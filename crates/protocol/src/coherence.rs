//! The inter-node coherence protocol state machines (paper §2.5.3).
//!
//! An invalidation-based directory protocol with four request types
//! (read, read-exclusive, exclusive/upgrade, exclusive-without-data) and
//! the paper's distinguishing properties:
//!
//! * **No NAKs, no retries.** Deadlock is avoided by lane assignment and
//!   bounded buffering (see `piranha-net`); protocol races are avoided by
//!   guaranteeing forwarded requests can always be serviced: an owner
//!   writing back keeps a valid copy until the home acknowledges
//!   ([`RemoteEngine`] `wbs`), and a forwarded request arriving at a new
//!   owner before its data is stashed in the outstanding TSRF entry
//!   (early-forward race).
//! * **Immediate directory updates for 3-hop writes.** A read-exclusive
//!   forwarded to a remote owner updates the directory on the spot; no
//!   "ownership change" confirmation returns to home, eliminating that
//!   message and its engine occupancy (the DASH comparison in the
//!   paper).
//! * **Clean-exclusive optimization**: a read to an uncached, un-shared
//!   line returns an exclusive copy.
//! * **Reply forwarding**: the remote owner answers the requester
//!   directly.
//! * **Eager exclusive replies**: exclusivity is granted before
//!   invalidations complete; acknowledgements are gathered at the
//!   *requester*.
//! * **Cruise-missile invalidates**: at most [`MAX_CMI_ROUTES`]
//!   invalidation messages are injected per request, each visiting a
//!   chain of nodes, with one acknowledgement per route.
//!
//! One deliberate deviation, recorded in `DESIGN.md`: while a read is
//! forwarded to a remote owner, this implementation keeps the directory
//! in `Exclusive(owner)` and blocks conflicting requests at the home in
//! a pending entry until the owner's sharing write-back freshens memory
//! (the paper instead updates the directory immediately and relies on
//! equivalent pending-entry blocking at the home L2 controller — same
//! serialization, different bookkeeping location).

use std::collections::{HashMap, VecDeque};

use piranha_kernel::Counter;
use piranha_mem::{DirEntry, NodeSet};
use piranha_types::{FillSource, LineAddr, NodeId, ReqType};

use crate::msg::{plan_cmi_routes, Grant, ProtoMsg};
use crate::tsrf::Tsrf;

/// Maximum CMI messages injected per request (paper §2.5.3: "limit
/// invalidation messages to a total of 4").
pub const MAX_CMI_ROUTES: usize = 4;

/// Microinstruction cost of handling one engine input, for occupancy
/// accounting (the paper: "typical cache coherence transactions require
/// only a few instructions at each engine").
pub fn occupancy_cycles(input_kind: &str) -> u64 {
    match input_kind {
        "req" => 6,
        "reply" => 4,
        "fwd" => 6,
        "inval" => 4,
        "ack" => 2,
        "wb" => 4,
        "export" => 4,
        _ => 4,
    }
}

/// Read/write access to the directory bits stored with this node's
/// memory (implemented over the `piranha-mem` banks by the chip).
pub trait DirStore {
    /// Current directory entry for `line`.
    fn dir(&self, line: LineAddr) -> DirEntry;
    /// Overwrite the directory entry for `line`.
    fn set_dir(&mut self, line: LineAddr, dir: DirEntry);
    /// The data version stored in this node's memory (used when the home
    /// engine answers a local request directly from memory).
    fn mem_version(&self, line: LineAddr) -> u64;
}

impl DirStore for HashMap<LineAddr, DirEntry> {
    fn dir(&self, line: LineAddr) -> DirEntry {
        self.get(&line).cloned().unwrap_or_default()
    }
    fn set_dir(&mut self, line: LineAddr, dir: DirEntry) {
        self.insert(line, dir);
    }
    fn mem_version(&self, _line: LineAddr) -> u64 {
        0
    }
}

/// An action requested by a protocol engine; the chip simulator applies
/// state synchronously and charges the timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineAction {
    /// Send a message over the interconnect.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: ProtoMsg,
    },
    /// Ask the local L2 bank to export the line (data + downgrade or
    /// purge); answered by an `ExportReply` input.
    Export {
        /// The line.
        line: LineAddr,
        /// Whether all local copies must be invalidated.
        excl: bool,
    },
    /// Deliver a fill to the local L2 bank (completes its pending miss).
    Fill {
        /// The line.
        line: LineAddr,
        /// Whether exclusivity was granted.
        excl: bool,
        /// Data version (`None` = data-less upgrade ack).
        version: Option<u64>,
        /// Stall-attribution source.
        source: FillSource,
    },
    /// Invalidate every local copy (CMI hop).
    Purge {
        /// The line.
        line: LineAddr,
    },
    /// Write data to this node's memory (home only).
    MemWrite {
        /// The line.
        line: LineAddr,
        /// Version to store.
        version: u64,
    },
}

/// Inputs to the home engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomeIn {
    /// A protocol message from the interconnect (for a line homed here).
    Msg {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: ProtoMsg,
    },
    /// The local L2 bank granted exclusivity eagerly and needs the
    /// remote sharers invalidated (fire-and-forget).
    LocalInvalRemotes {
        /// The line.
        line: LineAddr,
    },
    /// The local L2 bank found the directory pointing at a remote
    /// exclusive owner and needs the line recalled for a local miss.
    LocalRecall {
        /// The line.
        line: LineAddr,
        /// The local request type.
        req: ReqType,
    },
    /// The local bank answered an earlier [`EngineAction::Export`].
    ExportReply {
        /// The line.
        line: LineAddr,
        /// Data version.
        version: u64,
        /// Whether the node's copy was dirty.
        dirty: bool,
        /// Whether any local copy existed (drives clean-exclusive).
        cached: bool,
    },
}

/// Inputs to the remote engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteIn {
    /// A protocol message from the interconnect (for a line homed
    /// elsewhere).
    Msg {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: ProtoMsg,
    },
    /// The local L2 bank has a miss on a remotely-homed line.
    LocalReq {
        /// The line.
        line: LineAddr,
        /// Request type.
        req: ReqType,
        /// The line's home node.
        home: NodeId,
    },
    /// The local L2 bank evicted a (possibly clean) exclusively-held
    /// line; write it back to its home.
    LocalWb {
        /// The line.
        line: LineAddr,
        /// Data version.
        version: u64,
        /// The line's home node.
        home: NodeId,
    },
    /// The local bank answered an earlier [`EngineAction::Export`]
    /// issued to service a forwarded request.
    ExportReply {
        /// The line.
        line: LineAddr,
        /// Data version.
        version: u64,
        /// Whether the copy was dirty.
        dirty: bool,
        /// Whether any local copy existed.
        cached: bool,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the Await prefix is descriptive
enum HomeTxn {
    /// Waiting for the local bank's export (requester may be self).
    AwaitExport { from: NodeId, kind: ReqType },
    /// A read was forwarded to the remote owner; memory is stale until
    /// its sharing write-back arrives. `reader` joins the sharers then.
    AwaitSharingWb { owner: NodeId, reader: NodeId },
    /// A request arrived from the node the directory still shows as
    /// exclusive owner: its write-back is in flight; wait for it.
    AwaitWb,
    /// A local miss was forwarded to the remote owner; the reply comes
    /// back here and fills the local bank.
    AwaitRecall { kind: ReqType, owner: NodeId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedReq {
    from: NodeId,
    kind: ReqType,
}

/// The home engine: exports memory whose home is this node.
#[derive(Debug)]
pub struct HomeEngine {
    node: NodeId,
    total_nodes: usize,
    max_cmi_routes: usize,
    active: Tsrf<HomeTxn>,
    waiters: HashMap<LineAddr, VecDeque<QueuedReq>>,
    /// Inputs deferred because the TSRF was full.
    overflow: VecDeque<HomeIn>,
    /// Outstanding self-requested invalidation acks (eager local grants).
    self_acks: HashMap<LineAddr, u32>,
    msgs_handled: Counter,
    instr_executed: Counter,
}

impl HomeEngine {
    /// A home engine for `node` in a system of `total_nodes`.
    pub fn new(node: NodeId, total_nodes: usize) -> Self {
        HomeEngine {
            node,
            total_nodes,
            max_cmi_routes: MAX_CMI_ROUTES,
            active: Tsrf::new(),
            waiters: HashMap::new(),
            overflow: VecDeque::new(),
            self_acks: HashMap::new(),
            msgs_handled: Counter::new(),
            instr_executed: Counter::new(),
        }
    }

    /// Messages handled (stats).
    pub fn msgs_handled(&self) -> u64 {
        self.msgs_handled.get()
    }

    /// Microinstructions executed (occupancy stats).
    pub fn instr_executed(&self) -> u64 {
        self.instr_executed.get()
    }

    /// Peak concurrent transactions.
    pub fn tsrf_high_water(&self) -> usize {
        self.active.high_water()
    }

    /// Override the CMI route budget (for the cruise-missile-invalidate
    /// ablation: a large value degenerates to one point-to-point
    /// invalidation message per sharer, as in conventional protocols).
    pub fn set_cmi_routes(&mut self, routes: usize) {
        assert!(routes > 0, "need at least one invalidation route");
        self.max_cmi_routes = routes;
    }

    /// Feed one input through the engine.
    pub fn handle(&mut self, input: HomeIn, dir: &mut dyn DirStore) -> Vec<EngineAction> {
        self.msgs_handled.inc();
        let mut out = Vec::new();
        match input {
            HomeIn::Msg { from, msg } => self.handle_msg(from, msg, dir, &mut out),
            HomeIn::LocalInvalRemotes { line } => {
                self.instr_executed.add(occupancy_cycles("inval"));
                let targets: Vec<NodeId> = dir
                    .dir(line)
                    .invalidation_targets(self.node, self.total_nodes)
                    .iter()
                    .collect();
                let routes = plan_cmi_routes(&targets, self.max_cmi_routes);
                if !routes.is_empty() {
                    self.self_acks.insert(line, routes.len() as u32);
                }
                for route in routes {
                    out.push(EngineAction::Send {
                        to: route[0],
                        msg: ProtoMsg::Inval {
                            line,
                            route,
                            hop: 0,
                            requester: self.node,
                        },
                    });
                }
                dir.set_dir(line, DirEntry::Uncached);
            }
            HomeIn::LocalRecall { line, req } => {
                // Dispatched exactly like a request from ourselves.
                self.dispatch(self.node, req, line, dir, &mut out);
            }
            HomeIn::ExportReply {
                line,
                version,
                dirty,
                cached,
            } => {
                self.instr_executed.add(occupancy_cycles("export"));
                let Some(HomeTxn::AwaitExport { from, kind }) = self.active.get(line).cloned()
                else {
                    panic!("ExportReply for {line} without an AwaitExport transaction");
                };
                self.active.free(line);
                let was_uncached = matches!(dir.dir(line), DirEntry::Uncached);
                let excl = kind.is_exclusive();
                let grant = if excl || (was_uncached && !cached) {
                    Grant::Exclusive
                } else {
                    Grant::Shared
                };
                if dirty && !excl {
                    // Freshen memory for shared grants; exclusive grants
                    // make memory irrelevant (directory says exclusive).
                    out.push(EngineAction::MemWrite { line, version });
                }
                // Directory update (the home node itself is never listed).
                if from != self.node {
                    match grant {
                        Grant::Exclusive => dir.set_dir(line, DirEntry::Exclusive(from)),
                        Grant::Shared => {
                            let mut s = match dir.dir(line) {
                                DirEntry::Shared(s) => s,
                                _ => NodeSet::new(),
                            };
                            s.insert(from);
                            dir.set_dir(line, DirEntry::Shared(s));
                        }
                    }
                } else if excl {
                    dir.set_dir(line, DirEntry::Uncached);
                }
                // Invalidate remote sharers for exclusive grants.
                let mut acks_expected = 0;
                if excl {
                    let targets: Vec<NodeId> = match dir.dir(line) {
                        DirEntry::Shared(s) => s.iter().filter(|&n| n != from).collect(),
                        _ => Vec::new(),
                    };
                    let routes = plan_cmi_routes(&targets, self.max_cmi_routes);
                    acks_expected = routes.len() as u32;
                    for route in routes {
                        out.push(EngineAction::Send {
                            to: route[0],
                            msg: ProtoMsg::Inval {
                                line,
                                route,
                                hop: 0,
                                requester: from,
                            },
                        });
                    }
                    if from != self.node {
                        dir.set_dir(line, DirEntry::Exclusive(from));
                    } else {
                        dir.set_dir(line, DirEntry::Uncached);
                    }
                }
                self.respond(
                    from,
                    line,
                    grant,
                    Some(version),
                    acks_expected,
                    false,
                    &mut out,
                );
                self.drain(line, dir, &mut out);
            }
        }
        out
    }

    /// Reply to `from`, collapsing self-replies into local fills.
    #[allow(clippy::too_many_arguments)]
    fn respond(
        &mut self,
        from: NodeId,
        line: LineAddr,
        grant: Grant,
        version: Option<u64>,
        acks_expected: u32,
        from_owner: bool,
        out: &mut Vec<EngineAction>,
    ) {
        if from == self.node {
            debug_assert_eq!(acks_expected, 0, "self acks tracked separately");
            out.push(EngineAction::Fill {
                line,
                excl: grant == Grant::Exclusive,
                version,
                source: if from_owner {
                    FillSource::RemoteDirty
                } else {
                    FillSource::LocalMem
                },
            });
        } else {
            out.push(EngineAction::Send {
                to: from,
                msg: ProtoMsg::Reply {
                    line,
                    grant,
                    version,
                    acks_expected,
                    from_owner,
                },
            });
        }
    }

    fn handle_msg(
        &mut self,
        from: NodeId,
        msg: ProtoMsg,
        dir: &mut dyn DirStore,
        out: &mut Vec<EngineAction>,
    ) {
        match msg {
            ProtoMsg::Req { kind, line } => {
                self.instr_executed.add(occupancy_cycles("req"));
                self.dispatch(from, kind, line, dir, out);
            }
            ProtoMsg::WriteBack { line, version } => {
                self.instr_executed.add(occupancy_cycles("wb"));
                let is_owner = dir.dir(line) == DirEntry::Exclusive(from);
                out.push(EngineAction::Send {
                    to: from,
                    msg: ProtoMsg::WbAck { line },
                });
                if is_owner {
                    out.push(EngineAction::MemWrite { line, version });
                    if !matches!(self.active.get(line), Some(HomeTxn::AwaitSharingWb { .. })) {
                        dir.set_dir(line, DirEntry::Uncached);
                    }
                }
                // If requests were blocked on this write-back, release
                // them.
                if matches!(self.active.get(line), Some(HomeTxn::AwaitWb)) {
                    self.active.free(line);
                    self.drain(line, dir, out);
                }
            }
            ProtoMsg::SharingWb { line, version } => {
                self.instr_executed.add(occupancy_cycles("wb"));
                out.push(EngineAction::MemWrite { line, version });
                if let Some(HomeTxn::AwaitSharingWb { owner, reader }) =
                    self.active.get(line).cloned()
                {
                    self.active.free(line);
                    let mut s = NodeSet::new();
                    s.insert(owner);
                    if reader != self.node {
                        s.insert(reader);
                    }
                    dir.set_dir(line, DirEntry::Shared(s));
                    self.drain(line, dir, out);
                }
            }
            ProtoMsg::Reply { line, version, .. } => {
                // A recall reply: the remote owner answered the home's
                // own request.
                self.instr_executed.add(occupancy_cycles("reply"));
                let Some(HomeTxn::AwaitRecall { kind, owner }) = self.active.get(line).cloned()
                else {
                    panic!("Reply at home for {line} without an AwaitRecall transaction");
                };
                self.active.free(line);
                let excl = kind.is_exclusive();
                if excl {
                    dir.set_dir(line, DirEntry::Uncached);
                } else {
                    // Owner retains a shared copy; memory freshened below.
                    let mut s = NodeSet::new();
                    s.insert(owner);
                    dir.set_dir(line, DirEntry::Shared(s));
                    out.push(EngineAction::MemWrite {
                        line,
                        version: version.expect("recall reply carries data"),
                    });
                }
                out.push(EngineAction::Fill {
                    line,
                    excl,
                    version,
                    source: FillSource::RemoteDirty,
                });
                self.drain(line, dir, out);
            }
            ProtoMsg::InvalAck { line } => {
                self.instr_executed.add(occupancy_cycles("ack"));
                if let Some(n) = self.self_acks.get_mut(&line) {
                    *n -= 1;
                    if *n == 0 {
                        self.self_acks.remove(&line);
                    }
                }
            }
            other => panic!("home engine received unexpected message {other:?}"),
        }
    }

    /// Serialize-or-start a request transaction for `line`.
    fn dispatch(
        &mut self,
        from: NodeId,
        kind: ReqType,
        line: LineAddr,
        dir: &mut dyn DirStore,
        out: &mut Vec<EngineAction>,
    ) {
        if self.active.get(line).is_some() {
            self.waiters
                .entry(line)
                .or_default()
                .push_back(QueuedReq { from, kind });
            return;
        }
        if from == self.node && !matches!(dir.dir(line), DirEntry::Exclusive(_)) {
            // A local recall that raced with the owner's write-back: the
            // directory no longer points at a remote owner, so memory is
            // valid and the local bank (which still holds its pending
            // entry) is answered straight from it — never through an
            // export, which would deadlock against that pending entry.
            let excl = kind.is_exclusive();
            if excl {
                let targets: Vec<NodeId> = dir
                    .dir(line)
                    .invalidation_targets(self.node, self.total_nodes)
                    .iter()
                    .collect();
                let routes = plan_cmi_routes(&targets, self.max_cmi_routes);
                if !routes.is_empty() {
                    self.self_acks.insert(line, routes.len() as u32);
                }
                for route in routes {
                    out.push(EngineAction::Send {
                        to: route[0],
                        msg: ProtoMsg::Inval {
                            line,
                            route,
                            hop: 0,
                            requester: self.node,
                        },
                    });
                }
                dir.set_dir(line, DirEntry::Uncached);
            }
            out.push(EngineAction::Fill {
                line,
                excl,
                version: Some(dir.mem_version(line)),
                source: FillSource::LocalMem,
            });
            return;
        }
        match dir.dir(line) {
            DirEntry::Uncached | DirEntry::Shared(_) => {
                let excl = kind.is_exclusive();
                // Upgrade with the requester still a sharer needs no data;
                // everything else exports the line from this node (data
                // comes from the local caches or memory).
                if kind == ReqType::Upgrade {
                    if let DirEntry::Shared(s) = dir.dir(line) {
                        if s.contains(from) {
                            // Ack-only path: invalidate the other sharers,
                            // grant in place. Local copies at home must
                            // also be purged.
                            let targets: Vec<NodeId> = s.iter().filter(|&n| n != from).collect();
                            let routes = plan_cmi_routes(&targets, self.max_cmi_routes);
                            let acks = routes.len() as u32;
                            for route in routes {
                                out.push(EngineAction::Send {
                                    to: route[0],
                                    msg: ProtoMsg::Inval {
                                        line,
                                        route,
                                        hop: 0,
                                        requester: from,
                                    },
                                });
                            }
                            out.push(EngineAction::Purge { line });
                            dir.set_dir(line, DirEntry::Exclusive(from));
                            self.respond(from, line, Grant::Exclusive, None, acks, false, out);
                            return;
                        }
                    }
                }
                if self
                    .active
                    .alloc(line, HomeTxn::AwaitExport { from, kind })
                    .is_err()
                {
                    // TSRF full: defer the whole request.
                    self.overflow.push_back(HomeIn::Msg {
                        from,
                        msg: ProtoMsg::Req { kind, line },
                    });
                    return;
                }
                out.push(EngineAction::Export { line, excl });
            }
            DirEntry::Exclusive(owner) if owner == from => {
                // Write-back race: the owner's WriteBack is in flight.
                if self.active.alloc(line, HomeTxn::AwaitWb).is_err() {
                    self.defer(from, kind, line);
                    return;
                }
                self.waiters
                    .entry(line)
                    .or_default()
                    .push_back(QueuedReq { from, kind });
            }
            DirEntry::Exclusive(owner) => {
                let eff_kind = if kind == ReqType::Upgrade {
                    ReqType::ReadEx
                } else {
                    kind
                };
                // Allocate transaction state *before* forwarding: a full
                // TSRF defers the whole request (it retries when an entry
                // frees — deferral, not a NAK: no message is rejected).
                if from == self.node {
                    // Local recall: the reply returns here.
                    if self
                        .active
                        .alloc(
                            line,
                            HomeTxn::AwaitRecall {
                                kind: eff_kind,
                                owner,
                            },
                        )
                        .is_err()
                    {
                        self.overflow
                            .push_back(HomeIn::LocalRecall { line, req: kind });
                        return;
                    }
                } else if eff_kind == ReqType::Read {
                    // Block until the sharing write-back freshens memory.
                    if self
                        .active
                        .alloc(
                            line,
                            HomeTxn::AwaitSharingWb {
                                owner,
                                reader: from,
                            },
                        )
                        .is_err()
                    {
                        self.defer(from, kind, line);
                        return;
                    }
                } else {
                    // 3-hop write: directory final immediately, no
                    // confirmation, no pending entry (the paper's key
                    // occupancy saving).
                    dir.set_dir(line, DirEntry::Exclusive(from));
                }
                out.push(EngineAction::Send {
                    to: owner,
                    msg: ProtoMsg::Fwd {
                        kind: eff_kind,
                        line,
                        requester: from,
                        home: self.node,
                    },
                });
            }
        }
    }

    /// Defer a request because the TSRF is full.
    fn defer(&mut self, from: NodeId, kind: ReqType, line: LineAddr) {
        self.overflow.push_back(HomeIn::Msg {
            from,
            msg: ProtoMsg::Req { kind, line },
        });
    }

    /// Replay queued requests after a transaction completes.
    fn drain(&mut self, line: LineAddr, dir: &mut dyn DirStore, out: &mut Vec<EngineAction>) {
        // Retry TSRF-overflowed inputs first (cheap, usually empty).
        if !self.overflow.is_empty() && !self.active.is_full() {
            let deferred: Vec<HomeIn> = self.overflow.drain(..).collect();
            for d in deferred {
                let acts = self.handle(d, dir);
                out.extend(acts);
            }
        }
        while self.active.get(line).is_none() {
            let Some(w) = self.waiters.get_mut(&line).and_then(|q| q.pop_front()) else {
                break;
            };
            self.dispatch(w.from, w.kind, line, dir, out);
        }
        if self.waiters.get(&line).is_some_and(|q| q.is_empty()) {
            self.waiters.remove(&line);
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RemoteTxn {
    kind: ReqType,
    home: NodeId,
    filled: bool,
    acks_expected: u32,
    acks_got: u32,
    stashed_fwd: Option<(ReqType, NodeId, NodeId)>, // (kind, requester, home)
}

/// The remote engine: imports memory homed at other nodes.
#[derive(Debug)]
pub struct RemoteEngine {
    node: NodeId,
    txns: Tsrf<RemoteTxn>,
    /// Write-backs awaiting acknowledgement; the retained version
    /// services forwarded requests (the write-back race solution).
    wbs: HashMap<LineAddr, u64>,
    /// Forwarded requests being serviced via a local export.
    fwd_pending: HashMap<LineAddr, (ReqType, NodeId, NodeId)>,
    /// Requests deferred because the TSRF was full.
    overflow: VecDeque<(LineAddr, ReqType, NodeId)>,
    msgs_handled: Counter,
    instr_executed: Counter,
}

impl RemoteEngine {
    /// A remote engine for `node`.
    pub fn new(node: NodeId) -> Self {
        RemoteEngine {
            node,
            txns: Tsrf::new(),
            wbs: HashMap::new(),
            fwd_pending: HashMap::new(),
            overflow: VecDeque::new(),
            msgs_handled: Counter::new(),
            instr_executed: Counter::new(),
        }
    }

    /// Messages handled (stats).
    pub fn msgs_handled(&self) -> u64 {
        self.msgs_handled.get()
    }

    /// Microinstructions executed (occupancy stats).
    pub fn instr_executed(&self) -> u64 {
        self.instr_executed.get()
    }

    /// Peak concurrent transactions.
    pub fn tsrf_high_water(&self) -> usize {
        self.txns.high_water()
    }

    /// Number of write-backs currently awaiting acknowledgement.
    pub fn pending_wbs(&self) -> usize {
        self.wbs.len()
    }

    /// Feed one input through the engine.
    pub fn handle(&mut self, input: RemoteIn) -> Vec<EngineAction> {
        self.msgs_handled.inc();
        let mut out = Vec::new();
        match input {
            RemoteIn::LocalReq { line, req, home } => {
                self.instr_executed.add(occupancy_cycles("req"));
                let txn = RemoteTxn {
                    kind: req,
                    home,
                    filled: false,
                    acks_expected: 0,
                    acks_got: 0,
                    stashed_fwd: None,
                };
                if self.txns.alloc(line, txn).is_err() {
                    self.overflow.push_back((line, req, home));
                    return out;
                }
                out.push(EngineAction::Send {
                    to: home,
                    msg: ProtoMsg::Req { kind: req, line },
                });
            }
            RemoteIn::LocalWb {
                line,
                version,
                home,
            } => {
                self.instr_executed.add(occupancy_cycles("wb"));
                self.wbs.insert(line, version);
                out.push(EngineAction::Send {
                    to: home,
                    msg: ProtoMsg::WriteBack { line, version },
                });
            }
            RemoteIn::Msg { from, msg } => self.handle_msg(from, msg, &mut out),
            RemoteIn::ExportReply {
                line,
                version,
                dirty,
                cached: _,
            } => {
                self.instr_executed.add(occupancy_cycles("export"));
                let (kind, requester, home) = self
                    .fwd_pending
                    .remove(&line)
                    .expect("ExportReply without a pending forwarded request");
                self.reply_to_fwd(line, kind, requester, home, version, dirty, &mut out);
            }
        }
        out
    }

    /// Answer a forwarded request with data version `version`.
    #[allow(clippy::too_many_arguments)]
    fn reply_to_fwd(
        &mut self,
        line: LineAddr,
        kind: ReqType,
        requester: NodeId,
        home: NodeId,
        version: u64,
        _dirty: bool,
        out: &mut Vec<EngineAction>,
    ) {
        let grant = if kind.is_exclusive() {
            Grant::Exclusive
        } else {
            Grant::Shared
        };
        out.push(EngineAction::Send {
            to: requester,
            msg: ProtoMsg::Reply {
                line,
                grant,
                version: Some(version),
                acks_expected: 0,
                from_owner: true,
            },
        });
        // For reads, freshen the home's memory — unless the requester
        // *is* the home, in which case the reply itself does it.
        if !kind.is_exclusive() && requester != home {
            out.push(EngineAction::Send {
                to: home,
                msg: ProtoMsg::SharingWb { line, version },
            });
        }
    }

    fn handle_msg(&mut self, from: NodeId, msg: ProtoMsg, out: &mut Vec<EngineAction>) {
        let _ = from;
        match msg {
            ProtoMsg::Reply {
                line,
                grant,
                version,
                acks_expected,
                from_owner,
            } => {
                self.instr_executed.add(occupancy_cycles("reply"));
                let txn = self
                    .txns
                    .get_mut(line)
                    .expect("reply without outstanding request");
                txn.filled = true;
                txn.acks_expected = acks_expected;
                let stashed = txn.stashed_fwd.take();
                out.push(EngineAction::Fill {
                    line,
                    excl: grant == Grant::Exclusive,
                    version,
                    source: if from_owner {
                        FillSource::RemoteDirty
                    } else {
                        FillSource::RemoteMem
                    },
                });
                // Early-forward race: service the parked request now that
                // the data has arrived (the fill above is applied first).
                if let Some((k, requester, home)) = stashed {
                    out.push(EngineAction::Export {
                        line,
                        excl: k.is_exclusive(),
                    });
                    self.fwd_pending.insert(line, (k, requester, home));
                }
                self.maybe_complete(line, out);
            }
            ProtoMsg::Fwd {
                kind,
                line,
                requester,
                home,
            } => {
                self.instr_executed.add(occupancy_cycles("fwd"));
                if let Some(&version) = self.wbs.get(&line) {
                    // Write-back race: serve from the retained copy.
                    self.reply_to_fwd(line, kind, requester, home, version, true, out);
                    return;
                }
                if let Some(txn) = self.txns.get_mut(line) {
                    if !txn.filled {
                        // Early forward: our own data has not arrived yet;
                        // park it in the TSRF entry (at most one can
                        // exist, paper footnote 3).
                        assert!(
                            txn.stashed_fwd.is_none(),
                            "protocol allows only one early forwarded request"
                        );
                        txn.stashed_fwd = Some((kind, requester, home));
                        return;
                    }
                }
                // Normal case: we own the line on-chip; export it.
                out.push(EngineAction::Export {
                    line,
                    excl: kind.is_exclusive(),
                });
                self.fwd_pending.insert(line, (kind, requester, home));
            }
            ProtoMsg::Inval {
                line,
                route,
                hop,
                requester,
            } => {
                self.instr_executed.add(occupancy_cycles("inval"));
                out.push(EngineAction::Purge { line });
                let next = hop + 1;
                if (next as usize) < route.len() {
                    out.push(EngineAction::Send {
                        to: route[next as usize],
                        msg: ProtoMsg::Inval {
                            line,
                            route,
                            hop: next,
                            requester,
                        },
                    });
                } else {
                    out.push(EngineAction::Send {
                        to: requester,
                        msg: ProtoMsg::InvalAck { line },
                    });
                }
            }
            ProtoMsg::InvalAck { line } => {
                self.instr_executed.add(occupancy_cycles("ack"));
                let txn = self
                    .txns
                    .get_mut(line)
                    .expect("ack without outstanding request");
                txn.acks_got += 1;
                self.maybe_complete(line, out);
            }
            ProtoMsg::WbAck { line } => {
                self.instr_executed.add(occupancy_cycles("ack"));
                let removed = self.wbs.remove(&line);
                debug_assert!(removed.is_some(), "WbAck without pending write-back");
            }
            other => panic!("remote engine received unexpected message {other:?}"),
        }
    }

    /// Free the TSRF entry when the transaction is fully complete and
    /// retry anything deferred on a full TSRF.
    fn maybe_complete(&mut self, line: LineAddr, out: &mut Vec<EngineAction>) {
        let done = self
            .txns
            .get(line)
            .is_some_and(|t| t.filled && t.acks_got >= t.acks_expected && t.stashed_fwd.is_none());
        if done {
            self.txns.free(line);
            if let Some((l, r, h)) = self.overflow.pop_front() {
                let acts = self.handle(RemoteIn::LocalReq {
                    line: l,
                    req: r,
                    home: h,
                });
                out.extend(acts);
            }
        }
    }

    /// Whether this engine's node currently has an unacknowledged
    /// write-back for `line` (test hook).
    pub fn wb_in_flight(&self, line: LineAddr) -> bool {
        self.wbs.contains_key(&line)
    }

    /// The node this engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(64);
    const HOME: NodeId = NodeId(0);
    const R1: NodeId = NodeId(1);
    const R2: NodeId = NodeId(2);

    fn dir_map() -> HashMap<LineAddr, DirEntry> {
        HashMap::new()
    }

    fn send_of(actions: &[EngineAction]) -> Vec<(NodeId, ProtoMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                EngineAction::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn remote_read_uncached_gets_clean_exclusive() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: L,
                },
            },
            &mut dir,
        );
        assert_eq!(
            acts,
            vec![EngineAction::Export {
                line: L,
                excl: false
            }]
        );
        let acts = home.handle(
            HomeIn::ExportReply {
                line: L,
                version: 5,
                dirty: false,
                cached: false,
            },
            &mut dir,
        );
        let sends = send_of(&acts);
        assert_eq!(
            sends,
            vec![(
                R1,
                ProtoMsg::Reply {
                    line: L,
                    grant: Grant::Exclusive, // clean-exclusive optimization
                    version: Some(5),
                    acks_expected: 0,
                    from_owner: false,
                }
            )]
        );
        assert_eq!(dir.dir(L), DirEntry::Exclusive(R1));
    }

    #[test]
    fn read_with_home_cached_copy_grants_shared() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: L,
                },
            },
            &mut dir,
        );
        let acts = home.handle(
            HomeIn::ExportReply {
                line: L,
                version: 5,
                dirty: true,
                cached: true,
            },
            &mut dir,
        );
        assert!(acts.contains(&EngineAction::MemWrite {
            line: L,
            version: 5
        }));
        let sends = send_of(&acts);
        assert!(matches!(
            &sends[0].1,
            ProtoMsg::Reply {
                grant: Grant::Shared,
                version: Some(5),
                ..
            }
        ));
        let DirEntry::Shared(s) = dir.dir(L) else {
            panic!("dir should be Shared")
        };
        assert!(s.contains(R1));
    }

    #[test]
    fn three_hop_write_updates_directory_immediately() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        dir.set_dir(L, DirEntry::Exclusive(R1));
        let acts = home.handle(
            HomeIn::Msg {
                from: R2,
                msg: ProtoMsg::Req {
                    kind: ReqType::ReadEx,
                    line: L,
                },
            },
            &mut dir,
        );
        let sends = send_of(&acts);
        assert_eq!(
            sends,
            vec![(
                R1,
                ProtoMsg::Fwd {
                    kind: ReqType::ReadEx,
                    line: L,
                    requester: R2,
                    home: HOME
                }
            )]
        );
        // Directory final immediately; no pending entry blocks the line.
        assert_eq!(dir.dir(L), DirEntry::Exclusive(R2));
        assert_eq!(
            home.tsrf_high_water(),
            0,
            "no confirmation wait for 3-hop writes"
        );
    }

    #[test]
    fn forwarded_read_blocks_until_sharing_writeback() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        dir.set_dir(L, DirEntry::Exclusive(R1));
        let acts = home.handle(
            HomeIn::Msg {
                from: R2,
                msg: ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: L,
                },
            },
            &mut dir,
        );
        assert!(matches!(
            send_of(&acts)[0].1,
            ProtoMsg::Fwd {
                kind: ReqType::Read,
                ..
            }
        ));
        // A third node's read queues at home meanwhile.
        let acts = home.handle(
            HomeIn::Msg {
                from: NodeId(3),
                msg: ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: L,
                },
            },
            &mut dir,
        );
        assert!(acts.is_empty(), "conflicting request must queue: {acts:?}");
        // Sharing write-back arrives: memory freshened, both sharers
        // recorded, queued request replayed.
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::SharingWb {
                    line: L,
                    version: 9,
                },
            },
            &mut dir,
        );
        assert!(acts.contains(&EngineAction::MemWrite {
            line: L,
            version: 9
        }));
        assert!(
            acts.contains(&EngineAction::Export {
                line: L,
                excl: false
            }),
            "queued read replays: {acts:?}"
        );
        let DirEntry::Shared(s) = dir.dir(L) else {
            panic!()
        };
        assert!(s.contains(R1) && s.contains(R2));
    }

    #[test]
    fn upgrade_with_sharers_is_ack_only_with_cmi() {
        let mut home = HomeEngine::new(HOME, 8);
        let mut dir = dir_map();
        let sharers: NodeSet = [R1, R2, NodeId(3), NodeId(4), NodeId(5)]
            .into_iter()
            .collect();
        dir.set_dir(L, DirEntry::Shared(sharers));
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::Req {
                    kind: ReqType::Upgrade,
                    line: L,
                },
            },
            &mut dir,
        );
        let sends = send_of(&acts);
        // 4 sharers to invalidate, within the 4-route CMI budget.
        let invals: Vec<_> = sends
            .iter()
            .filter(|(_, m)| matches!(m, ProtoMsg::Inval { .. }))
            .collect();
        assert_eq!(invals.len(), 4);
        let reply = sends
            .iter()
            .find_map(|(to, m)| match m {
                ProtoMsg::Reply {
                    version,
                    acks_expected,
                    grant,
                    ..
                } => Some((*to, *version, *acks_expected, *grant)),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            reply,
            (R1, None, 4, Grant::Exclusive),
            "data-less eager reply"
        );
        assert_eq!(dir.dir(L), DirEntry::Exclusive(R1));
        assert!(
            acts.contains(&EngineAction::Purge { line: L }),
            "home copies purged"
        );
    }

    #[test]
    fn upgrade_race_falls_back_to_full_data() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        // R1 was invalidated by R2's earlier ReadEx; dir no longer lists
        // R1 when its upgrade arrives.
        dir.set_dir(L, DirEntry::Exclusive(R2));
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::Req {
                    kind: ReqType::Upgrade,
                    line: L,
                },
            },
            &mut dir,
        );
        // Treated as ReadEx: forwarded to the owner with data semantics.
        assert!(matches!(
            send_of(&acts)[0].1,
            ProtoMsg::Fwd {
                kind: ReqType::ReadEx,
                ..
            }
        ));
        assert_eq!(dir.dir(L), DirEntry::Exclusive(R1));
    }

    #[test]
    fn writeback_race_request_from_stale_owner_blocks_until_wb() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        dir.set_dir(L, DirEntry::Exclusive(R1));
        // R1 wrote the line back (message in flight) and re-requests.
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: L,
                },
            },
            &mut dir,
        );
        assert!(acts.is_empty(), "blocked awaiting the in-flight write-back");
        // The write-back lands: ack + memory write + the request replays.
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::WriteBack {
                    line: L,
                    version: 7,
                },
            },
            &mut dir,
        );
        assert!(acts.contains(&EngineAction::MemWrite {
            line: L,
            version: 7
        }));
        assert!(send_of(&acts).contains(&(R1, ProtoMsg::WbAck { line: L })));
        assert!(acts.contains(&EngineAction::Export {
            line: L,
            excl: false
        }));
    }

    #[test]
    fn stale_writeback_after_forward_is_acked_and_dropped() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        dir.set_dir(L, DirEntry::Exclusive(R2)); // already re-assigned
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::WriteBack {
                    line: L,
                    version: 3,
                },
            },
            &mut dir,
        );
        assert!(send_of(&acts).contains(&(R1, ProtoMsg::WbAck { line: L })));
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, EngineAction::MemWrite { .. })),
            "stale data discarded"
        );
        assert_eq!(dir.dir(L), DirEntry::Exclusive(R2));
    }

    #[test]
    fn local_recall_for_read_fills_bank_and_keeps_owner_shared() {
        let mut home = HomeEngine::new(HOME, 4);
        let mut dir = dir_map();
        dir.set_dir(L, DirEntry::Exclusive(R1));
        let acts = home.handle(
            HomeIn::LocalRecall {
                line: L,
                req: ReqType::Read,
            },
            &mut dir,
        );
        assert_eq!(
            send_of(&acts),
            vec![(
                R1,
                ProtoMsg::Fwd {
                    kind: ReqType::Read,
                    line: L,
                    requester: HOME,
                    home: HOME
                }
            )]
        );
        let acts = home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::Reply {
                    line: L,
                    grant: Grant::Shared,
                    version: Some(11),
                    acks_expected: 0,
                    from_owner: true,
                },
            },
            &mut dir,
        );
        assert!(acts.contains(&EngineAction::MemWrite {
            line: L,
            version: 11
        }));
        assert!(acts.contains(&EngineAction::Fill {
            line: L,
            excl: false,
            version: Some(11),
            source: FillSource::RemoteDirty,
        }));
        let DirEntry::Shared(s) = dir.dir(L) else {
            panic!()
        };
        assert!(
            s.contains(R1) && !s.contains(HOME),
            "home never appears in its own directory"
        );
    }

    #[test]
    fn local_inval_remotes_clears_directory_and_fires_cmi() {
        let mut home = HomeEngine::new(HOME, 8);
        let mut dir = dir_map();
        dir.set_dir(L, DirEntry::Shared([R1, R2].into_iter().collect()));
        let acts = home.handle(HomeIn::LocalInvalRemotes { line: L }, &mut dir);
        let invals = send_of(&acts);
        assert_eq!(invals.len(), 2);
        assert_eq!(dir.dir(L), DirEntry::Uncached);
        // Acks return quietly.
        home.handle(
            HomeIn::Msg {
                from: R1,
                msg: ProtoMsg::InvalAck { line: L },
            },
            &mut dir,
        );
        home.handle(
            HomeIn::Msg {
                from: R2,
                msg: ProtoMsg::InvalAck { line: L },
            },
            &mut dir,
        );
        assert!(home.self_acks.is_empty());
    }

    // ---- Remote engine ----

    #[test]
    fn local_request_sends_to_home_and_fill_completes() {
        let mut eng = RemoteEngine::new(R1);
        let acts = eng.handle(RemoteIn::LocalReq {
            line: L,
            req: ReqType::Read,
            home: HOME,
        });
        assert_eq!(
            send_of(&acts),
            vec![(
                HOME,
                ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: L
                }
            )]
        );
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Reply {
                line: L,
                grant: Grant::Shared,
                version: Some(4),
                acks_expected: 0,
                from_owner: false,
            },
        });
        assert_eq!(
            acts,
            vec![EngineAction::Fill {
                line: L,
                excl: false,
                version: Some(4),
                source: FillSource::RemoteMem,
            }]
        );
        assert_eq!(eng.txns.occupied(), 0, "transaction complete");
    }

    #[test]
    fn eager_exclusive_holds_tsrf_until_acks() {
        let mut eng = RemoteEngine::new(R1);
        eng.handle(RemoteIn::LocalReq {
            line: L,
            req: ReqType::ReadEx,
            home: HOME,
        });
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Reply {
                line: L,
                grant: Grant::Exclusive,
                version: Some(4),
                acks_expected: 2,
                from_owner: false,
            },
        });
        assert!(
            matches!(acts[0], EngineAction::Fill { excl: true, .. }),
            "data usable eagerly"
        );
        assert_eq!(eng.txns.occupied(), 1, "awaiting invalidation acks");
        eng.handle(RemoteIn::Msg {
            from: R2,
            msg: ProtoMsg::InvalAck { line: L },
        });
        assert_eq!(eng.txns.occupied(), 1);
        eng.handle(RemoteIn::Msg {
            from: NodeId(3),
            msg: ProtoMsg::InvalAck { line: L },
        });
        assert_eq!(eng.txns.occupied(), 0);
    }

    #[test]
    fn forwarded_request_serviced_via_export() {
        let mut eng = RemoteEngine::new(R1);
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Fwd {
                kind: ReqType::Read,
                line: L,
                requester: R2,
                home: HOME,
            },
        });
        assert_eq!(
            acts,
            vec![EngineAction::Export {
                line: L,
                excl: false
            }]
        );
        let acts = eng.handle(RemoteIn::ExportReply {
            line: L,
            version: 9,
            dirty: true,
            cached: true,
        });
        let sends = send_of(&acts);
        assert!(sends.contains(&(
            R2,
            ProtoMsg::Reply {
                line: L,
                grant: Grant::Shared,
                version: Some(9),
                acks_expected: 0,
                from_owner: true,
            }
        )));
        assert!(sends.contains(&(
            HOME,
            ProtoMsg::SharingWb {
                line: L,
                version: 9
            }
        )));
    }

    #[test]
    fn forward_to_home_requester_skips_sharing_writeback() {
        let mut eng = RemoteEngine::new(R1);
        eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Fwd {
                kind: ReqType::Read,
                line: L,
                requester: HOME,
                home: HOME,
            },
        });
        let acts = eng.handle(RemoteIn::ExportReply {
            line: L,
            version: 9,
            dirty: true,
            cached: true,
        });
        let sends = send_of(&acts);
        assert_eq!(
            sends.len(),
            1,
            "single reply, no separate SharingWb: {sends:?}"
        );
        assert_eq!(sends[0].0, HOME);
    }

    #[test]
    fn early_forward_parks_in_tsrf_until_data_arrives() {
        let mut eng = RemoteEngine::new(R1);
        eng.handle(RemoteIn::LocalReq {
            line: L,
            req: ReqType::ReadEx,
            home: HOME,
        });
        // Home granted us exclusivity and immediately forwarded R2's
        // request; the forward overtakes our data reply.
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Fwd {
                kind: ReqType::ReadEx,
                line: L,
                requester: R2,
                home: HOME,
            },
        });
        assert!(acts.is_empty(), "forward parked: {acts:?}");
        // Our data arrives: fill locally, then service the parked
        // forward.
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Reply {
                line: L,
                grant: Grant::Exclusive,
                version: Some(6),
                acks_expected: 0,
                from_owner: false,
            },
        });
        assert!(matches!(acts[0], EngineAction::Fill { .. }));
        assert!(matches!(
            acts[1],
            EngineAction::Export {
                line: _,
                excl: true
            }
        ));
    }

    #[test]
    fn writeback_race_served_from_retained_copy() {
        let mut eng = RemoteEngine::new(R1);
        eng.handle(RemoteIn::LocalWb {
            line: L,
            version: 12,
            home: HOME,
        });
        assert!(eng.wb_in_flight(L));
        // A forward crosses our write-back: serve it from the retained
        // version without touching the (already evicted) caches.
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Fwd {
                kind: ReqType::ReadEx,
                line: L,
                requester: R2,
                home: HOME,
            },
        });
        let sends = send_of(&acts);
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            &sends[0].1,
            ProtoMsg::Reply {
                version: Some(12),
                from_owner: true,
                grant: Grant::Exclusive,
                ..
            }
        ));
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, EngineAction::Export { .. })),
            "no local export needed"
        );
        eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::WbAck { line: L },
        });
        assert!(!eng.wb_in_flight(L));
    }

    #[test]
    fn cmi_chain_hops_and_final_ack() {
        let mut eng = RemoteEngine::new(R1);
        let route = vec![R1, R2, NodeId(3)];
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Inval {
                line: L,
                route: route.clone(),
                hop: 0,
                requester: NodeId(7),
            },
        });
        assert!(acts.contains(&EngineAction::Purge { line: L }));
        assert_eq!(
            send_of(&acts),
            vec![(
                R2,
                ProtoMsg::Inval {
                    line: L,
                    route: route.clone(),
                    hop: 1,
                    requester: NodeId(7)
                }
            )]
        );
        // The last node in the route acks the requester.
        let mut last = RemoteEngine::new(NodeId(3));
        let acts = last.handle(RemoteIn::Msg {
            from: R2,
            msg: ProtoMsg::Inval {
                line: L,
                route,
                hop: 2,
                requester: NodeId(7),
            },
        });
        assert_eq!(
            send_of(&acts),
            vec![(NodeId(7), ProtoMsg::InvalAck { line: L })]
        );
    }

    #[test]
    fn tsrf_overflow_defers_and_retries() {
        let mut eng = RemoteEngine::new(R1);
        for i in 0..16u64 {
            eng.handle(RemoteIn::LocalReq {
                line: LineAddr(i),
                req: ReqType::Read,
                home: HOME,
            });
        }
        // 17th defers.
        let acts = eng.handle(RemoteIn::LocalReq {
            line: LineAddr(99),
            req: ReqType::Read,
            home: HOME,
        });
        assert!(acts.is_empty());
        // Completing one transaction releases the deferred request.
        let acts = eng.handle(RemoteIn::Msg {
            from: HOME,
            msg: ProtoMsg::Reply {
                line: LineAddr(0),
                grant: Grant::Shared,
                version: Some(1),
                acks_expected: 0,
                from_owner: false,
            },
        });
        assert!(
            send_of(&acts).contains(&(
                HOME,
                ProtoMsg::Req {
                    kind: ReqType::Read,
                    line: LineAddr(99)
                }
            )),
            "deferred request sent after completion: {acts:?}"
        );
    }
}
