//! The microprogrammable protocol-engine core (paper §2.5.1, Figure 4).
//!
//! "The microcode memory supports 1024 21-bit-wide instructions ... Each
//! microcode instruction consists of a 3-bit opcode, two 4-bit arguments,
//! and a 10-bit address that points to the next instruction to be
//! executed. Our design uses the following seven instruction types: SEND,
//! RECEIVE, LSEND (to local node), LRECEIVE (from local node), TEST,
//! SET, and MOVE. The RECEIVE, LRECEIVE, and TEST instructions behave as
//! multi-way conditional branches that can have up to 16 different
//! successor instructions, achieved by OR-ing a 4-bit condition code
//! into the least significant bits of the 10-bit next-instruction
//! address field."
//!
//! This module implements that machine exactly — including the
//! even/odd-thread interleaved execution model (tracked for occupancy
//! accounting) and a small microassembler with aligned dispatch tables
//! for the 16-way branches. The production coherence protocol lives in
//! [`crate::coherence`] as structurally-equivalent Rust; this module
//! demonstrates and validates the hardware substrate, e.g. reproducing
//! the paper's observation that "a typical read transaction to a remote
//! home involves a total of four instructions at the remote engine".

use piranha_types::LineAddr;

use crate::tsrf::Tsrf;

/// Microstore capacity (1024 instructions).
pub const STORE_SIZE: usize = 1024;
/// Per-thread state registers (4-bit addressable).
pub const NUM_VARS: usize = 16;

/// The seven microinstruction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Send a message (type from register `a`) to the external node held
    /// in register `b`.
    Send,
    /// Suspend until an external message arrives; its 4-bit type is OR-ed
    /// into the next-address field.
    Receive,
    /// Send a message (type from register `a`) to the local node.
    LSend,
    /// Suspend until a local message arrives (multi-way branch).
    LReceive,
    /// Multi-way branch on the low 4 bits of register `a`.
    Test,
    /// `var[a] = b` (immediate).
    Set,
    /// `var[a] = var[b]`.
    Move,
}

/// One 21-bit microinstruction: opcode, two 4-bit arguments, 10-bit next
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroInstr {
    /// Operation.
    pub op: MicroOp,
    /// First 4-bit argument (register index or message type).
    pub a: u8,
    /// Second 4-bit argument (register index or immediate).
    pub b: u8,
    /// 10-bit next-instruction address (base address for branches).
    pub next: u16,
}

impl MicroInstr {
    /// Pack into the 21-bit hardware encoding.
    pub fn encode(self) -> u32 {
        let op = match self.op {
            MicroOp::Send => 0u32,
            MicroOp::Receive => 1,
            MicroOp::LSend => 2,
            MicroOp::LReceive => 3,
            MicroOp::Test => 4,
            MicroOp::Set => 5,
            MicroOp::Move => 6,
        };
        op | ((self.a as u32 & 0xf) << 3)
            | ((self.b as u32 & 0xf) << 7)
            | ((self.next as u32 & 0x3ff) << 11)
    }

    /// Unpack from the 21-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics on the unused opcode 7.
    pub fn decode(bits: u32) -> Self {
        let op = match bits & 0b111 {
            0 => MicroOp::Send,
            1 => MicroOp::Receive,
            2 => MicroOp::LSend,
            3 => MicroOp::LReceive,
            4 => MicroOp::Test,
            5 => MicroOp::Set,
            6 => MicroOp::Move,
            _ => panic!("opcode 7 is unused"),
        };
        MicroInstr {
            op,
            a: ((bits >> 3) & 0xf) as u8,
            b: ((bits >> 7) & 0xf) as u8,
            next: ((bits >> 11) & 0x3ff) as u16,
        }
    }
}

/// The TSRF had no free entry (or the line already has a thread); the
/// engine must defer the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsrfFull;

impl std::fmt::Display for TsrfFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no free TSRF entry")
    }
}

impl std::error::Error for TsrfFull {}

/// An observable effect of running microcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroEffect {
    /// SEND: message of `msg_type` to the node id held in `dest_var`.
    Send {
        /// 4-bit message type.
        msg_type: u8,
        /// Value of the destination register.
        dest: u16,
    },
    /// LSEND: message of `msg_type` delivered to the local node.
    LocalSend {
        /// 4-bit message type.
        msg_type: u8,
    },
    /// The transaction's thread terminated and its TSRF entry was freed.
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Thread {
    pc: u16,
    vars: [u16; NUM_VARS],
    /// Waiting on Receive (false) or LReceive (true)? None = runnable.
    waiting_local: Option<bool>,
}

/// The microsequencer: microstore + TSRF-resident threads.
///
/// Execution convention: a microinstruction whose `next` address equals
/// its own address terminates the thread (the hardware equivalent is a
/// dispatch back to the idle loop).
#[derive(Debug)]
pub struct MicroEngine {
    store: Vec<MicroInstr>,
    threads: Tsrf<Thread>,
    executed: u64,
    /// Instructions issued from even/odd thread slots (the interleaved
    /// fetch model of §2.5.1).
    issued_even_odd: [u64; 2],
}

impl MicroEngine {
    /// Load a program (at most [`STORE_SIZE`] instructions).
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the microstore.
    pub fn new(program: Vec<MicroInstr>) -> Self {
        assert!(
            program.len() <= STORE_SIZE,
            "program exceeds 1024-instruction microstore"
        );
        MicroEngine {
            store: program,
            threads: Tsrf::new(),
            executed: 0,
            issued_even_odd: [0; 2],
        }
    }

    /// Start a new transaction thread for `line` at `entry`, with
    /// `vars[0] = v0` (conventionally the requester/destination node).
    /// Runs until the thread suspends or terminates.
    ///
    /// # Errors
    ///
    /// Returns [`TsrfFull`] if the TSRF is full or the line already has
    /// a thread.
    pub fn start(
        &mut self,
        line: LineAddr,
        entry: u16,
        v0: u16,
    ) -> Result<Vec<MicroEffect>, TsrfFull> {
        let mut vars = [0u16; NUM_VARS];
        vars[0] = v0;
        self.threads
            .alloc(
                line,
                Thread {
                    pc: entry,
                    vars,
                    waiting_local: None,
                },
            )
            .map_err(|_| TsrfFull)?;
        Ok(self.run(line))
    }

    /// Deliver a message (external if `local` is false) of 4-bit type
    /// `msg_type` to the thread waiting on `line`; resumes it through the
    /// RECEIVE multi-way branch.
    ///
    /// # Panics
    ///
    /// Panics if no thread is waiting on `line` in the matching receive
    /// state — the protocol guarantees responses only arrive for waiting
    /// transactions.
    pub fn deliver(&mut self, line: LineAddr, msg_type: u8, local: bool) -> Vec<MicroEffect> {
        let t = self
            .threads
            .get_mut(line)
            .expect("no TSRF thread waiting on this line");
        let Some(wait_local) = t.waiting_local else {
            panic!("thread for {line} is not waiting");
        };
        assert_eq!(wait_local, local, "receive kind mismatch for {line}");
        // The RECEIVE instruction ORs the condition code into the
        // next-address field.
        let recv = self.store[t.pc as usize];
        t.pc = recv.next | (msg_type as u16 & 0xf);
        t.waiting_local = None;
        self.run(line)
    }

    /// Run the thread for `line` until it suspends or terminates.
    fn run(&mut self, line: LineAddr) -> Vec<MicroEffect> {
        let mut effects = Vec::new();
        loop {
            let slot_parity = (line.0 & 1) as usize;
            let t = self.threads.get_mut(line).expect("thread exists");
            let pc = t.pc;
            let instr = self.store[pc as usize];
            self.executed += 1;
            self.issued_even_odd[slot_parity] += 1;
            let mut next = instr.next;
            match instr.op {
                MicroOp::Send => {
                    effects.push(MicroEffect::Send {
                        msg_type: instr.a,
                        dest: t.vars[instr.b as usize],
                    });
                }
                MicroOp::LSend => {
                    effects.push(MicroEffect::LocalSend { msg_type: instr.a });
                }
                MicroOp::Receive | MicroOp::LReceive => {
                    t.waiting_local = Some(instr.op == MicroOp::LReceive);
                    // pc stays at the receive; deliver() applies the
                    // branch.
                    return effects;
                }
                MicroOp::Test => {
                    next |= t.vars[instr.a as usize] & 0xf;
                }
                MicroOp::Set => {
                    t.vars[instr.a as usize] = instr.b as u16;
                }
                MicroOp::Move => {
                    t.vars[instr.a as usize] = t.vars[instr.b as usize];
                }
            }
            if next == pc {
                self.threads.free(line);
                effects.push(MicroEffect::Done);
                return effects;
            }
            self.threads.get_mut(line).expect("thread exists").pc = next;
        }
    }

    /// Total microinstructions executed (the engine-occupancy metric).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Instructions issued from even-/odd-parity thread slots.
    pub fn issued_even_odd(&self) -> [u64; 2] {
        self.issued_even_odd
    }

    /// The thread table (for tests).
    pub fn occupancy(&self) -> usize {
        self.threads.occupied()
    }
}

/// A tiny microassembler: resolves labels, aligns 16-way dispatch tables.
#[derive(Debug, Default)]
pub struct MicroAsm {
    instrs: Vec<Option<MicroInstr>>,
    labels: std::collections::HashMap<String, u16>,
    fixups: Vec<(usize, String)>,
}

impl MicroAsm {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    fn here(&self) -> u16 {
        self.instrs.len() as u16
    }

    fn push(&mut self, i: MicroInstr) -> &mut Self {
        self.instrs.push(Some(i));
        self
    }

    /// Define `name` at the current address.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let here = self.here();
        assert!(
            self.labels.insert(name.to_string(), here).is_none(),
            "duplicate label {name}"
        );
        self
    }

    /// Align the current address to a 16-instruction boundary (for
    /// dispatch tables), padding with terminating no-ops.
    pub fn align16(&mut self) -> &mut Self {
        while !self.here().is_multiple_of(16) {
            let here = self.here();
            // A SET that loops to itself: unreachable padding.
            self.push(MicroInstr {
                op: MicroOp::Set,
                a: 0,
                b: 0,
                next: here,
            });
        }
        self
    }

    /// Emit SEND of `msg_type` to the node in `dest_var`, falling through.
    pub fn send(&mut self, msg_type: u8, dest_var: u8) -> &mut Self {
        let next = self.here() + 1;
        self.push(MicroInstr {
            op: MicroOp::Send,
            a: msg_type,
            b: dest_var,
            next,
        })
    }

    /// Emit LSEND of `msg_type`, falling through.
    pub fn lsend(&mut self, msg_type: u8) -> &mut Self {
        let next = self.here() + 1;
        self.push(MicroInstr {
            op: MicroOp::LSend,
            a: msg_type,
            b: 0,
            next,
        })
    }

    /// Emit a terminating LSEND (its `next` points at itself).
    pub fn lsend_end(&mut self, msg_type: u8) -> &mut Self {
        let here = self.here();
        self.push(MicroInstr {
            op: MicroOp::LSend,
            a: msg_type,
            b: 0,
            next: here,
        })
    }

    /// Emit a terminating SEND.
    pub fn send_end(&mut self, msg_type: u8, dest_var: u8) -> &mut Self {
        let here = self.here();
        self.push(MicroInstr {
            op: MicroOp::Send,
            a: msg_type,
            b: dest_var,
            next: here,
        })
    }

    /// Emit RECEIVE dispatching through the 16-aligned table at `table`.
    pub fn receive(&mut self, table: &str) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, table.to_string()));
        self.push(MicroInstr {
            op: MicroOp::Receive,
            a: 0,
            b: 0,
            next: 0,
        })
    }

    /// Emit LRECEIVE dispatching through the table at `table`.
    pub fn lreceive(&mut self, table: &str) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, table.to_string()));
        self.push(MicroInstr {
            op: MicroOp::LReceive,
            a: 0,
            b: 0,
            next: 0,
        })
    }

    /// Emit TEST on `var` dispatching through the table at `table`.
    pub fn test(&mut self, var: u8, table: &str) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, table.to_string()));
        self.push(MicroInstr {
            op: MicroOp::Test,
            a: var,
            b: 0,
            next: 0,
        })
    }

    /// Emit SET `var = imm`, falling through.
    pub fn set(&mut self, var: u8, imm: u8) -> &mut Self {
        let next = self.here() + 1;
        self.push(MicroInstr {
            op: MicroOp::Set,
            a: var,
            b: imm,
            next,
        })
    }

    /// Emit MOVE `dst = src`, falling through.
    pub fn mov(&mut self, dst: u8, src: u8) -> &mut Self {
        let next = self.here() + 1;
        self.push(MicroInstr {
            op: MicroOp::Move,
            a: dst,
            b: src,
            next,
        })
    }

    /// Emit an unconditional jump (encoded as a MOVE r0←r0 with an
    /// explicit next address).
    pub fn jump(&mut self, target: &str) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, target.to_string()));
        self.push(MicroInstr {
            op: MicroOp::Move,
            a: 0,
            b: 0,
            next: 0,
        })
    }

    /// Resolve labels and produce the program.
    ///
    /// # Panics
    ///
    /// Panics on undefined labels or misaligned dispatch tables.
    pub fn assemble(mut self) -> Vec<MicroInstr> {
        for (at, name) in std::mem::take(&mut self.fixups) {
            let &target = self
                .labels
                .get(&name)
                .unwrap_or_else(|| panic!("undefined microcode label {name:?}"));
            let instr = self.instrs[at].as_mut().unwrap();
            if matches!(
                instr.op,
                MicroOp::Receive | MicroOp::LReceive | MicroOp::Test
            ) {
                assert_eq!(target % 16, 0, "dispatch table {name:?} must be 16-aligned");
            }
            instr.next = target;
        }
        self.instrs.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for op in [
            MicroOp::Send,
            MicroOp::Receive,
            MicroOp::LSend,
            MicroOp::LReceive,
            MicroOp::Test,
            MicroOp::Set,
            MicroOp::Move,
        ] {
            let i = MicroInstr {
                op,
                a: 0xa,
                b: 0x5,
                next: 0x3ff,
            };
            assert_eq!(MicroInstr::decode(i.encode()), i);
            assert!(i.encode() < 1 << 21, "fits in 21 bits");
        }
    }

    /// The paper's example: "a typical read transaction to a remote home
    /// involves a total of four instructions at the remote engine of the
    /// requesting node: a SEND of the request to the home, a RECEIVE of
    /// the reply, a TEST of a state variable, and an LSEND that replies
    /// to the waiting processor at that node."
    #[test]
    fn remote_read_takes_four_instructions() {
        const MSG_READ: u8 = 1;
        const MSG_DATA: u8 = 2;
        const MSG_FILL: u8 = 3;

        let mut asm = MicroAsm::new();
        // Entry: var0 holds the home node id; var1 a state variable.
        asm.label("read");
        asm.send(MSG_READ, 0); // SEND read -> home
        asm.receive("reply_table"); // RECEIVE reply
        asm.align16();
        asm.label("reply_table");
        // Table slot for MSG_DATA (= index 2).
        for i in 0..16u8 {
            if i == MSG_DATA {
                asm.test(1, "state_table");
            } else {
                let here = asm.here();
                asm.push(MicroInstr {
                    op: MicroOp::Set,
                    a: 0,
                    b: 0,
                    next: here,
                });
            }
        }
        asm.align16();
        asm.label("state_table");
        // var1 == 0: plain fill.
        asm.lsend_end(MSG_FILL);
        for _ in 1..16 {
            let here = asm.here();
            asm.push(MicroInstr {
                op: MicroOp::Set,
                a: 0,
                b: 0,
                next: here,
            });
        }
        let engine_prog = asm.assemble();
        let mut eng = MicroEngine::new(engine_prog);

        let line = LineAddr(42);
        let fx = eng.start(line, 0, /* home = */ 7).unwrap();
        assert_eq!(
            fx,
            vec![MicroEffect::Send {
                msg_type: MSG_READ,
                dest: 7
            }]
        );
        assert_eq!(eng.occupancy(), 1, "thread parked in TSRF awaiting reply");

        let fx = eng.deliver(line, MSG_DATA, false);
        assert_eq!(
            fx,
            vec![
                MicroEffect::LocalSend { msg_type: MSG_FILL },
                MicroEffect::Done
            ]
        );
        assert_eq!(eng.occupancy(), 0, "TSRF entry freed");
        assert_eq!(eng.executed(), 4, "SEND + RECEIVE + TEST + LSEND");
    }

    #[test]
    fn test_branches_on_state_variable() {
        let mut asm = MicroAsm::new();
        asm.label("entry");
        asm.set(2, 3); // var2 = 3
        asm.test(2, "table");
        asm.align16();
        asm.label("table");
        for i in 0..16u8 {
            if i == 3 {
                asm.lsend_end(9);
            } else {
                asm.lsend_end(0);
            }
        }
        let mut eng = MicroEngine::new(asm.assemble());
        let fx = eng.start(LineAddr(0), 0, 0).unwrap();
        assert_eq!(
            fx,
            vec![MicroEffect::LocalSend { msg_type: 9 }, MicroEffect::Done]
        );
    }

    #[test]
    fn move_and_set_update_vars() {
        let mut asm = MicroAsm::new();
        asm.set(1, 5);
        asm.mov(2, 1);
        asm.send_end(1, 2); // send to node in var2 (=5)
        let mut eng = MicroEngine::new(asm.assemble());
        let fx = eng.start(LineAddr(0), 0, 0).unwrap();
        assert_eq!(
            fx,
            vec![
                MicroEffect::Send {
                    msg_type: 1,
                    dest: 5
                },
                MicroEffect::Done
            ]
        );
    }

    #[test]
    fn tsrf_full_rejects_new_transactions() {
        let mut asm = MicroAsm::new();
        asm.receive("t");
        asm.align16();
        asm.label("t");
        for _ in 0..16 {
            asm.lsend_end(0);
        }
        let mut eng = MicroEngine::new(asm.assemble());
        for i in 0..16 {
            eng.start(LineAddr(i), 0, 0).unwrap();
        }
        assert!(eng.start(LineAddr(99), 0, 0).is_err());
    }

    #[test]
    fn interleaved_issue_counters_track_parity() {
        let mut asm = MicroAsm::new();
        asm.set(0, 0);
        asm.lsend_end(1);
        let prog = asm.assemble();
        let mut eng = MicroEngine::new(prog);
        eng.start(LineAddr(2), 0, 0).unwrap(); // even
        eng.start(LineAddr(3), 0, 0).unwrap(); // odd
        let [e, o] = eng.issued_even_odd();
        assert_eq!(e, 2);
        assert_eq!(o, 2);
    }

    #[test]
    #[should_panic(expected = "16-aligned")]
    fn misaligned_dispatch_table_rejected() {
        let mut asm = MicroAsm::new();
        asm.set(0, 0); // address 0 occupied; label lands at 1
        asm.label("t");
        asm.lsend_end(0);
        asm.receive("t");
        asm.assemble();
    }
}
