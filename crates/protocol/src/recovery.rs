//! Protocol-engine transaction recovery: TSRF watchdog timeout + replay.
//!
//! The paper's protocol engines keep all per-transaction state in the
//! TSRF (§2.5.1), which is exactly what makes recovery cheap: a
//! transient engine hiccup (a microsequencer glitch, a dropped
//! condition code) is caught by a watchdog on the occupied TSRF entry,
//! and the handler is simply re-dispatched from the entry's recorded
//! inputs — coherence *state* was only committed at handler completion,
//! so the replay is idempotent. This module models the timing and the
//! accounting of that path; the state machines in [`crate::coherence`]
//! are untouched because a replayed handler is, by construction, the
//! same handler.

use crate::coherence::occupancy_cycles;
use piranha_kernel::Counter;

/// The watchdog/replay model shared by both engines of a node.
#[derive(Debug)]
pub struct EngineRecovery {
    /// Watchdog timeout, in protocol-engine cycles, before a stuck
    /// handler is declared hiccuped and replayed.
    timeout_cycles: u64,
    replays: Counter,
    replay_cycles: Counter,
}

impl EngineRecovery {
    /// A recovery unit with the given watchdog timeout.
    pub fn new(timeout_cycles: u64) -> Self {
        EngineRecovery {
            timeout_cycles,
            replays: Counter::new(),
            replay_cycles: Counter::new(),
        }
    }

    /// Charge one hiccup on a handler of the given input kind (the
    /// `occupancy_cycles` vocabulary: `"req"`, `"reply"`, `"fwd"`,
    /// `"inval"`, `"ack"`, `"wb"`, `"export"`). Returns the extra
    /// engine-cycles the transaction loses: the full watchdog timeout
    /// plus re-executing the handler from its TSRF inputs.
    pub fn replay(&mut self, input_kind: &str) -> u64 {
        let cost = self.timeout_cycles + occupancy_cycles(input_kind);
        self.replays.inc();
        self.replay_cycles.add(cost);
        cost
    }

    /// Replays performed so far.
    pub fn replays(&self) -> u64 {
        self.replays.get()
    }

    /// Total engine-cycles lost to watchdog timeouts and re-execution.
    pub fn replay_cycles(&self) -> u64 {
        self.replay_cycles.get()
    }

    /// The configured watchdog timeout.
    pub fn timeout_cycles(&self) -> u64 {
        self.timeout_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_charges_timeout_plus_handler() {
        let mut r = EngineRecovery::new(50);
        assert_eq!(r.replay("req"), 50 + occupancy_cycles("req"));
        assert_eq!(r.replay("ack"), 50 + occupancy_cycles("ack"));
        assert_eq!(r.replays(), 2);
        assert_eq!(
            r.replay_cycles(),
            100 + occupancy_cycles("req") + occupancy_cycles("ack")
        );
        assert_eq!(r.timeout_cycles(), 50);
    }

    #[test]
    fn heavier_handlers_cost_more_to_replay() {
        let mut r = EngineRecovery::new(10);
        assert!(r.replay("req") > r.replay("ack"), "req handler is longer");
    }
}
