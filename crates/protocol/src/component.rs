//! The protocol-engine component adapter.
//!
//! One node's pair of microcoded protocol engines — home and remote
//! (paper §2.6) — plus their occupancy servers and the shared replay
//! recovery unit, behind the kernel's [`Component`] interface. The
//! directory the home engine consults lives in memory, so it is
//! threaded in per event as the [`DirStore`] context rather than owned
//! here; the remote engine needs no directory.

use piranha_kernel::{Component, Port, Server};
use piranha_types::{Duration, NodeId, SimTime};

use crate::{
    coherence::DirStore, EngineAction, EngineRecovery, HomeEngine, HomeIn, RemoteEngine, RemoteIn,
};

/// An input for one of the node's two engines.
#[derive(Debug, Clone)]
pub enum EngineEvent {
    /// Run the home (directory-side) engine.
    Home(HomeIn),
    /// Run the remote (requester-side) engine.
    Remote(RemoteIn),
}

/// One node's protocol-engine complex: home engine, remote engine,
/// their occupancy servers, and the TSRF replay recovery unit.
#[derive(Debug)]
pub struct EngineComplex {
    home: HomeEngine,
    remote: RemoteEngine,
    home_srv: Server,
    remote_srv: Server,
    recovery: EngineRecovery,
}

impl EngineComplex {
    /// Engines for `node` of a `total_nodes` system, with `cmi_routes`
    /// coherent-memory-interleave routes and the replay watchdog set to
    /// `replay_timeout_cycles`.
    pub fn new(
        node: NodeId,
        total_nodes: usize,
        cmi_routes: usize,
        replay_timeout_cycles: u64,
    ) -> Self {
        let mut home = HomeEngine::new(node, total_nodes);
        home.set_cmi_routes(cmi_routes);
        EngineComplex {
            home,
            remote: RemoteEngine::new(node),
            home_srv: Server::new(),
            remote_srv: Server::new(),
            recovery: EngineRecovery::new(replay_timeout_cycles),
        }
    }

    /// The home engine (statistics).
    pub fn home(&self) -> &HomeEngine {
        &self.home
    }

    /// The remote engine (statistics).
    pub fn remote(&self) -> &RemoteEngine {
        &self.remote
    }

    /// Acquire the home or remote occupancy server for `occ` starting
    /// no earlier than `at`; returns the service start time.
    pub fn acquire(&mut self, is_home: bool, at: SimTime, occ: Duration) -> SimTime {
        if is_home {
            self.home_srv.acquire(at, occ)
        } else {
            self.remote_srv.acquire(at, occ)
        }
    }

    /// Replay a handler whose watchdog expired; returns the extra
    /// occupancy cycles charged.
    pub fn replay(&mut self, input_kind: &str) -> u64 {
        self.recovery.replay(input_kind)
    }

    /// Total handler replays.
    pub fn replays(&self) -> u64 {
        self.recovery.replays()
    }
}

impl Component for EngineComplex {
    type Event = EngineEvent;
    type Action = EngineAction;
    type Ctx<'a> = &'a mut dyn DirStore;

    fn handle(
        &mut self,
        now: SimTime,
        event: EngineEvent,
        dirs: &mut dyn DirStore,
        out: &mut Port<EngineAction>,
    ) {
        let acts = match event {
            EngineEvent::Home(input) => self.home.handle(input, dirs),
            EngineEvent::Remote(input) => self.remote.handle(input),
        };
        for act in acts {
            out.emit(now, act);
        }
    }
}
