//! The Transaction State Register File (paper §2.5.1).
//!
//! "On a new transaction, the protocol engine allocates an entry from the
//! transaction state register file (TSRF) that represents the state of
//! this thread (e.g., addresses, program counter, timer, state
//! variables...). A thread that is waiting for a response ... has its
//! TSRF entry set to a waiting state, and the incoming response is later
//! matched with this entry based on the transaction address. Our design
//! supports a total of 16 TSRF entries per protocol engine."

use piranha_types::LineAddr;

/// Number of TSRF entries per engine.
pub const TSRF_ENTRIES: usize = 16;

/// One transaction's register state, generic over the engine-specific
/// state variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsrfEntry<S> {
    /// The transaction's line address (the match key for responses).
    pub line: LineAddr,
    /// Engine-specific state variables.
    pub state: S,
}

/// A fixed-capacity transaction state register file with address
/// matching.
///
/// # Examples
///
/// ```
/// use piranha_protocol::Tsrf;
/// use piranha_types::LineAddr;
///
/// let mut t: Tsrf<&str> = Tsrf::new();
/// t.alloc(LineAddr(7), "waiting").unwrap();
/// assert_eq!(t.get(LineAddr(7)), Some(&"waiting"));
/// assert_eq!(t.free(LineAddr(7)), Some("waiting"));
/// ```
#[derive(Debug)]
pub struct Tsrf<S> {
    entries: Vec<Option<TsrfEntry<S>>>,
    high_water: usize,
}

impl<S> Tsrf<S> {
    /// An empty register file with [`TSRF_ENTRIES`] slots.
    pub fn new() -> Self {
        Tsrf {
            entries: (0..TSRF_ENTRIES).map(|_| None).collect(),
            high_water: 0,
        }
    }

    /// Allocate an entry for `line`.
    ///
    /// # Errors
    ///
    /// Returns `Err(state)` if the file is full (the engine must then
    /// defer the transaction) or if `line` already has an entry (protocol
    /// transactions are serialized per line).
    pub fn alloc(&mut self, line: LineAddr, state: S) -> Result<(), S> {
        if self.get(line).is_some() {
            return Err(state);
        }
        match self.entries.iter_mut().find(|e| e.is_none()) {
            Some(slot) => {
                *slot = Some(TsrfEntry { line, state });
                self.high_water = self.high_water.max(self.occupied());
                Ok(())
            }
            None => Err(state),
        }
    }

    /// Match an incoming response to its transaction.
    pub fn get(&self, line: LineAddr) -> Option<&S> {
        self.entries
            .iter()
            .flatten()
            .find(|e| e.line == line)
            .map(|e| &e.state)
    }

    /// Mutable match.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut S> {
        self.entries
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
            .map(|e| &mut e.state)
    }

    /// Release the entry for `line`, returning its state.
    pub fn free(&mut self, line: LineAddr) -> Option<S> {
        let slot = self
            .entries
            .iter_mut()
            .find(|e| e.as_ref().is_some_and(|x| x.line == line))?;
        slot.take().map(|e| e.state)
    }

    /// Number of live entries.
    pub fn occupied(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Whether all entries are in use.
    pub fn is_full(&self) -> bool {
        self.occupied() == self.entries.len()
    }

    /// Highest simultaneous occupancy observed (for the paper's claim
    /// that a few concurrent transactions suffice).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterate over live entries.
    pub fn iter(&self) -> impl Iterator<Item = &TsrfEntry<S>> {
        self.entries.iter().flatten()
    }
}

impl<S> Default for Tsrf<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_cycle() {
        let mut t: Tsrf<u32> = Tsrf::new();
        t.alloc(LineAddr(1), 10).unwrap();
        t.alloc(LineAddr(2), 20).unwrap();
        assert_eq!(t.get(LineAddr(1)), Some(&10));
        *t.get_mut(LineAddr(2)).unwrap() += 1;
        assert_eq!(t.get(LineAddr(2)), Some(&21));
        assert_eq!(t.occupied(), 2);
        assert_eq!(t.free(LineAddr(1)), Some(10));
        assert_eq!(t.get(LineAddr(1)), None);
        assert_eq!(t.free(LineAddr(1)), None);
    }

    #[test]
    fn capacity_is_sixteen() {
        let mut t: Tsrf<usize> = Tsrf::new();
        for i in 0..TSRF_ENTRIES {
            t.alloc(LineAddr(i as u64), i).unwrap();
        }
        assert!(t.is_full());
        assert_eq!(t.alloc(LineAddr(99), 99), Err(99));
        t.free(LineAddr(0));
        t.alloc(LineAddr(99), 99).unwrap();
        assert_eq!(t.high_water(), TSRF_ENTRIES);
    }

    #[test]
    fn duplicate_line_rejected() {
        let mut t: Tsrf<&str> = Tsrf::new();
        t.alloc(LineAddr(5), "a").unwrap();
        assert_eq!(t.alloc(LineAddr(5), "b"), Err("b"));
    }

    #[test]
    fn iteration_sees_live_entries() {
        let mut t: Tsrf<u8> = Tsrf::new();
        t.alloc(LineAddr(1), 1).unwrap();
        t.alloc(LineAddr(2), 2).unwrap();
        t.free(LineAddr(1));
        let lines: Vec<LineAddr> = t.iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![LineAddr(2)]);
    }
}
