//! The component/port abstraction of the simulation kernel.
//!
//! Piranha scales by replicating simple modules behind narrow
//! interfaces — CPU cores, L1s, L2 banks, protocol engines — instead of
//! growing one complex core (§2 of the paper). The simulator mirrors
//! that: each subsystem implements [`Component`], owning its state and
//! handling its own typed events, and emits timed actions through a
//! [`Port`]. The wiring layer (in `piranha-system`) drains ports,
//! converts actions into follow-on events, and applies cross-cutting
//! concerns — fault injection, probe spans — uniformly at the port
//! boundary rather than inside any component.

use piranha_types::SimTime;

/// A buffered, typed output endpoint.
///
/// Components never schedule events or touch other components directly;
/// they [`emit`](Port::emit) `(deliver-at, action)` pairs into their
/// port, and the wiring that owns both sides drains the port and routes
/// each action. Emission order is preserved by [`drain`](Port::drain),
/// which is what keeps a component refactor event-order-identical to
/// inlined dispatch code: the actions come back out in exactly the
/// order the old code would have handled them.
///
/// An action meant for immediate processing is emitted at `now`; one
/// that models latency is emitted at a future instant and the wiring
/// schedules it.
#[derive(Debug)]
pub struct Port<A> {
    out: Vec<(SimTime, A)>,
}

impl<A> Port<A> {
    /// An empty port.
    pub fn new() -> Self {
        Port { out: Vec::new() }
    }

    /// Queue `action` for delivery at `at`. `at` is interpreted by the
    /// wiring (schedule time for events, processing time for immediate
    /// actions); the port itself only preserves order.
    pub fn emit(&mut self, at: SimTime, action: A) {
        self.out.push((at, action));
    }

    /// Drain every buffered action, in emission order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (SimTime, A)> {
        self.out.drain(..)
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

impl<A> Default for Port<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// A simulation component: a stateful module that consumes typed events
/// and emits typed actions through a [`Port`].
///
/// The contract mirrors a Piranha hardware module: all externally
/// visible behavior flows through the event input and the action output,
/// so components compose without knowing about each other — only the
/// wiring knows the topology. Shared state a component must borrow per
/// event (for example, the CPU cluster advancing against the cache
/// complex's L1s) is threaded in as [`Ctx`](Component::Ctx), keeping
/// ownership with exactly one component while allowing the disjoint
/// borrows real subsystems need.
///
/// # Examples
///
/// A minimal two-component ping/pong simulation: each player returns
/// the ball 10 ps after receiving it, and the wiring (the loop at the
/// bottom) connects each player's output port to the other player via a
/// per-node [`Scheduler`](crate::Scheduler).
///
/// ```
/// use piranha_kernel::{Component, Port, Scheduler};
/// use piranha_types::SimTime;
///
/// struct Ball;
/// struct Player {
///     hits: u32,
/// }
///
/// impl Component for Player {
///     type Event = Ball;
///     type Action = Ball; // "hit it back"
///     type Ctx<'a> = ();
///
///     fn handle(&mut self, now: SimTime, _ball: Ball, _ctx: (), out: &mut Port<Ball>) {
///         self.hits += 1;
///         out.emit(SimTime(now.0 + 10), Ball);
///     }
/// }
///
/// let mut players = [Player { hits: 0 }, Player { hits: 0 }];
/// let mut sched: Scheduler<Ball> = Scheduler::new(players.len());
/// let mut port = Port::new();
/// sched.schedule(0, SimTime::ZERO, Ball); // serve to player 0
/// while sched.now() < SimTime(100) {
///     let Some((now, node, ball)) = sched.pop() else { break };
///     players[node].handle(now, ball, (), &mut port);
///     for (at, ball) in port.drain() {
///         sched.schedule(1 - node, at, ball); // wire each port to the peer
///     }
/// }
/// assert_eq!(players[0].hits + players[1].hits, 11);
/// assert_eq!(sched.scheduled(), sched.popped() + sched.len() as u64);
/// ```
pub trait Component {
    /// The event type delivered to this component.
    type Event;

    /// The action type it emits through its output [`Port`].
    type Action;

    /// Per-event borrowed context: state the component reads or writes
    /// but does not own (another component's caches, a directory view).
    /// Use `()` when the component is self-contained.
    type Ctx<'a>;

    /// Consume one event at simulation time `now`, mutating internal
    /// state and emitting any follow-on actions into `out`.
    ///
    /// Implementations must be deterministic: identical state, event,
    /// and context must produce identical emissions in identical order.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        ctx: Self::Ctx<'_>,
        out: &mut Port<Self::Action>,
    );
}
