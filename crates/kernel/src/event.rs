//! The future event list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use piranha_types::SimTime;

/// A deterministic future event list.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO tie-breaking via a monotone sequence number), which
/// is what makes whole-system simulations reproducible.
///
/// # Examples
///
/// ```
/// use piranha_kernel::EventQueue;
/// use piranha_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(100), 1u32);
/// q.schedule(SimTime(100), 2u32);
/// q.schedule(SimTime(50), 3u32);
/// let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, [3, 1, 2]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the time of the last event popped —
    /// the simulation may never schedule into the past.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at {time} is in the past (now = {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Remove and return the earliest event, advancing the queue's notion
    /// of "now" to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 'c');
        q.schedule(SimTime(10), 'a');
        q.schedule(SimTime(20), 'b');
        assert_eq!(q.pop(), Some((SimTime(10), 'a')));
        assert_eq!(q.pop(), Some((SimTime(20), 'b')));
        assert_eq!(q.pop(), Some((SimTime(30), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime(5), ());
        q.pop();
        assert_eq!(q.now(), SimTime(5));
        // Scheduling at exactly `now` is allowed.
        q.schedule(SimTime(5), ());
        assert_eq!(q.peek_time(), Some(SimTime(5)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(9), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(SimTime(1), 0);
        q.schedule(SimTime(2), 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
