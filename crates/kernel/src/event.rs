//! The future event list.
//!
//! Implemented as a bucketed two-level (calendar-style) queue: a timing
//! wheel of `NBUCKETS` buckets, each `1 << BUCKET_BITS` picoseconds
//! wide, plus an overflow heap for events beyond the wheel's horizon.
//! Dense simulations (the common case: every CPU, bank, and protocol
//! engine keeps scheduling a few tens of nanoseconds ahead) insert and
//! pop in amortized O(1) instead of the O(log n) of the former
//! `BinaryHeap`, while the drain order — strictly `(time, seq)` — is
//! bit-identical to the heap's.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use piranha_types::SimTime;

/// log2 of the bucket width in picoseconds (65.536 ns per bucket).
const BUCKET_BITS: u32 = 16;
/// Number of wheel buckets (must be a power of two). The horizon is
/// `NBUCKETS << BUCKET_BITS` ≈ 67 µs, far beyond any single component
/// latency, so the overflow heap is essentially never touched in
/// steady state.
const NBUCKETS: usize = 1024;

/// A deterministic future event list.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO tie-breaking via a monotone sequence number), which
/// is what makes whole-system simulations reproducible.
///
/// # Examples
///
/// ```
/// use piranha_kernel::EventQueue;
/// use piranha_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(100), 1u32);
/// q.schedule(SimTime(100), 2u32);
/// q.schedule(SimTime(50), 3u32);
/// let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, [3, 1, 2]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The wheel. Invariant: every entry's day (`time >> BUCKET_BITS`)
    /// lies in `[day(now), day(now) + NBUCKETS)`, and because two days
    /// in that window never share a slot, each bucket holds entries of
    /// exactly one day, sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Entries in the wheel (the rest are in `overflow`).
    wheel_len: usize,
    /// Events at or past the horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    scheduled: u64,
    popped: u64,
    migrated: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The wheel day (bucket-granularity timestamp) of an instant.
fn day(t: SimTime) -> u64 {
    t.0 >> BUCKET_BITS
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NBUCKETS).map(|_| VecDeque::new()).collect(),
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
            popped: 0,
            migrated: 0,
        }
    }

    /// The day one past the last the wheel can currently hold.
    fn horizon(&self) -> u64 {
        day(self.now) + NBUCKETS as u64
    }

    /// Insert into the wheel bucket for `entry.time`, keeping the bucket
    /// sorted by `(time, seq)`.
    fn wheel_insert(&mut self, entry: Entry<E>) {
        debug_assert!(day(entry.time) >= day(self.now) && day(entry.time) < self.horizon());
        let bucket = &mut self.buckets[(day(entry.time) as usize) & (NBUCKETS - 1)];
        let key = (entry.time, entry.seq);
        let at = bucket.partition_point(|e| (e.time, e.seq) <= key);
        bucket.insert(at, entry);
        self.wheel_len += 1;
    }

    /// Move every overflow event that now fits the wheel into it.
    /// Each event migrates at most once over its lifetime.
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while self
            .overflow
            .peek()
            .is_some_and(|Reverse(e)| day(e.time) < horizon)
        {
            let Reverse(e) = self.overflow.pop().expect("peeked entry present");
            self.wheel_insert(e);
            self.migrated += 1;
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the time of the last event popped —
    /// the simulation may never schedule into the past.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.schedule_seq(time, seq, event);
    }

    /// Schedule `event` at `time` with an externally allocated sequence
    /// number. This is the [`Scheduler`](crate::Scheduler) entry point:
    /// sub-queues of a per-node scheduler share one global seq counter
    /// so the merged drain order is identical to a single queue's.
    ///
    /// # Panics
    ///
    /// Panics like [`EventQueue::schedule`] on a past `time`. Callers
    /// must keep `seq` unique; equal-time entries drain in `seq` order.
    pub(crate) fn schedule_seq(&mut self, time: SimTime, seq: u64, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at {time} is in the past (now = {})",
            self.now
        );
        self.scheduled += 1;
        let entry = Entry { time, seq, event };
        if day(time) >= self.horizon() {
            self.overflow.push(Reverse(entry));
        } else {
            self.wheel_insert(entry);
        }
    }

    /// Remove and return the earliest event, advancing the queue's notion
    /// of "now" to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.wheel_len == 0 {
            // The overflow min is the global min when the wheel is empty.
            let Reverse(e) = self.overflow.pop()?;
            self.now = e.time;
            self.popped += 1;
            self.migrate_overflow();
            return Some((e.time, e.event));
        }
        // Events the horizon slid over since the last pop come first.
        self.migrate_overflow();
        // Every remaining event is ≥ now, so the scan starts at now's
        // day; walking d forward never revisits a day (now is monotone),
        // making the total scan cost over a run linear in elapsed days.
        let mut d = day(self.now);
        loop {
            let bucket = &mut self.buckets[(d as usize) & (NBUCKETS - 1)];
            if let Some(front) = bucket.front() {
                debug_assert_eq!(day(front.time), d, "one bucket holds one day");
                let e = bucket.pop_front().expect("front exists");
                self.wheel_len -= 1;
                self.now = e.time;
                self.popped += 1;
                return Some((e.time, e.event));
            }
            d += 1;
            debug_assert!(
                d < day(self.now) + NBUCKETS as u64 + 1,
                "non-empty wheel must yield within the horizon"
            );
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The `(time, seq)` key of the earliest pending event, if any —
    /// the key [`pop`](EventQueue::pop) would deliver next. The merge
    /// loop of [`Scheduler`](crate::Scheduler) compares these keys
    /// across sub-queues.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        // Migration is lazy, so the overflow min can precede the wheel
        // min; take the smaller of the two keys.
        let over = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));
        if self.wheel_len == 0 {
            return over;
        }
        let mut d = day(self.now);
        let wheel = loop {
            if let Some(front) = self.buckets[(d as usize) & (NBUCKETS - 1)].front() {
                break (front.time, front.seq);
            }
            d += 1;
        };
        Some(match over {
            Some(o) if o < wheel => o,
            _ => wheel,
        })
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime. At quiescence
    /// `scheduled() == popped() + len() as u64` — the accounting
    /// invariant the kernel tests assert, for standalone queues and for
    /// every sub-queue of a [`Scheduler`](crate::Scheduler) alike.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Events that migrated from the overflow heap into the wheel (a
    /// health signal: near zero in steady state).
    pub fn migrated(&self) -> u64 {
        self.migrated
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 'c');
        q.schedule(SimTime(10), 'a');
        q.schedule(SimTime(20), 'b');
        assert_eq!(q.pop(), Some((SimTime(10), 'a')));
        assert_eq!(q.pop(), Some((SimTime(20), 'b')));
        assert_eq!(q.pop(), Some((SimTime(30), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn ties_break_fifo_across_the_horizon() {
        // Same instant, scheduled both before and after the time lands
        // inside the wheel: seq order must still win.
        let far = (NBUCKETS as u64 + 5) << BUCKET_BITS;
        let mut q = EventQueue::new();
        q.schedule(SimTime(far), 0); // goes to overflow
        q.schedule(SimTime(1), 100);
        assert_eq!(q.pop(), Some((SimTime(1), 100)));
        // `far` is now within the horizon of `now`; this insert goes to
        // the wheel while event 0 migrates from overflow.
        q.schedule(SimTime(far), 1);
        assert_eq!(
            q.pop(),
            Some((SimTime(far), 0)),
            "overflow entry keeps FIFO priority"
        );
        assert_eq!(q.pop(), Some((SimTime(far), 1)));
    }

    #[test]
    fn overflow_entries_interleave_correctly_with_wheel() {
        // An event far beyond the horizon must not be overtaken by a
        // later-time wheel event once the horizon slides past it.
        let mut q = EventQueue::new();
        let far = (NBUCKETS as u64 + 100) << BUCKET_BITS; // beyond horizon
        q.schedule(SimTime(far), "far");
        // A dense stream of near events dragging `now` forward so `far`
        // enters the horizon while the wheel is still busy.
        let step = 1u64 << BUCKET_BITS;
        for i in 1..=(NBUCKETS as u64 + 150) {
            q.schedule(SimTime(i * step), "near");
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            popped.push((t.0, e));
        }
        let all_sorted = popped.windows(2).all(|w| w[0].0 <= w[1].0);
        assert!(all_sorted, "drain order must be globally time-sorted");
        let far_pos = popped.iter().position(|&(t, _)| t == far).unwrap();
        assert_eq!(popped[far_pos].1, "far");
        assert!(popped[..far_pos].iter().all(|&(t, _)| t < far));
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime(5), ());
        q.pop();
        assert_eq!(q.now(), SimTime(5));
        // Scheduling at exactly `now` is allowed.
        q.schedule(SimTime(5), ());
        assert_eq!(q.peek_time(), Some(SimTime(5)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(9), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(SimTime(1), 0);
        q.schedule(SimTime(2), 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn lifetime_counters_track_traffic() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let far = (NBUCKETS as u64 + 5) << BUCKET_BITS;
        q.schedule(SimTime(far), 0); // lands in overflow
        q.schedule(SimTime(1), 1);
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.popped(), 0);
        q.pop(); // t = 1
                 // Drag `now` forward until `far` fits the horizon, with the
                 // wheel kept non-empty so the pop path performs the migration.
        q.schedule(SimTime(6 << BUCKET_BITS), 2);
        q.pop();
        q.schedule(SimTime(7 << BUCKET_BITS), 3);
        q.pop();
        assert_eq!(q.migrated(), 1, "overflow entry migrated into the wheel");
        assert_eq!(q.pop(), Some((SimTime(far), 0)));
        assert_eq!(q.popped(), 4);
        assert_eq!(q.scheduled(), 4);
    }

    #[test]
    fn scheduled_equals_popped_plus_pending() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..50 {
            q.schedule(SimTime(i * 7), i as u32);
        }
        for _ in 0..20 {
            q.pop();
        }
        assert_eq!(q.scheduled(), q.popped() + q.len() as u64);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled(), q.popped() + q.len() as u64);
        assert_eq!(q.popped(), 50);
    }

    #[test]
    fn len_counts_overflow() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime(1), 0);
        q.schedule(SimTime(u64::MAX / 2), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    /// The old `BinaryHeap<Reverse<Entry>>` future event list, kept as a
    /// drain-order oracle for the calendar queue.
    struct HeapOracle {
        heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
        seq: u64,
    }

    impl HeapOracle {
        fn new() -> Self {
            HeapOracle {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn schedule(&mut self, t: SimTime, e: u32) {
            self.heap.push(Reverse((t, self.seq, e)));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, u32)> {
            self.heap.pop().map(|Reverse((t, _, e))| (t, e))
        }
    }

    /// A tiny deterministic PRNG (splitmix64) for the randomized oracle
    /// comparison.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn randomized_drain_order_matches_heap_oracle() {
        for seed in 0..8u64 {
            let mut rng = Rng(seed);
            let mut q = EventQueue::new();
            let mut oracle = HeapOracle::new();
            let mut now = 0u64;
            for i in 0..5_000u32 {
                // Mixed workload: mostly near-future schedules with
                // occasional far (past-horizon) ones and interleaved
                // pops, mimicking a real simulation's pattern.
                let roll = rng.next() % 100;
                if roll < 60 || q.is_empty() {
                    let delta = match rng.next() % 10 {
                        0 => (rng.next() % 4) << (BUCKET_BITS + 12), // far
                        1..=3 => 0,                                  // tie
                        _ => rng.next() % (1 << (BUCKET_BITS + 2)),  // near
                    };
                    let t = SimTime(now + delta);
                    q.schedule(t, i);
                    oracle.schedule(t, i);
                } else {
                    let got = q.pop();
                    let want = oracle.pop();
                    assert_eq!(got, want, "divergence from heap oracle (seed {seed})");
                    if let Some((t, _)) = got {
                        now = t.0;
                    }
                }
            }
            loop {
                let got = q.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "tail drain divergence (seed {seed})");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
