//! Statistics primitives feeding the paper's tables and figures.

use piranha_types::Duration;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use piranha_kernel::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A ratio of two counters (e.g. hit rate); avoids division-by-zero
/// footguns at reporting time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ratio {
    /// Numerator events.
    pub hits: Counter,
    /// Total events.
    pub total: Counter,
}

impl Ratio {
    /// A zeroed ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event which either counts toward the numerator or not.
    pub fn record(&mut self, hit: bool) {
        self.total.inc();
        if hit {
            self.hits.inc();
        }
    }

    /// The ratio as a fraction, or 0 if no events were recorded.
    pub fn value(&self) -> f64 {
        if self.total.get() == 0 {
            0.0
        } else {
            self.hits.get() as f64 / self.total.get() as f64
        }
    }
}

/// A power-of-two-bucketed latency histogram.
///
/// Buckets by `log2(ns)`: bucket *i* holds samples in `[2^i, 2^(i+1))` ns,
/// with a dedicated first bucket for sub-nanosecond samples.
///
/// # Examples
///
/// ```
/// use piranha_kernel::Histogram;
/// use piranha_types::Duration;
/// let mut h = Histogram::new();
/// h.record(Duration::from_ns(80));
/// h.record(Duration::from_ns(12));
/// assert_eq!(h.count(), 2);
/// assert!((h.mean_ns() - 46.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 40],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_ns();
        let b = if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros()) as usize
        };
        let b = b.min(self.buckets.len() - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// An approximate percentile (0..=100) in nanoseconds, linearly
    /// interpolated within the containing bucket (samples assumed
    /// uniform across the bucket's range) and clamped to the observed
    /// maximum so a single-bucket histogram never reports a quantile
    /// above its largest sample. Returns 0 for an empty histogram.
    ///
    /// Power-of-two buckets alone resolve a quantile only to a factor
    /// of 2; interpolation recovers most of that resolution — 1000
    /// uniform samples put the median near 500, not at the 1024 bucket
    /// edge — which is what makes latency-vs-load knees visible instead
    /// of stair-stepped.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = (target - seen) as f64 / b as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v as u64).min(self.max_ns);
            }
            seen += b;
        }
        self.max_ns
    }

    /// Dump the non-empty buckets as a JSON object:
    /// `{"count":..,"sum_ns":..,"max_ns":..,"buckets":[{"lo_ns":..,"hi_ns":..,"count":..},..]}`.
    /// Bucket bounds are the nominal power-of-two ranges (half-open).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"buckets\":[",
            self.count, self.sum_ns, self.max_ns
        );
        let mut first = true;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let (lo, hi) = bucket_bounds(i);
            out.push_str(&format!("{{\"lo_ns\":{lo},\"hi_ns\":{hi},\"count\":{b}}}"));
        }
        out.push_str("]}");
        out
    }

    /// Fold another histogram into this one, bucket by bucket, so
    /// per-window histograms combine into a whole-run estimate without
    /// rescanning the samples. The sum saturates like
    /// [`Histogram::record`], and every derived quantity (count, mean,
    /// max, quantiles) afterwards reflects the union of both sample
    /// sets.
    ///
    /// # Examples
    ///
    /// ```
    /// use piranha_kernel::Histogram;
    /// use piranha_types::Duration;
    /// let mut a = Histogram::new();
    /// a.record(Duration::from_ns(10));
    /// let mut b = Histogram::new();
    /// b.record(Duration::from_ns(30));
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert!((a.mean_ns() - 20.0).abs() < 1e-9);
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Median sample (bucket-resolved), nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 95th-percentile sample (bucket-resolved), nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.percentile_ns(95.0)
    }

    /// 99th-percentile sample (bucket-resolved), nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// The raw per-bucket counts (power-of-two bucket `i` covers
    /// `[2^(i-1), 2^i)` ns; bucket 0 is sub-nanosecond). Exposed so a
    /// histogram can be persisted field-for-field and rebuilt with
    /// [`Histogram::from_parts`] — the persistent result store round-trips
    /// latency histograms this way.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuild a histogram from persisted parts (the inverse of reading
    /// [`Histogram::bucket_counts`], [`Histogram::count`],
    /// [`Histogram::sum_ns`], and [`Histogram::max_ns`]). The caller is
    /// responsible for internal consistency (`count == Σ buckets`); a
    /// histogram rebuilt from the parts of another is indistinguishable
    /// from the original, which the store round-trip tests assert.
    pub fn from_parts(mut buckets: Vec<u64>, count: u64, sum_ns: u64, max_ns: u64) -> Self {
        // Normalize to the canonical 40-bucket geometry so `merge`'s
        // equal-length debug assertion holds against live histograms.
        buckets.resize(40, 0);
        Histogram {
            buckets,
            count,
            sum_ns,
            max_ns,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The nominal half-open range `[lo, hi)` of bucket `i`: bucket 0 holds
/// sub-nanosecond samples, bucket `i >= 1` holds `[2^(i-1), 2^i)` ns.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), 1u64 << i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn ratio_handles_empty_and_counts() {
        let mut r = Ratio::new();
        assert_eq!(r.value(), 0.0);
        r.record(true);
        r.record(true);
        r.record(false);
        assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 30] {
            h.record(Duration::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean_ns() - 20.0).abs() < 1e-12);
        assert_eq!(h.max_ns(), 30);
        assert_eq!(h.sum_ns(), 60);
    }

    #[test]
    fn histogram_percentile_is_monotone() {
        let mut h = Histogram::new();
        for ns in 1..=1000u64 {
            h.record(Duration::from_ns(ns));
        }
        let p50 = h.percentile_ns(50.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p99);
        // Interpolation puts the median of 1..=1000 near 500, not at the
        // 1024 bucket edge.
        assert!((450..=550).contains(&p50), "interpolated p50 was {p50}");
        assert!((950..=1000).contains(&p99), "interpolated p99 was {p99}");
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        let mut h = Histogram::new();
        // 100 samples spread across the [64, 128) bucket.
        for i in 0..100u64 {
            h.record(Duration::from_ns(64 + (i * 64) / 100));
        }
        let p25 = h.percentile_ns(25.0);
        let p75 = h.percentile_ns(75.0);
        assert!(p25 < p75, "quantiles resolve inside one bucket");
        assert!((70..=90).contains(&p25), "p25 was {p25}");
        assert!((100..=120).contains(&p75), "p75 was {p75}");
    }

    #[test]
    fn histogram_zero_sample_goes_to_first_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        // The first bucket's nominal upper bound is 1 ns, but the
        // quantile clamps to the observed maximum (0 ns).
        assert_eq!(h.percentile_ns(100.0), 0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile_ns(50.0), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p95_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn single_bucket_quantiles_clamp_to_max() {
        let mut h = Histogram::new();
        // All samples land in the 64..128 ns bucket; interpolated quantiles
        // stay within the bucket and never exceed the observed maximum.
        for _ in 0..10 {
            h.record(Duration::from_ns(100));
        }
        let mut prev = 0;
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            let v = h.percentile_ns(p);
            assert!((64..=100).contains(&v), "p{p} of a single bucket was {v}");
            assert!(v >= prev, "quantiles are monotone");
            prev = v;
        }
        assert_eq!(h.percentile_ns(100.0), 100, "p100 clamps to the max");
    }

    #[test]
    fn named_quantiles_match_percentile_and_are_monotone() {
        let mut h = Histogram::new();
        for ns in 1..=1000u64 {
            h.record(Duration::from_ns(ns));
        }
        assert_eq!(h.p50_ns(), h.percentile_ns(50.0));
        assert_eq!(h.p95_ns(), h.percentile_ns(95.0));
        assert_eq!(h.p99_ns(), h.percentile_ns(99.0));
        assert!(h.p50_ns() <= h.p95_ns());
        assert!(h.p95_ns() <= h.p99_ns());
        assert!(h.p99_ns() <= h.max_ns());
    }

    #[test]
    fn out_of_range_percentiles_clamp() {
        let mut h = Histogram::new();
        h.record(Duration::from_ns(5));
        assert_eq!(h.percentile_ns(-10.0), h.percentile_ns(0.0));
        assert_eq!(h.percentile_ns(250.0), h.percentile_ns(100.0));
    }

    #[test]
    fn bucket_overflow_lands_in_last_bucket() {
        let mut h = Histogram::new();
        // Far beyond the last bucket's nominal range; must neither panic
        // nor report a quantile above the recorded sample.
        let big = 1u64 << 50; // ns; still fits the ps representation
        h.record(Duration::from_ns(big));
        h.record(Duration::from_ns(big));
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), big);
        assert_eq!(h.percentile_ns(99.0), (1u64 << 39).min(big));
    }

    #[test]
    fn merge_combines_counts_sums_and_quantiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for ns in 1..=500u64 {
            a.record(Duration::from_ns(ns));
            whole.record(Duration::from_ns(ns));
        }
        for ns in 501..=1000u64 {
            b.record(Duration::from_ns(ns));
            whole.record(Duration::from_ns(ns));
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum_ns(), whole.sum_ns());
        assert_eq!(a.max_ns(), whole.max_ns());
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                a.percentile_ns(p),
                whole.percentile_ns(p),
                "p{p} of merged vs whole"
            );
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        for ns in [10u64, 20, 30] {
            a.record(Duration::from_ns(ns));
        }
        let before = (a.count(), a.sum_ns(), a.max_ns(), a.p50_ns());
        a.merge(&Histogram::new());
        assert_eq!(before, (a.count(), a.sum_ns(), a.max_ns(), a.p50_ns()));
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.count(), a.count());
        assert_eq!(e.mean_ns(), a.mean_ns());
    }

    #[test]
    fn merge_saturates_like_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let big = 1u64 << 50;
        for _ in 0..10_000 {
            a.record(Duration::from_ns(big));
            b.record(Duration::from_ns(big));
        }
        a.merge(&b);
        assert_eq!(a.sum_ns(), u64::MAX, "merged sum saturates");
        assert_eq!(a.count(), 20_000);
    }

    #[test]
    fn to_json_dumps_only_populated_buckets() {
        let empty = Histogram::new();
        assert_eq!(
            empty.to_json(),
            "{\"count\":0,\"sum_ns\":0,\"max_ns\":0,\"buckets\":[]}"
        );
        let mut h = Histogram::new();
        h.record(Duration::from_ns(100)); // bucket [64, 128)
        h.record(Duration::from_ns(100));
        h.record(Duration::from_ns(3)); // bucket [2, 4)
        assert_eq!(
            h.to_json(),
            "{\"count\":3,\"sum_ns\":203,\"max_ns\":100,\"buckets\":[\
             {\"lo_ns\":2,\"hi_ns\":4,\"count\":1},\
             {\"lo_ns\":64,\"hi_ns\":128,\"count\":2}]}"
        );
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        let big = 1u64 << 50;
        // 2^64 / 2^50 = 16384 records overflow a wrapping sum.
        for _ in 0..20_000 {
            h.record(Duration::from_ns(big));
        }
        assert_eq!(h.sum_ns(), u64::MAX);
        assert_eq!(h.count(), 20_000);
    }
}
