//! The per-node event scheduler.
//!
//! A [`Scheduler`] partitions the future event list into one
//! [`EventQueue`] sub-queue per node and merges them on pop. The merge
//! is the deterministic seam the component refactor rests on, and the
//! per-node partition is the seam a later change can use to run nodes
//! on worker threads up to the chip-boundary latency quantum.
//!
//! # Why the drain order is bit-identical to a single queue
//!
//! Sequence numbers are allocated from **one global counter** in
//! [`Scheduler::schedule`], in call order, exactly as a single
//! [`EventQueue`] would allocate them. Each sub-queue drains by
//! `(time, seq)`, and [`Scheduler::pop`] takes the minimum `(time, seq)`
//! across the sub-queue heads — which is the minimum over the *union*
//! of all pending events, i.e. precisely the entry a single merged
//! queue would pop. Since every `(time, seq)` key is unique, the
//! tie-break is total and the node index never has to disambiguate:
//! same-time events still drain in schedule order even across nodes.
//! The golden-fingerprint tests in `tests/` hold the simulator to this.

use piranha_types::SimTime;

use crate::EventQueue;

/// Cached knowledge of one sub-queue's head key, so a pop does not
/// rescan every node's timing wheel. A node's entry is invalidated
/// (set to [`Head::Unknown`]) only when that node's queue pops.
#[derive(Debug, Clone, Copy)]
enum Head {
    /// Head key not currently known; recompute lazily on the next pop.
    Unknown,
    /// Sub-queue known to be empty.
    Empty,
    /// Sub-queue's next `(time, seq)` key.
    Key(SimTime, u64),
}

/// A deterministic future event list partitioned into per-node
/// sub-queues.
///
/// The API mirrors [`EventQueue`] with an added node dimension:
/// [`schedule`](Scheduler::schedule) takes the node that will handle
/// the event and [`pop`](Scheduler::pop) returns it. Lifetime counters
/// (`scheduled`/`popped`/`migrated`) aggregate the sub-queues and obey
/// the same invariant as a single queue: at quiescence,
/// `scheduled() == popped() + len() as u64`.
///
/// See the [`Component`](crate::Component) docs for a worked
/// two-component example driven by a `Scheduler`.
#[derive(Debug)]
pub struct Scheduler<E> {
    queues: Vec<EventQueue<E>>,
    heads: Vec<Head>,
    /// The global sequence allocator shared by every sub-queue.
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Scheduler<E> {
    /// A scheduler with `nodes` empty sub-queues (at least one).
    pub fn new(nodes: usize) -> Self {
        let nodes = nodes.max(1);
        Scheduler {
            queues: (0..nodes).map(|_| EventQueue::new()).collect(),
            heads: vec![Head::Empty; nodes],
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Number of per-node sub-queues.
    pub fn nodes(&self) -> usize {
        self.queues.len()
    }

    /// Schedule `event` for `node` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the time of the last popped event or
    /// `node` is out of range.
    pub fn schedule(&mut self, node: usize, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at {time} is in the past (now = {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        // A sub-queue's local `now` trails the global clock (it only
        // advances when that node pops), so `time >= self.now` implies
        // the sub-queue's own past-schedule assert can never fire.
        self.queues[node].schedule_seq(time, seq, event);
        match self.heads[node] {
            Head::Empty => self.heads[node] = Head::Key(time, seq),
            Head::Key(t, s) if (time, seq) < (t, s) => self.heads[node] = Head::Key(time, seq),
            // Unknown stays unknown: the true head may be even earlier.
            _ => {}
        }
    }

    /// Remove and return the globally earliest event as
    /// `(time, node, event)`, advancing the scheduler's notion of "now".
    pub fn pop(&mut self) -> Option<(SimTime, usize, E)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for node in 0..self.queues.len() {
            let (t, s) = match self.heads[node] {
                Head::Empty => continue,
                Head::Key(t, s) => (t, s),
                Head::Unknown => match self.queues[node].peek_key() {
                    None => {
                        self.heads[node] = Head::Empty;
                        continue;
                    }
                    Some((t, s)) => {
                        self.heads[node] = Head::Key(t, s);
                        (t, s)
                    }
                },
            };
            if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                best = Some((t, s, node));
            }
        }
        let (time, seq, node) = best?;
        let (t, event) = self.queues[node].pop().expect("cached head entry exists");
        debug_assert_eq!(t, time, "head cache agrees with the sub-queue");
        let _ = seq;
        self.heads[node] = Head::Unknown;
        self.now = t;
        self.popped += 1;
        Some((t, node, event))
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total pending events across every sub-queue.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether no events are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Total events scheduled over the scheduler's lifetime (the sum of
    /// the sub-queue counters, which equals the global seq allocator).
    pub fn scheduled(&self) -> u64 {
        debug_assert_eq!(
            self.queues.iter().map(|q| q.scheduled()).sum::<u64>(),
            self.seq
        );
        self.seq
    }

    /// Total events popped over the scheduler's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Events that migrated from overflow heaps into timing wheels,
    /// summed across sub-queues (a health signal, near zero in steady
    /// state).
    pub fn migrated(&self) -> u64 {
        self.queues.iter().map(|q| q.migrated()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_globally_time_and_seq_ordered() {
        let mut s: Scheduler<u32> = Scheduler::new(3);
        // Same-time events on different nodes must drain in schedule
        // order — the property a (time, node, seq) tie-break would get
        // wrong and a shared global seq gets right.
        s.schedule(2, SimTime(50), 0);
        s.schedule(0, SimTime(50), 1);
        s.schedule(1, SimTime(10), 2);
        s.schedule(1, SimTime(50), 3);
        assert_eq!(s.pop(), Some((SimTime(10), 1, 2)));
        assert_eq!(s.pop(), Some((SimTime(50), 2, 0)));
        assert_eq!(s.pop(), Some((SimTime(50), 0, 1)));
        assert_eq!(s.pop(), Some((SimTime(50), 1, 3)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn accounting_is_consistent_at_quiescence() {
        let mut s: Scheduler<u8> = Scheduler::new(4);
        for i in 0..100u64 {
            s.schedule((i % 4) as usize, SimTime(i * 3), 0);
        }
        for _ in 0..60 {
            s.pop();
        }
        // Mid-run and at quiescence: scheduled == popped + pending.
        assert_eq!(s.scheduled(), s.popped() + s.len() as u64);
        s.schedule(1, SimTime(1000), 1);
        while s.pop().is_some() {}
        assert_eq!(s.scheduled(), 101);
        assert_eq!(s.popped(), 101);
        assert_eq!(s.len(), 0);
        assert_eq!(s.scheduled(), s.popped() + s.len() as u64);
    }

    #[test]
    fn interleaved_schedule_at_now_preserves_fifo() {
        // The machine's hot loop schedules follow-on events at the pop
        // time; they must come after anything already pending at that
        // instant, regardless of node.
        let mut s: Scheduler<&str> = Scheduler::new(2);
        s.schedule(0, SimTime(5), "first");
        s.schedule(1, SimTime(5), "second");
        let (t, _, e) = s.pop().unwrap();
        assert_eq!((t, e), (SimTime(5), "first"));
        s.schedule(0, SimTime(5), "third");
        assert_eq!(s.pop().unwrap().2, "second");
        assert_eq!(s.pop().unwrap().2, "third");
    }

    /// A tiny deterministic PRNG (splitmix64) for the oracle test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn randomized_drain_order_matches_single_queue_oracle() {
        // The bit-identity claim itself: a Scheduler with N sub-queues
        // drains (time, node, event) in exactly the order one global
        // EventQueue over (node, event) pairs would.
        for seed in 0..8u64 {
            let mut rng = Rng(seed);
            let nodes = 1 + (seed as usize % 5);
            let mut s: Scheduler<u32> = Scheduler::new(nodes);
            let mut oracle: EventQueue<(usize, u32)> = EventQueue::new();
            let mut now = 0u64;
            for i in 0..5_000u32 {
                let roll = rng.next() % 100;
                if roll < 60 || s.is_empty() {
                    let node = (rng.next() as usize) % nodes;
                    let delta = match rng.next() % 10 {
                        0 => (rng.next() % 4) << 28, // far (past horizon)
                        1..=3 => 0,                  // tie at now
                        _ => rng.next() % (1 << 18), // near
                    };
                    let t = SimTime(now + delta);
                    s.schedule(node, t, i);
                    oracle.schedule(t, (node, i));
                } else {
                    let got = s.pop().map(|(t, n, e)| (t, (n, e)));
                    let want = oracle.pop();
                    assert_eq!(got, want, "merge diverged from oracle (seed {seed})");
                    if let Some((t, _)) = got {
                        now = t.0;
                    }
                }
            }
            loop {
                let got = s.pop().map(|(t, n, e)| (t, (n, e)));
                let want = oracle.pop();
                assert_eq!(got, want, "tail drain divergence (seed {seed})");
                if got.is_none() {
                    break;
                }
            }
            assert_eq!(s.scheduled(), s.popped());
        }
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_global_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new(2);
        s.schedule(0, SimTime(10), ());
        s.pop();
        // Node 1's local queue is still at time zero, but the global
        // clock has advanced: the past-schedule guard is global.
        s.schedule(1, SimTime(9), ());
    }
}
