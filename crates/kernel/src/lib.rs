//! Discrete-event simulation kernel for the Piranha CMP simulator.
//!
//! Provides the machinery every timing model in the workspace builds on:
//!
//! * [`EventQueue`] — a deterministic, stable-ordered future event list;
//! * [`Scheduler`] — per-node sub-queues over [`EventQueue`] with a
//!   deterministic global merge, the seam between the system wiring and
//!   the component adapters;
//! * [`Partition`] / [`Lookahead`] — partition-local event lists and
//!   the conservative per-pair lookahead bounds for parallel-in-space
//!   execution (one lane per worker thread, merged at window barriers);
//! * [`Component`] / [`Port`] — the typed module abstraction every
//!   subsystem crate adapts itself to (see the ping/pong example on
//!   [`Component`]);
//! * [`Server`] / [`MultiServer`] / [`Pipe`] — queueing-theoretic resource
//!   models used for contention on L2 banks, RDRAM channels, ICS datapaths,
//!   protocol-engine occupancy, and router links;
//! * [`stats`] — counters and histograms that feed the paper's figures;
//! * [`Prng`] — a small, fully deterministic pseudo-random number
//!   generator (xoshiro256++) so that simulations are reproducible
//!   bit-for-bit from a seed.
//!
//! # Examples
//!
//! ```
//! use piranha_kernel::EventQueue;
//! use piranha_types::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_ns(10), "b");
//! q.schedule(SimTime::from_ns(5), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_ns(), e), (5, "a"));
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod event;
pub mod partition;
pub mod rng;
pub mod sched;
pub mod server;
pub mod stats;

pub use component::{Component, Port};
pub use event::EventQueue;
pub use partition::{Lookahead, Partition};
pub use rng::Prng;
pub use sched::Scheduler;
pub use server::{MultiServer, Pipe, Server};
pub use stats::{Counter, Histogram, Ratio};
