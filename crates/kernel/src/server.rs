//! Queueing-theoretic resource models.
//!
//! Contention in the simulator — an L2 bank that can start one lookup per
//! cycle, a Rambus channel with 1.6 GB/s of bandwidth, a protocol engine
//! occupied for a few microinstructions per transaction — is modelled with
//! *servers*: a request arriving at time `t` begins service at
//! `max(t, busy_until)` and completes after its service time. Queueing
//! delay therefore emerges naturally from overlapping requests without
//! simulating individual queue slots.

use piranha_types::{Duration, SimTime};

/// A single-server FIFO queue (an M/G/1-style resource).
///
/// # Examples
///
/// ```
/// use piranha_kernel::Server;
/// use piranha_types::{Duration, SimTime};
///
/// let mut s = Server::new();
/// // Two back-to-back 10 ns jobs arriving at the same instant: the second
/// // queues behind the first.
/// let a = s.acquire(SimTime::ZERO, Duration::from_ns(10));
/// let b = s.acquire(SimTime::ZERO, Duration::from_ns(10));
/// assert_eq!(a.as_ns(), 10);
/// assert_eq!(b.as_ns(), 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    busy_until: SimTime,
    busy_time: Duration,
    jobs: u64,
}

impl Server {
    /// An idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a job arriving at `now` needing `service` time; returns its
    /// completion time.
    pub fn acquire(&mut self, now: SimTime, service: Duration) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        self.busy_time += service;
        self.jobs += 1;
        done
    }

    /// When the server next falls idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total service time delivered (for utilization statistics).
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]` as a fraction.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_ps() == 0 {
            0.0
        } else {
            self.busy_time.as_ps() as f64 / horizon.as_ps() as f64
        }
    }
}

/// A bank of `k` identical servers with a shared FIFO queue (M/G/k-style);
/// models resources with internal parallelism, such as the ICS's eight
/// internal datapaths (paper §2.2).
#[derive(Debug, Clone)]
pub struct MultiServer {
    busy_until: Vec<SimTime>,
    busy_time: Duration,
    jobs: u64,
}

impl MultiServer {
    /// A bank of `k` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "a MultiServer needs at least one server");
        MultiServer {
            busy_until: vec![SimTime::ZERO; k],
            busy_time: Duration::ZERO,
            jobs: 0,
        }
    }

    /// Submit a job arriving at `now`; it is served by the earliest-free
    /// server. Returns the completion time.
    pub fn acquire(&mut self, now: SimTime, service: Duration) -> SimTime {
        let (idx, _) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("non-empty by construction");
        let start = now.max(self.busy_until[idx]);
        let done = start + service;
        self.busy_until[idx] = done;
        self.busy_time += service;
        self.jobs += 1;
        done
    }

    /// Number of servers in the bank.
    pub fn width(&self) -> usize {
        self.busy_until.len()
    }

    /// Total service time delivered across all servers.
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }
}

/// A bandwidth-limited link: service time is proportional to transfer
/// size. Used for Rambus channels (1.6 GB/s) and interconnect links
/// (8 GB/s per channel — paper §2.4, §2.6.1).
#[derive(Debug, Clone)]
pub struct Pipe {
    server: Server,
    ps_per_byte_num: u64,
    ps_per_byte_den: u64,
}

impl Pipe {
    /// A pipe with the given bandwidth in GB/s (decimal: 1 GB/s = 1 byte/ns).
    ///
    /// # Panics
    ///
    /// Panics if `gb_per_s` is zero.
    pub fn from_gb_per_s(gb_per_s: u64) -> Self {
        assert!(gb_per_s > 0, "pipe bandwidth must be positive");
        // 1 GB/s = 1 byte per ns = 1000 ps per byte.
        Pipe {
            server: Server::new(),
            ps_per_byte_num: 1000,
            ps_per_byte_den: gb_per_s,
        }
    }

    /// Time to transfer `bytes` at full bandwidth (no queueing).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_ps((bytes * self.ps_per_byte_num).div_ceil(self.ps_per_byte_den))
    }

    /// Submit a `bytes`-sized transfer arriving at `now`; returns its
    /// completion time including queueing behind earlier transfers.
    pub fn acquire(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let t = self.transfer_time(bytes);
        self.server.acquire(now, t)
    }

    /// When the pipe next falls idle (for load-aware routing decisions).
    pub fn busy_until(&self) -> SimTime {
        self.server.busy_until()
    }

    /// Total busy time (for utilization statistics).
    pub fn busy_time(&self) -> Duration {
        self.server.busy_time()
    }

    /// Number of transfers served.
    pub fn jobs(&self) -> u64 {
        self.server.jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_queues_fifo() {
        let mut s = Server::new();
        let d = Duration::from_ns(5);
        assert_eq!(s.acquire(SimTime::ZERO, d).as_ns(), 5);
        assert_eq!(s.acquire(SimTime::ZERO, d).as_ns(), 10);
        // A job arriving after the backlog drains starts immediately.
        assert_eq!(s.acquire(SimTime::from_ns(100), d).as_ns(), 105);
        assert_eq!(s.jobs(), 3);
        assert_eq!(s.busy_time().as_ns(), 15);
    }

    #[test]
    fn server_utilization() {
        let mut s = Server::new();
        s.acquire(SimTime::ZERO, Duration::from_ns(25));
        assert!((s.utilization(SimTime::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multi_server_overlaps_up_to_width() {
        let mut m = MultiServer::new(2);
        let d = Duration::from_ns(10);
        assert_eq!(m.acquire(SimTime::ZERO, d).as_ns(), 10);
        assert_eq!(m.acquire(SimTime::ZERO, d).as_ns(), 10); // second server
        assert_eq!(m.acquire(SimTime::ZERO, d).as_ns(), 20); // queues
        assert_eq!(m.width(), 2);
        assert_eq!(m.jobs(), 3);
        assert_eq!(m.busy_time().as_ns(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_width_multi_server_panics() {
        let _ = MultiServer::new(0);
    }

    #[test]
    fn pipe_scales_with_size() {
        let mut p = Pipe::from_gb_per_s(2); // 0.5 ns per byte
        assert_eq!(p.transfer_time(64).as_ns(), 32);
        assert_eq!(p.acquire(SimTime::ZERO, 64).as_ns(), 32);
        assert_eq!(p.acquire(SimTime::ZERO, 64).as_ns(), 64);
        assert_eq!(p.jobs(), 2);
    }

    #[test]
    fn rambus_channel_rate_matches_paper() {
        // Paper §2.4: each RDRAM channel moves a 64-byte line's remainder in
        // 30 ns after the critical word; 1.6 GB/s ≈ 40 ns per 64 bytes.
        let p = Pipe::from_gb_per_s(1); // conservative integer-GB/s model
        assert_eq!(p.transfer_time(64).as_ns(), 64);
    }
}
