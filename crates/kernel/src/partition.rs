//! Per-partition future event lists for parallel-in-space execution.
//!
//! A [`Partition`] is one lane's private event queue: unlike
//! [`Scheduler`](crate::Scheduler), whose sub-queues share one global
//! sequence counter so the merged drain is bit-identical to a single
//! queue, partitions allocate sequence numbers **locally**. That is what
//! lets a lane run on its own worker thread without synchronizing on a
//! shared allocator — and it forces an explicit, deterministic merge
//! rule at quantum barriers: cross-partition events are delivered in
//! ascending `(time, source partition, intra-quantum seq)` order (see
//! `piranha-parsim`), a total key that no thread interleaving can
//! perturb.
//!
//! [`Lookahead`] holds the conservative synchronization bounds: a full
//! per-pair matrix of minimum cross-partition delivery latencies,
//! computed from the interconnect topology at wiring time. Events a
//! partition emits at time `t` for partition `d` are due no earlier
//! than `t + bound(src, d)`; the matrix minimum (the *quantum*) is the
//! window every partition may safely advance through — to
//! `horizon = t_min + quantum` — before the next barrier, because
//! nothing another lane does inside that window can affect it.

use piranha_types::{Duration, SimTime};

use crate::EventQueue;

/// One lane's private, deterministically ordered future event list.
///
/// A thin wrapper over [`EventQueue`] that fixes the sequence space to
/// be partition-local: every `(time, seq)` key is allocated and consumed
/// by the owning lane alone, so two partitions never contend and their
/// drains are reproducible independently of each other.
///
/// # Examples
///
/// ```
/// use piranha_kernel::Partition;
/// use piranha_types::SimTime;
///
/// let mut p = Partition::new();
/// p.schedule(SimTime(30), "b");
/// p.schedule(SimTime(10), "a");
/// assert_eq!(p.peek_time(), Some(SimTime(10)));
/// assert_eq!(p.pop(), Some((SimTime(10), "a")));
/// ```
#[derive(Debug)]
pub struct Partition<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Partition<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Partition<E> {
    /// An empty partition positioned at time zero.
    pub fn new() -> Self {
        Partition {
            queue: EventQueue::new(),
        }
    }

    /// Schedule `event` at absolute time `time`, stamping the next
    /// partition-local sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes this partition's last popped time. Note
    /// the guard is *local*: a barrier may legally deliver an event that
    /// is in another partition's past, as long as it is in this one's
    /// future — the quantum bound guarantees exactly that.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }

    /// Remove and return the earliest `(time, event)`, advancing the
    /// partition's local clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.queue.pop()
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The `(time, seq)` key of the earliest pending event, if any.
    /// Orderings across partitions must extend this with the partition
    /// index — local seqs from different partitions are not comparable
    /// on their own.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.queue.peek_key()
    }

    /// The time of the most recently popped event (the partition's local
    /// clock, which trails the global clock between barriers).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Lifetime scheduled-event count.
    pub fn scheduled(&self) -> u64 {
        self.queue.scheduled()
    }

    /// Lifetime popped-event count.
    pub fn popped(&self) -> u64 {
        self.queue.popped()
    }

    /// Overflow-to-wheel migrations (health signal; near zero in steady
    /// state).
    pub fn migrated(&self) -> u64 {
        self.queue.migrated()
    }
}

/// The conservative synchronization bounds for a partitioned run: the
/// per-pair lookahead matrix plus the derived per-destination and global
/// minima.
///
/// `bound(src, dst)` is a lower bound on how long any event partition
/// `src` emits takes to become visible at partition `dst` — topology
/// hop distance × per-hop minimum, derived from the interconnect at
/// wiring time. Two reductions matter operationally:
///
/// * [`quantum`](Lookahead::quantum) — the matrix minimum over distinct
///   pairs. The window `[t_min, t_min + quantum)` is safe for *every*
///   partition simultaneously, which is what the barrier engine steps
///   by.
/// * [`min_into`](Lookahead::min_into) — the minimum over sources that
///   can reach one destination. Diagnostic of how much slack each lane
///   has beyond the global quantum (on asymmetric topologies some lanes
///   could run further ahead than the fleet).
///
/// Every off-diagonal bound must be strictly positive: a zero-latency
/// cross-partition path would let one lane affect another *inside* a
/// window, and no parallel schedule could be conservative.
#[derive(Debug, Clone)]
pub struct Lookahead {
    /// `bounds[src][dst]`; zero on the diagonal (never consulted).
    bounds: Vec<Vec<Duration>>,
    /// Minimum off-diagonal bound: the global window quantum.
    quantum: Duration,
    /// `min_into[dst]` = min over `src != dst` of `bounds[src][dst]`.
    min_into: Vec<Duration>,
}

impl Lookahead {
    /// A lookahead from a full per-pair bound matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with at least two partitions,
    /// or if any off-diagonal bound is zero — asserted here, at wiring
    /// time, so a misconfigured interconnect fails fast instead of
    /// producing subtly non-deterministic parallel runs.
    pub fn from_bounds(bounds: Vec<Vec<Duration>>) -> Self {
        let n = bounds.len();
        assert!(n >= 2, "a lookahead matrix needs at least two partitions");
        let mut quantum = Duration(u64::MAX);
        let mut min_into = vec![Duration(u64::MAX); n];
        for (s, row) in bounds.iter().enumerate() {
            assert_eq!(row.len(), n, "lookahead matrix must be square");
            for (d, &b) in row.iter().enumerate() {
                if s == d {
                    continue;
                }
                assert!(
                    b > Duration::ZERO,
                    "conservative lookahead requires a strictly positive quantum \
                     (minimum cross-node delivery latency), but {s}->{d} is zero"
                );
                quantum = quantum.min(b);
                min_into[d] = min_into[d].min(b);
            }
        }
        Lookahead {
            bounds,
            quantum,
            min_into,
        }
    }

    /// The degenerate uniform matrix: every distinct pair bounded by the
    /// same `quantum` (the fixed-quantum engine's view of the world, and
    /// exactly what [`from_bounds`](Lookahead::from_bounds) yields for a
    /// fully connected topology).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `nodes < 2`.
    pub fn uniform(nodes: usize, quantum: Duration) -> Self {
        let bounds = (0..nodes)
            .map(|s| {
                (0..nodes)
                    .map(|d| if s == d { Duration::ZERO } else { quantum })
                    .collect()
            })
            .collect();
        Self::from_bounds(bounds)
    }

    /// Number of partitions the matrix covers.
    pub fn nodes(&self) -> usize {
        self.bounds.len()
    }

    /// The global lookahead bound: the matrix minimum over distinct
    /// pairs.
    pub fn quantum(&self) -> Duration {
        self.quantum
    }

    /// The conservative delivery bound from `src` to `dst` (zero when
    /// `src == dst`).
    pub fn bound(&self, src: usize, dst: usize) -> Duration {
        self.bounds[src][dst]
    }

    /// The earliest any *other* partition's traffic can land at `dst`,
    /// relative to its send time.
    pub fn min_into(&self, dst: usize) -> Duration {
        self.min_into[dst]
    }

    /// Whether every distinct pair shares the global quantum (true for
    /// fully connected topologies, where the matrix buys nothing over
    /// the fixed-quantum engine).
    pub fn is_uniform(&self) -> bool {
        self.bounds.iter().enumerate().all(|(s, row)| {
            row.iter()
                .enumerate()
                .all(|(d, &b)| s == d || b == self.quantum)
        })
    }

    /// The horizon of the window starting at `earliest`: partitions may
    /// process every event strictly before it. Using the *global*
    /// earliest pending event as the base (rather than a fixed cadence)
    /// makes idle stretches skip ahead in one window.
    pub fn horizon(&self, earliest: SimTime) -> SimTime {
        earliest + self.quantum
    }
}

#[cfg(test)]
mod tests {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use super::*;
    use crate::Scheduler;

    #[test]
    fn partition_seqs_are_local() {
        let mut a: Partition<u32> = Partition::new();
        let mut b: Partition<u32> = Partition::new();
        a.schedule(SimTime(5), 0);
        b.schedule(SimTime(5), 1);
        // Both partitions hand out seq 0: the spaces are independent.
        assert_eq!(a.peek_key(), Some((SimTime(5), 0)));
        assert_eq!(b.peek_key(), Some((SimTime(5), 0)));
    }

    #[test]
    fn uniform_lookahead_horizon() {
        let la = Lookahead::uniform(3, Duration::from_ns(20));
        assert_eq!(la.nodes(), 3);
        assert_eq!(la.quantum(), Duration::from_ns(20));
        assert!(la.is_uniform());
        assert_eq!(la.horizon(SimTime::from_ns(100)), SimTime::from_ns(120));
        for d in 0..3 {
            assert_eq!(la.min_into(d), Duration::from_ns(20));
        }
    }

    #[test]
    fn matrix_lookahead_minima() {
        // A 3-node line: 0-1-2. Pair (0,2) is two hops.
        let q = Duration::from_ns(20);
        let la = Lookahead::from_bounds(vec![
            vec![Duration::ZERO, q, q.times(2)],
            vec![q, Duration::ZERO, q],
            vec![q.times(2), q, Duration::ZERO],
        ]);
        assert_eq!(la.quantum(), q, "global quantum is the matrix minimum");
        assert!(!la.is_uniform());
        assert_eq!(la.bound(0, 2), q.times(2));
        assert_eq!(la.bound(2, 0), q.times(2));
        // The middle node is reachable in one hop from both ends; the
        // ends only see one-hop traffic from the middle.
        for d in 0..3 {
            assert_eq!(la.min_into(d), q);
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive quantum")]
    fn zero_quantum_rejected() {
        let _ = Lookahead::uniform(2, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_rejected() {
        let _ = Lookahead::from_bounds(vec![vec![Duration::ZERO, Duration(1)], vec![Duration(1)]]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn partition_guards_its_local_past() {
        let mut p: Partition<()> = Partition::new();
        p.schedule(SimTime(10), ());
        p.pop();
        p.schedule(SimTime(9), ());
    }

    /// A tiny deterministic PRNG (splitmix64) for the oracle test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Pop the globally next event from a set of partitions under the
    /// barrier merge rule: minimum `(time, partition, local seq)`.
    fn pop_partitioned<E>(parts: &mut [Partition<E>]) -> Option<(SimTime, usize, E)> {
        let best = parts
            .iter()
            .enumerate()
            .filter_map(|(n, p)| p.peek_key().map(|(t, s)| (t, n, s)))
            .min()?;
        let (t, e) = parts[best.1].pop().expect("peeked entry exists");
        Some((t, best.1, e))
    }

    /// The head-cache oracle, interleaved with the partition API: the
    /// same randomized op stream drives (a) a `Scheduler`, whose
    /// `Head::Unknown` invalidation must reproduce a single binary
    /// heap's global-seq order, and (b) a set of `Partition`s, whose
    /// per-partition seq spaces must reproduce a binary heap ordered by
    /// the barrier merge key `(time, partition, local seq)`. Schedules
    /// right at `now` and repeated pops on one node force head-cache
    /// recomputation through every `Head` state.
    #[test]
    fn scheduler_and_partitions_match_binary_heap_oracles() {
        for seed in 0..12u64 {
            let mut rng = Rng(seed);
            let nodes = 2 + (seed as usize % 4);
            let mut sched: Scheduler<u32> = Scheduler::new(nodes);
            let mut parts: Vec<Partition<u32>> = (0..nodes).map(|_| Partition::new()).collect();
            let mut part_seq = vec![0u64; nodes];
            // Oracles: plain binary heaps over the two merge keys.
            let mut heap_global: BinaryHeap<Reverse<(SimTime, u64, usize, u32)>> =
                BinaryHeap::new();
            let mut heap_part: BinaryHeap<Reverse<(SimTime, usize, u64, u32)>> = BinaryHeap::new();
            let mut gseq = 0u64;
            let mut now = 0u64;
            let mut part_now = vec![0u64; nodes];
            for i in 0..4_000u32 {
                let roll = rng.next() % 100;
                if roll < 55 || sched.is_empty() {
                    let node = (rng.next() as usize) % nodes;
                    let delta = match rng.next() % 8 {
                        0 => (rng.next() % 3) << 28, // far (past the wheel horizon)
                        1..=3 => 0,                  // tie at now
                        _ => rng.next() % (1 << 16), // near
                    };
                    let t = SimTime(now.max(part_now[node]) + delta);
                    sched.schedule(node, t, i);
                    heap_global.push(Reverse((t, gseq, node, i)));
                    gseq += 1;
                    parts[node].schedule(t, i);
                    heap_part.push(Reverse((t, node, part_seq[node], i)));
                    part_seq[node] += 1;
                } else {
                    // Scheduler vs global-seq heap (head cache under test).
                    let got = sched.pop();
                    let want = heap_global.pop().map(|Reverse((t, _, n, e))| (t, n, e));
                    assert_eq!(got, want, "scheduler diverged from heap (seed {seed})");
                    if let Some((t, _, _)) = got {
                        now = t.0;
                    }
                    // Partitions vs barrier-merge-key heap.
                    let got = pop_partitioned(&mut parts);
                    let want = heap_part.pop().map(|Reverse((t, n, _, e))| (t, n, e));
                    assert_eq!(got, want, "partitions diverged from heap (seed {seed})");
                    if let Some((t, n, _)) = got {
                        part_now[n] = t.0;
                    }
                }
            }
            loop {
                let got = sched.pop();
                let want = heap_global.pop().map(|Reverse((t, _, n, e))| (t, n, e));
                assert_eq!(got, want, "scheduler tail divergence (seed {seed})");
                let gotp = pop_partitioned(&mut parts);
                let wantp = heap_part.pop().map(|Reverse((t, n, _, e))| (t, n, e));
                assert_eq!(gotp, wantp, "partition tail divergence (seed {seed})");
                if got.is_none() && gotp.is_none() {
                    break;
                }
            }
        }
    }
}
