//! Deterministic pseudo-random numbers.
//!
//! The simulator must be reproducible bit-for-bit from a seed (both for
//! debugging coherence races and so that the paper's figures regenerate
//! identically), so it uses its own small generator rather than an
//! OS-seeded one: xoshiro256++ seeded through SplitMix64, the standard
//! construction recommended by the xoshiro authors.

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use piranha_kernel::Prng;
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Seed the generator from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Derive an independent stream for a named subcomponent. Streams with
    /// different tags are statistically independent, so each CPU, workload
    /// process, and router can have its own without correlation.
    pub fn derive(&self, tag: u64) -> Prng {
        let mut sm = self.s[0] ^ self.s[2] ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A geometrically-distributed value (number of failures before the
    /// first success) with success probability `p`; used for dependency-
    /// distance and run-length draws in the workload models.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric probability out of range: {p}"
        );
        if p >= 1.0 {
            return 0;
        }
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()) as u64
    }

    /// Pick an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut x = self.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn derived_streams_are_independent_and_deterministic() {
        let root = Prng::seed_from_u64(1);
        let mut x = root.derive(10);
        let mut y = root.derive(11);
        let mut x2 = root.derive(10);
        assert_eq!(x.next_u64(), x2.next_u64());
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Prng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of below(10) should appear"
        );
    }

    #[test]
    fn range_bounds() {
        let mut r = Prng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Prng::seed_from_u64(5);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Prng::seed_from_u64(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac} too far from 0.3");
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut r = Prng::seed_from_u64(9);
        let p = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!(
            (mean - expect).abs() < 0.1,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Prng::seed_from_u64(11);
        let w = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| r.weighted(&w) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac} too far from 0.75");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        Prng::seed_from_u64(0).below(0);
    }
}
