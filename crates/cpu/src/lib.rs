//! CPU timing models for the Piranha simulator.
//!
//! Two cores are modelled, matching the paper's Table 1:
//!
//! * [`InOrderCore`] — Piranha's CPU (§2.1): single-issue, in-order,
//!   8-stage pipeline (fetch, register-read, ALU 1–5, write-back) with a
//!   branch target buffer, pipelined multiply, blocking first-level
//!   caches, and a store buffer in the dL1. Also used (at 1 GHz) for the
//!   paper's INO baseline.
//! * [`OooCore`] — the next-generation out-of-order baseline
//!   (Alpha 21364-like): 4-issue, 64-entry instruction window, MSHR-
//!   limited memory-level parallelism, modelled with a timestamp dataflow
//!   algorithm so that ILP and MLP emerge from the instruction stream's
//!   dependency structure rather than a fudge factor.
//!
//! Both consume [`InstrStream`]s — either synthetic workload generators
//! (`piranha-workloads`) or real Alpha-subset programs through
//! [`IsaStream`], which derives true register dependencies from the
//! interpreter.

#![warn(missing_docs)]

pub mod btb;
pub mod component;
pub mod inorder;
pub mod ooo;
pub mod stats;
pub mod stream;

pub use btb::Btb;
pub use component::{CpuAction, CpuCluster, CpuCtx, CpuEvent};
pub use inorder::{InOrderConfig, InOrderCore};
pub use ooo::{OooConfig, OooCore};
pub use stats::CoreStats;
pub use stream::{InstrStream, IsaStream, OpKind, StreamOp};

use piranha_cache::L1Cache;
use piranha_types::{CacheKind, FillSource, LineAddr, ReqType};

/// A memory request leaving a core toward the L2 (a blocking L1 miss or a
/// store-buffer transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Core-local request id (echoed back by [`CoreModel::fill`]).
    pub id: u64,
    /// Which L1 missed.
    pub kind: CacheKind,
    /// The coherence request required.
    pub req: ReqType,
    /// The line.
    pub line: LineAddr,
    /// Pre-allocated store version (store-type requests only).
    pub store_version: Option<u64>,
}

/// What state a core is in after [`CoreModel::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// More work can be done right now (the instruction budget ran out).
    Runnable,
    /// The core cannot proceed until some outstanding fill arrives.
    Blocked,
    /// The instruction stream ended (e.g. `halt`).
    Done,
}

/// Mutable context a core needs while advancing: its two L1 caches and
/// the chip-wide store-version allocator.
pub struct CoreCtx<'a> {
    /// The instruction L1.
    pub l1i: &'a mut L1Cache,
    /// The data L1.
    pub l1d: &'a mut L1Cache,
    /// Chip-global monotone version counter stamped by stores.
    pub versions: &'a mut u64,
    /// Increment applied per store: 1 on a single-lane machine (globally
    /// sequential versions, the legacy numbering), or the lane count on a
    /// partitioned machine, where each lane strides its own residue class
    /// so version stamps stay globally unique without a shared counter.
    pub version_stride: u64,
}

impl std::fmt::Debug for CoreCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreCtx")
            .field("versions", self.versions)
            .finish_non_exhaustive()
    }
}

/// Common interface of the two core timing models.
///
/// `Send` so cores can move onto a lane worker thread under the
/// parallel-in-space engine (`piranha-parsim`).
pub trait CoreModel: Send {
    /// Advance until the core blocks, retires `budget` instructions, or
    /// the stream ends. Issued memory requests are appended to `reqs`
    /// with the local cycle at which they left the core.
    fn advance(
        &mut self,
        stream: &mut dyn InstrStream,
        ctx: &mut CoreCtx<'_>,
        budget: u64,
        reqs: &mut Vec<(u64, MemReq)>,
    ) -> CoreStatus;

    /// Advance in functional-warming mode: retire instructions at a
    /// fixed one-per-cycle rate while touching every piece of
    /// *architectural* state the detailed model would touch — L1 tags,
    /// TLB entries, BTB entries, store-buffer contents, store versions
    /// — but charging none of the timing (no mispredict penalties, no
    /// TLB-miss stalls, no idle time). The default simply runs the
    /// detailed [`CoreModel::advance`], which is always correct (the
    /// sampling machinery treats timing during warming as meaningless)
    /// — cores override it when a cheaper functional path exists.
    fn warm_advance(
        &mut self,
        stream: &mut dyn InstrStream,
        ctx: &mut CoreCtx<'_>,
        budget: u64,
        reqs: &mut Vec<(u64, MemReq)>,
    ) -> CoreStatus {
        self.advance(stream, ctx, budget, reqs)
    }

    /// Deliver the fill for request `id` at local cycle `at_cycle` (the
    /// line is already installed in the L1 by the L2 bank).
    fn fill(&mut self, id: u64, at_cycle: u64, source: FillSource);

    /// The core's current local cycle.
    fn now_cycle(&self) -> u64;

    /// Jump the core's local clock forward to at least `cycle` (never
    /// backward). The traffic dispatcher calls this when admitting a
    /// transaction to a core that has been parked: the core's frozen
    /// local clock must catch up to the admission cycle so execution
    /// resumes in present simulated time rather than replaying the past.
    fn align_cycle(&mut self, _cycle: u64) {}

    /// Accumulated statistics.
    fn stats(&self) -> &CoreStats;

    /// Total TLB misses (instruction + data), read from the TLBs
    /// themselves — the authoritative count.
    fn tlb_misses(&self) -> u64;

    /// The resident page numbers of the instruction and data TLBs,
    /// each sorted — TLB occupancy for warming-fidelity checks. Cores
    /// without TLBs report empty.
    fn tlb_residency(&self) -> (Vec<u64>, Vec<u64>) {
        (Vec::new(), Vec::new())
    }

    /// Whether the core has outstanding memory requests.
    fn has_outstanding(&self) -> bool;
}
