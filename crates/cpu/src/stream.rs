//! Instruction streams: what the timing models execute.
//!
//! A stream yields one [`StreamOp`] per architectural instruction. The
//! synthetic workload engines in `piranha-workloads` generate these
//! directly; [`IsaStream`] adapts a real Alpha-subset program running on
//! the `piranha-isa` interpreter, deriving true register-dependency
//! distances so the out-of-order model sees the program's actual ILP.

use piranha_isa::{ExecKind, Machine, Trap};
use piranha_types::Addr;

/// What one instruction does, as seen by a timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An integer/floating operation.
    Alu {
        /// Uses the long (pipelined multiply/FP) unit.
        mul: bool,
        /// Dependency distance to the first source operand's producer
        /// (0 = no dependency).
        dep1: u32,
        /// Dependency distance to the second source operand's producer.
        dep2: u32,
    },
    /// A data load.
    Load {
        /// Byte address accessed.
        addr: Addr,
        /// Dependency distance to the address-generating producer.
        dep_addr: u32,
    },
    /// A data store (retired through the store buffer).
    Store {
        /// Byte address accessed.
        addr: Addr,
    },
    /// A full-line write hint (`wh64`).
    WriteHint {
        /// Byte address of the line.
        addr: Addr,
    },
    /// A control transfer.
    Branch {
        /// Whether it was taken.
        taken: bool,
        /// Pre-decided prediction outcome (synthetic streams); `None`
        /// lets the core's BTB decide (ISA streams).
        mispredict: Option<bool>,
    },
    /// The stream's thread is idle for the given CPU cycles (e.g. I/O
    /// wait not hidden by other server processes).
    Idle {
        /// Idle cycles.
        cycles: u32,
    },
}

/// One instruction: its PC (for I-cache modelling) and its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOp {
    /// Instruction address.
    pub pc: Addr,
    /// What it does.
    pub kind: OpKind,
}

/// A source of instructions for a core.
///
/// `Send` so a node's streams can move onto a lane worker thread under
/// the parallel-in-space engine (`piranha-parsim`).
pub trait InstrStream: Send {
    /// The next instruction, or `None` when the stream ends.
    fn next_op(&mut self) -> Option<StreamOp>;

    /// How many workload-level units of work (transactions, scan lines)
    /// this stream has completed, for streams that have such a notion.
    /// Fixed-instruction-window runs return `None`; bounded workload
    /// streams report their count so fault-injection runs can prove
    /// they completed the same work as a fault-free run.
    fn txns_committed(&self) -> Option<u64> {
        None
    }

    /// Units of work completed for reporting (per-core throughput).
    /// Unlike [`InstrStream::txns_committed`] — which feeds
    /// `RunResult::fingerprint()` and must keep its exact legacy
    /// semantics — this may be overridden by streams whose unit of work
    /// is not a transaction (e.g. web queries).
    fn units_completed(&self) -> Option<u64> {
        self.txns_committed()
    }

    /// Open-loop gating (`piranha-traffic`): whether the stream is
    /// parked at a transaction boundary awaiting admission. Closed-loop
    /// streams never park, so cores skip all gating work.
    fn parked(&self) -> bool {
        false
    }

    /// Whether a detected transaction boundary has not yet been fully
    /// processed (commit cycle unstamped, or stamped but not collected).
    /// The dispatcher only consults the traffic plane once this clears.
    fn boundary_pending(&self) -> bool {
        false
    }

    /// Whether no further ops can ever be produced (the wrapped stream
    /// ended). The dispatcher unparks such a stream without admission so
    /// the core can observe `Done`.
    fn exhausted(&self) -> bool {
        false
    }

    /// Called by the core when it quiesces at a parked boundary: stamps
    /// the transaction's commit cycle (first call per boundary wins).
    fn mark_quiescent(&mut self, _cycle: u64) {}

    /// Collect a stamped commit cycle, if any (dispatcher side).
    fn take_completion(&mut self) -> Option<u64> {
        None
    }

    /// Admit the next transaction on a parked stream, charging
    /// `_extra_idle_cycles` of service-time pad before its first op.
    fn admit(&mut self, _extra_idle_cycles: u32) {}
}

impl<F: FnMut() -> Option<StreamOp> + Send> InstrStream for F {
    fn next_op(&mut self) -> Option<StreamOp> {
        self()
    }
}

/// Adapts a `piranha-isa` [`Machine`] into an [`InstrStream`], deriving
/// register dependency distances from the architectural state.
///
/// # Examples
///
/// ```
/// use piranha_cpu::{InstrStream, IsaStream};
/// use piranha_isa::{asm, Machine};
///
/// let prog = asm::assemble("li r1, 4\nadd r2, r1, r1\nhalt").unwrap();
/// let mut s = IsaStream::new(Machine::new(prog));
/// let first = s.next_op().unwrap();
/// assert_eq!(first.pc.0, 0);
/// ```
#[derive(Debug)]
pub struct IsaStream {
    machine: Machine,
    /// Per-register index of the last writer (instruction count).
    last_writer: [u64; piranha_isa::NUM_REGS],
    index: u64,
    trapped: Option<Trap>,
}

impl IsaStream {
    /// Wrap a machine positioned at its entry point.
    pub fn new(machine: Machine) -> Self {
        IsaStream {
            machine,
            last_writer: [0; piranha_isa::NUM_REGS],
            index: 0,
            trapped: None,
        }
    }

    /// The wrapped machine (for inspecting registers/memory afterwards).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// A trap, if execution ended abnormally.
    pub fn trap(&self) -> Option<&Trap> {
        self.trapped.as_ref()
    }

    fn dep_of(&self, reg: piranha_isa::Reg) -> u32 {
        if reg == piranha_isa::ZERO_REG {
            return 0;
        }
        let w = self.last_writer[reg as usize];
        if w == 0 {
            0
        } else {
            (self.index - w).min(u32::MAX as u64) as u32
        }
    }
}

impl InstrStream for IsaStream {
    fn next_op(&mut self) -> Option<StreamOp> {
        if self.trapped.is_some() || self.machine.halted() {
            return None;
        }
        // Peek source/dest registers of the *next* instruction before
        // executing it.
        let pc_index = {
            // The machine's PC is private; recover the instruction via
            // the retired count — instead, step and use the Exec record.
            // Dependencies must be computed from the pre-step state, so
            // fetch the instruction by stepping and reconstructing.
            0
        };
        let _ = pc_index;
        let before = self.machine.retired();
        let exec = match self.machine.step() {
            Ok(Some(e)) => e,
            Ok(None) => return None,
            Err(t) => {
                self.trapped = Some(t);
                return None;
            }
        };
        debug_assert_eq!(self.machine.retired(), before + 1);
        self.index += 1;
        // Locate the executed instruction to extract its registers.
        let instr_idx = (exec.pc.0 - self.machine.program().text_base) / 4;
        let instr = self.machine.program().instrs[instr_idx as usize];
        let sources = instr.sources();
        let deps: Vec<u32> = sources.iter().map(|&r| self.dep_of(r)).collect();
        if let Some(d) = instr.dest() {
            self.last_writer[d as usize] = self.index;
        }
        let kind = match exec.kind {
            ExecKind::Alu => OpKind::Alu {
                mul: false,
                dep1: deps.first().copied().unwrap_or(0),
                dep2: deps.get(1).copied().unwrap_or(0),
            },
            ExecKind::Mul => OpKind::Alu {
                mul: true,
                dep1: deps.first().copied().unwrap_or(0),
                dep2: deps.get(1).copied().unwrap_or(0),
            },
            ExecKind::Load(a) => OpKind::Load {
                addr: a,
                dep_addr: deps.first().copied().unwrap_or(0),
            },
            ExecKind::Store(a) => OpKind::Store { addr: a },
            ExecKind::WriteHint(a) => OpKind::WriteHint { addr: a },
            ExecKind::Branch { taken } => OpKind::Branch {
                taken,
                mispredict: None,
            },
            ExecKind::Halt => return None,
        };
        Some(StreamOp { pc: exec.pc, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_isa::asm;

    fn stream_of(src: &str) -> Vec<StreamOp> {
        let mut s = IsaStream::new(Machine::new(asm::assemble(src).unwrap()));
        std::iter::from_fn(|| s.next_op()).collect()
    }

    #[test]
    fn ops_follow_program() {
        let ops = stream_of("li r1, 0x100\nldq r2, 0(r1)\nstq r2, 8(r1)\nhalt");
        assert_eq!(ops.len(), 3, "halt terminates the stream");
        assert!(matches!(ops[0].kind, OpKind::Alu { .. }));
        assert!(matches!(ops[1].kind, OpKind::Load { addr, .. } if addr.0 == 0x100));
        assert!(matches!(ops[2].kind, OpKind::Store { addr } if addr.0 == 0x108));
    }

    #[test]
    fn dependency_distances_reflect_registers() {
        // r2 depends on r1 written one instruction earlier; r3 on r1 at
        // distance two and r2 at distance one.
        let ops = stream_of("li r1, 5\naddi r2, r1, 1\nadd r3, r1, r2\nhalt");
        let OpKind::Alu { dep1, .. } = ops[1].kind else {
            panic!()
        };
        assert_eq!(dep1, 1);
        let OpKind::Alu { dep1, dep2, .. } = ops[2].kind else {
            panic!()
        };
        assert_eq!((dep1, dep2), (2, 1));
    }

    #[test]
    fn load_address_dependency() {
        let ops = stream_of("li r1, 0x40\nldq r2, 0(r1)\nhalt");
        let OpKind::Load { dep_addr, .. } = ops[1].kind else {
            panic!()
        };
        assert_eq!(dep_addr, 1);
    }

    #[test]
    fn branches_and_pcs() {
        let ops = stream_of("li r1, 1\nbeq r1, out\nout: halt");
        assert!(matches!(
            ops[1].kind,
            OpKind::Branch {
                taken: false,
                mispredict: None
            }
        ));
        assert_eq!(ops[0].pc.0, 0);
        assert_eq!(ops[1].pc.0, 4);
    }

    #[test]
    fn zero_register_never_creates_dependencies() {
        let ops = stream_of("li r31, 3\naddi r1, r31, 1\nhalt");
        let OpKind::Alu { dep1, .. } = ops[1].kind else {
            panic!()
        };
        assert_eq!(dep1, 0);
    }

    #[test]
    fn closure_streams_work() {
        let mut n = 0;
        let mut s = move || {
            n += 1;
            (n <= 2).then_some(StreamOp {
                pc: Addr(0),
                kind: OpKind::Alu {
                    mul: false,
                    dep1: 0,
                    dep2: 0,
                },
            })
        };
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_none());
    }
}
