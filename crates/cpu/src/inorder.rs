//! The Piranha CPU core: single-issue, in-order, 8-stage pipeline
//! (paper §2.1).
//!
//! "The pipeline has 8 stages: instruction fetch, register-read, ALU 1
//! through 5, and write-back. The 5-stage ALU supports pipelined
//! floating-point and multiply instructions. However, most instructions
//! execute in a single cycle." The datapath is fully bypassed, so the
//! timing model charges one cycle per instruction, a BTB-driven redirect
//! penalty for mispredicted branches, blocking-miss stalls for loads and
//! fetches, and store-buffer occupancy for stores.

use std::collections::VecDeque;

#[cfg(test)]
use piranha_types::Addr;
use piranha_types::{CacheKind, FillSource, LineAddr, ReqType};

use piranha_cache::{Tlb, TlbConfig};

use crate::btb::Btb;
use crate::stats::CoreStats;
use crate::stream::{InstrStream, OpKind, StreamOp};
use crate::{CoreCtx, CoreModel, CoreStatus, MemReq};

/// Configuration of the in-order core.
#[derive(Debug, Clone, Copy)]
pub struct InOrderConfig {
    /// BTB entries.
    pub btb_entries: usize,
    /// Refetch penalty for a mispredicted branch (front half of the
    /// 8-stage pipe).
    pub mispredict_penalty: u64,
    /// Store buffer depth (in the dL1, per §2.1).
    pub store_buffer: usize,
    /// Concurrent store transactions the buffer may have outstanding.
    pub store_buffer_mlp: usize,
    /// Instruction/data TLB geometry (paper §2.1: 256 entries, 4-way).
    pub tlb: TlbConfig,
}

impl InOrderConfig {
    /// The prototype's core parameters.
    pub fn paper_default() -> Self {
        InOrderConfig {
            btb_entries: 1024,
            mispredict_penalty: 5,
            store_buffer: 8,
            store_buffer_mlp: 4,
            tlb: TlbConfig::paper_default(),
        }
    }
}

impl Default for InOrderConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy)]
struct SbEntry {
    line: LineAddr,
    req: ReqType,
    version: u64,
    /// Request id once issued to the memory system.
    issued: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    No,
    /// Waiting for a blocking ifetch/load fill.
    Mem {
        id: u64,
        since: u64,
    },
    /// Waiting for store-buffer space.
    SbFull {
        since: u64,
    },
}

/// The single-issue in-order core timing model.
#[derive(Debug)]
pub struct InOrderCore {
    cfg: InOrderConfig,
    cycle: u64,
    stats: CoreStats,
    btb: Btb,
    pending_op: Option<StreamOp>,
    last_ifetch_line: Option<LineAddr>,
    blocked: Blocked,
    sb: VecDeque<SbEntry>,
    sb_outstanding: usize,
    itlb: Tlb,
    dtlb: Tlb,
    next_id: u64,
    stream_done: bool,
}

impl InOrderCore {
    /// A fresh core at cycle 0.
    pub fn new(cfg: InOrderConfig) -> Self {
        InOrderCore {
            cfg,
            cycle: 0,
            stats: CoreStats::default(),
            btb: Btb::new(cfg.btb_entries),
            pending_op: None,
            last_ifetch_line: None,
            blocked: Blocked::No,
            sb: VecDeque::new(),
            sb_outstanding: 0,
            itlb: Tlb::new(cfg.tlb),
            dtlb: Tlb::new(cfg.tlb),
            next_id: 0,
            stream_done: false,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Issue unsent store-buffer entries, up to the configured number of
    /// concurrent transactions.
    fn pump_store_buffer(&mut self, reqs: &mut Vec<(u64, MemReq)>) {
        let cycle = self.cycle;
        for i in 0..self.sb.len() {
            if self.sb_outstanding >= self.cfg.store_buffer_mlp {
                return;
            }
            if self.sb[i].issued.is_some() {
                continue;
            }
            let id = self.next_id + 1;
            self.next_id = id;
            self.sb[i].issued = Some(id);
            self.sb_outstanding += 1;
            self.stats.sb_reqs += 1;
            reqs.push((
                cycle,
                MemReq {
                    id,
                    kind: CacheKind::Data,
                    req: self.sb[i].req,
                    line: self.sb[i].line,
                    store_version: Some(self.sb[i].version),
                },
            ));
        }
    }

    fn sb_holds(&self, line: LineAddr) -> bool {
        self.sb.iter().any(|e| e.line == line)
    }

    /// Shared detailed/functional execution loop. `WARM` compiles the
    /// timing model out: every retired instruction costs exactly one
    /// cycle, and mispredict / TLB-miss / idle charges vanish, while
    /// the architectural side effects (L1 accesses, TLB and BTB
    /// updates, store-buffer state, version allocation, miss issue)
    /// stay byte-for-byte the code of the detailed path.
    fn advance_impl<const WARM: bool>(
        &mut self,
        stream: &mut dyn InstrStream,
        ctx: &mut CoreCtx<'_>,
        budget: u64,
        reqs: &mut Vec<(u64, MemReq)>,
    ) -> CoreStatus {
        let mut left = budget;
        loop {
            if self.blocked != Blocked::No {
                return CoreStatus::Blocked;
            }
            self.pump_store_buffer(reqs);
            if left == 0 {
                return CoreStatus::Runnable;
            }
            // Open-loop gating: a parked stream yields between
            // transactions instead of fetching. The commit stamp lands
            // here, after every op of the transaction has executed.
            if self.pending_op.is_none() && !self.stream_done && stream.parked() {
                stream.mark_quiescent(self.cycle);
                return CoreStatus::Runnable;
            }
            let Some(op) = self.pending_op.take().or_else(|| {
                if self.stream_done {
                    None
                } else {
                    let n = stream.next_op();
                    if n.is_none() {
                        self.stream_done = true;
                    }
                    n
                }
            }) else {
                // Stream exhausted: drain the store buffer before Done.
                return if self.sb.is_empty() && self.sb_outstanding == 0 {
                    CoreStatus::Done
                } else {
                    CoreStatus::Blocked
                };
            };

            // Instruction fetch: one iL1 lookup per line transition.
            let iline = op.pc.line();
            if self.last_ifetch_line != Some(iline) {
                if !self.itlb.access(op.pc) && !WARM {
                    self.cycle += self.itlb.miss_penalty();
                    self.stats.tlb_miss_cycles += self.itlb.miss_penalty();
                }
                if ctx.l1i.access_read(iline) {
                    self.stats.l1_hits += 1;
                    self.last_ifetch_line = Some(iline);
                } else {
                    self.stats.l1i_misses += 1;
                    let id = self.fresh_id();
                    reqs.push((
                        self.cycle,
                        MemReq {
                            id,
                            kind: CacheKind::Instruction,
                            req: ReqType::Read,
                            line: iline,
                            store_version: None,
                        },
                    ));
                    self.blocked = Blocked::Mem {
                        id,
                        since: self.cycle,
                    };
                    self.pending_op = Some(op);
                    return CoreStatus::Blocked;
                }
            }

            match op.kind {
                OpKind::Alu { .. } => {
                    self.cycle += 1;
                }
                OpKind::Idle { cycles } => {
                    self.cycle += if WARM { 1 } else { cycles as u64 };
                }
                OpKind::Branch { taken, mispredict } => {
                    self.cycle += 1;
                    let mp =
                        mispredict.unwrap_or_else(|| self.btb.predict_and_update(op.pc, taken));
                    if mp && !WARM {
                        self.cycle += self.cfg.mispredict_penalty;
                        self.stats.branch_penalty_cycles += self.cfg.mispredict_penalty;
                    }
                }
                OpKind::Load { addr, .. } => {
                    let line = addr.line();
                    if !self.dtlb.access(addr) && !WARM {
                        self.cycle += self.dtlb.miss_penalty();
                        self.stats.tlb_miss_cycles += self.dtlb.miss_penalty();
                    }
                    if self.sb_holds(line) || ctx.l1d.access_read(line) {
                        // Store-buffer forwarding counts as a hit.
                        self.stats.l1_hits += 1;
                        self.cycle += 1;
                    } else {
                        self.stats.l1d_misses += 1;
                        let id = self.fresh_id();
                        reqs.push((
                            self.cycle,
                            MemReq {
                                id,
                                kind: CacheKind::Data,
                                req: ReqType::Read,
                                line,
                                store_version: None,
                            },
                        ));
                        self.blocked = Blocked::Mem {
                            id,
                            since: self.cycle,
                        };
                        self.pending_op = Some(op);
                        return CoreStatus::Blocked;
                    }
                }
                OpKind::Store { addr } | OpKind::WriteHint { addr } => {
                    let line = addr.line();
                    if !self.dtlb.access(addr) && !WARM {
                        self.cycle += self.dtlb.miss_penalty();
                        self.stats.tlb_miss_cycles += self.dtlb.miss_penalty();
                    }
                    let full_line = matches!(op.kind, OpKind::WriteHint { .. });
                    if self.sb_holds(line) {
                        // Coalesce with the in-flight entry.
                        self.cycle += 1;
                    } else if ctx.l1d.state(line).writable() {
                        *ctx.versions += ctx.version_stride;
                        let v = *ctx.versions;
                        let out = ctx.l1d.store(line, v);
                        debug_assert_eq!(out, piranha_cache::StoreOutcome::Hit);
                        self.stats.l1_hits += 1;
                        self.cycle += 1;
                    } else {
                        if self.sb.len() >= self.cfg.store_buffer {
                            // Store buffer full: stall until the head
                            // transaction completes.
                            self.blocked = Blocked::SbFull { since: self.cycle };
                            self.pending_op = Some(op);
                            return CoreStatus::Blocked;
                        }
                        let present = ctx.l1d.state(line).readable();
                        let req = if full_line {
                            ReqType::ReadExNoData
                        } else if present {
                            ReqType::Upgrade
                        } else {
                            ReqType::ReadEx
                        };
                        if !present {
                            self.stats.l1d_misses += 1;
                        }
                        *ctx.versions += ctx.version_stride;
                        let v = *ctx.versions;
                        self.sb.push_back(SbEntry {
                            line,
                            req,
                            version: v,
                            issued: None,
                        });
                        self.cycle += 1;
                        self.pump_store_buffer(reqs);
                    }
                }
            }
            self.stats.instrs += 1;
            left -= 1;
        }
    }
}

impl CoreModel for InOrderCore {
    fn advance(
        &mut self,
        stream: &mut dyn InstrStream,
        ctx: &mut CoreCtx<'_>,
        budget: u64,
        reqs: &mut Vec<(u64, MemReq)>,
    ) -> CoreStatus {
        self.advance_impl::<false>(stream, ctx, budget, reqs)
    }

    fn warm_advance(
        &mut self,
        stream: &mut dyn InstrStream,
        ctx: &mut CoreCtx<'_>,
        budget: u64,
        reqs: &mut Vec<(u64, MemReq)>,
    ) -> CoreStatus {
        self.advance_impl::<true>(stream, ctx, budget, reqs)
    }

    fn fill(&mut self, id: u64, at_cycle: u64, source: FillSource) {
        if let Blocked::Mem { id: bid, since } = self.blocked {
            if bid == id {
                let stall = at_cycle.saturating_sub(since);
                self.stats.record_fill(source, stall);
                self.cycle = self.cycle.max(at_cycle);
                self.blocked = Blocked::No;
                return;
            }
        }
        if let Some(pos) = self.sb.iter().position(|e| e.issued == Some(id)) {
            self.sb_outstanding -= 1;
            self.sb.remove(pos);
            // Store misses stall the CPU only through buffer pressure.
            self.stats.record_fill(source, 0);
            if let Blocked::SbFull { since } = self.blocked {
                let stall = at_cycle.saturating_sub(since);
                self.stats.sb_full_cycles += stall;
                // Attribute the visible stall like a data miss.
                self.stats.stall_cycles[match source {
                    FillSource::L2Hit => 0,
                    FillSource::L2Fwd => 1,
                    FillSource::LocalMem => 2,
                    FillSource::RemoteMem => 3,
                    FillSource::RemoteDirty => 4,
                }] += stall;
                self.cycle = self.cycle.max(at_cycle);
                self.blocked = Blocked::No;
            }
            return;
        }
        panic!("fill for unknown request id {id}");
    }

    fn now_cycle(&self) -> u64 {
        self.cycle
    }

    fn align_cycle(&mut self, cycle: u64) {
        self.cycle = self.cycle.max(cycle);
    }

    fn stats(&self) -> &CoreStats {
        &self.stats
    }

    fn tlb_misses(&self) -> u64 {
        self.itlb.misses() + self.dtlb.misses()
    }

    fn tlb_residency(&self) -> (Vec<u64>, Vec<u64>) {
        (self.itlb.resident_pages(), self.dtlb.resident_pages())
    }

    fn has_outstanding(&self) -> bool {
        self.sb_outstanding > 0 || matches!(self.blocked, Blocked::Mem { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_cache::{L1Cache, L1Config, Mesi};

    /// Paper config with a free TLB so cycle counts stay exact.
    fn test_cfg() -> InOrderConfig {
        InOrderConfig {
            tlb: TlbConfig {
                miss_penalty: 0,
                ..TlbConfig::paper_default()
            },
            ..InOrderConfig::paper_default()
        }
    }

    fn ctx<'a>(l1i: &'a mut L1Cache, l1d: &'a mut L1Cache, v: &'a mut u64) -> CoreCtx<'a> {
        CoreCtx {
            l1i,
            l1d,
            versions: v,
            version_stride: 1,
        }
    }

    fn alu(pc: u64) -> StreamOp {
        StreamOp {
            pc: Addr(pc),
            kind: OpKind::Alu {
                mul: false,
                dep1: 0,
                dep2: 0,
            },
        }
    }

    fn ops_stream(ops: Vec<StreamOp>) -> impl InstrStream {
        let mut it = ops.into_iter();
        move || it.next()
    }

    /// Warm caches: single-cycle instructions.
    #[test]
    fn one_cycle_per_warm_instruction() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let mut s = ops_stream((0..10).map(|i| alu(i * 4)).collect());
        let mut reqs = Vec::new();
        let st = core.advance(
            &mut s,
            &mut ctx(&mut l1i, &mut l1d, &mut v),
            1000,
            &mut reqs,
        );
        assert_eq!(st, CoreStatus::Done);
        assert_eq!(core.now_cycle(), 10);
        assert_eq!(core.stats().instrs, 10);
        assert!(reqs.is_empty());
    }

    #[test]
    fn ifetch_miss_blocks_and_fill_resumes() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        let mut s = ops_stream(vec![alu(0)]);
        let mut reqs = Vec::new();
        let st = core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].1.kind, CacheKind::Instruction);
        // The bank installs the line, then the fill unblocks the core.
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        core.fill(reqs[0].1.id, 8, FillSource::L2Hit);
        assert_eq!(core.stats().stall_cycles[0], 8);
        let st = core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(st, CoreStatus::Done);
        assert_eq!(core.now_cycle(), 9, "8 stall + 1 execute");
    }

    #[test]
    fn load_miss_attribution() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let mut s = ops_stream(vec![StreamOp {
            pc: Addr(0),
            kind: OpKind::Load {
                addr: Addr(0x1000),
                dep_addr: 0,
            },
        }]);
        let mut reqs = Vec::new();
        assert_eq!(
            core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs),
            CoreStatus::Blocked
        );
        assert_eq!(reqs[0].1.req, ReqType::Read);
        l1d.fill(Addr(0x1000).line(), Mesi::Exclusive, 0);
        core.fill(reqs[0].1.id, 40, FillSource::LocalMem);
        assert_eq!(core.stats().l2_miss_stall(), 40);
        assert_eq!(
            core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs),
            CoreStatus::Done
        );
        assert_eq!(core.stats().fills[2], 1);
    }

    #[test]
    fn store_hits_commit_with_fresh_versions() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 10;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        l1d.fill(Addr(0x40).line(), Mesi::Exclusive, 3);
        let mut s = ops_stream(vec![StreamOp {
            pc: Addr(0),
            kind: OpKind::Store { addr: Addr(0x40) },
        }]);
        let mut reqs = Vec::new();
        assert_eq!(
            core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs),
            CoreStatus::Done
        );
        assert_eq!(v, 11, "version allocated");
        assert_eq!(l1d.state(Addr(0x40).line()), Mesi::Modified);
        assert_eq!(l1d.version(Addr(0x40).line()), Some(11));
        assert!(reqs.is_empty());
    }

    #[test]
    fn store_miss_goes_through_store_buffer_without_blocking() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let ops = vec![
            StreamOp {
                pc: Addr(0),
                kind: OpKind::Store { addr: Addr(0x80) },
            },
            alu(0),
            alu(0),
        ];
        let mut s = ops_stream(ops);
        let mut reqs = Vec::new();
        // The CPU retires the store into the buffer and keeps going.
        let st = core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked, "stream done but store outstanding");
        assert_eq!(core.stats().instrs, 3, "ALUs executed past the store miss");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].1.req, ReqType::ReadEx);
        assert_eq!(reqs[0].1.store_version, Some(1));
        // Bank grants; buffer drains; stream completes.
        core.fill(reqs[0].1.id, 50, FillSource::LocalMem);
        assert_eq!(
            core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs),
            CoreStatus::Done
        );
    }

    #[test]
    fn upgrade_used_when_line_shared() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        l1d.fill(Addr(0x40).line(), Mesi::Shared, 0);
        let mut s = ops_stream(vec![StreamOp {
            pc: Addr(0),
            kind: OpKind::Store { addr: Addr(0x40) },
        }]);
        let mut reqs = Vec::new();
        core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(reqs[0].1.req, ReqType::Upgrade);
    }

    #[test]
    fn write_hint_requests_exclusive_without_data() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let mut s = ops_stream(vec![StreamOp {
            pc: Addr(0),
            kind: OpKind::WriteHint { addr: Addr(0x80) },
        }]);
        let mut reqs = Vec::new();
        core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(reqs[0].1.req, ReqType::ReadExNoData);
    }

    #[test]
    fn full_store_buffer_stalls() {
        let cfg = InOrderConfig {
            store_buffer: 2,
            ..test_cfg()
        };
        let mut core = InOrderCore::new(cfg);
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let ops: Vec<StreamOp> = (0..3)
            .map(|i| StreamOp {
                pc: Addr(0),
                kind: OpKind::Store {
                    addr: Addr(0x1000 + i * 64),
                },
            })
            .collect();
        let mut s = ops_stream(ops);
        let mut reqs = Vec::new();
        let st = core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked);
        assert_eq!(core.stats().instrs, 2, "third store stalls on full buffer");
        // Head completes; the stalled store proceeds.
        core.fill(reqs[0].1.id, 30, FillSource::L2Hit);
        assert!(core.stats().sb_full_cycles > 0);
        let st = core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked, "remaining buffer entries draining");
        assert_eq!(core.stats().instrs, 3);
    }

    #[test]
    fn branch_mispredict_penalty_applied() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let ops = vec![
            StreamOp {
                pc: Addr(0),
                kind: OpKind::Branch {
                    taken: true,
                    mispredict: Some(true),
                },
            },
            StreamOp {
                pc: Addr(4),
                kind: OpKind::Branch {
                    taken: true,
                    mispredict: Some(false),
                },
            },
        ];
        let mut s = ops_stream(ops);
        let mut reqs = Vec::new();
        core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(core.now_cycle(), 2 + 5);
        assert_eq!(core.stats().branch_penalty_cycles, 5);
    }

    #[test]
    fn store_buffer_forwarding_counts_as_hit() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let ops = vec![
            StreamOp {
                pc: Addr(0),
                kind: OpKind::Store { addr: Addr(0x2000) },
            },
            StreamOp {
                pc: Addr(4),
                kind: OpKind::Load {
                    addr: Addr(0x2008),
                    dep_addr: 0,
                },
            },
        ];
        let mut s = ops_stream(ops);
        let mut reqs = Vec::new();
        let st = core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked, "draining store buffer");
        assert_eq!(
            core.stats().instrs,
            2,
            "load forwarded from the store buffer"
        );
        assert_eq!(core.stats().l1d_misses, 1, "only the store missed");
    }

    #[test]
    fn idle_advances_time_without_memory() {
        let mut core = InOrderCore::new(test_cfg());
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        let mut s = ops_stream(vec![StreamOp {
            pc: Addr(0),
            kind: OpKind::Idle { cycles: 100 },
        }]);
        let mut reqs = Vec::new();
        core.advance(&mut s, &mut ctx(&mut l1i, &mut l1d, &mut v), 10, &mut reqs);
        assert_eq!(core.now_cycle(), 100);
    }
}
