//! The CPU-cluster component adapter.
//!
//! Wraps one node's cores and instruction streams behind the kernel's
//! [`Component`] interface: the wiring delivers [`CpuEvent`]s (step,
//! fill) and receives [`CpuAction`]s (memory requests, reschedules,
//! completion) through the output port, in exactly the order the cores
//! produce them. Clock-domain conversion, ICS transfer charging, and L2
//! routing stay outside — the cluster speaks only core cycles.

use piranha_cache::L1Set;
use piranha_kernel::{Component, Port};
use piranha_types::{CpuId, FillSource, SimTime};

use crate::{CoreCtx, CoreModel, CoreStatus, InstrStream, MemReq};

/// An event delivered to one CPU of the cluster.
#[derive(Debug, Clone)]
pub enum CpuEvent {
    /// Let the CPU execute up to its quantum.
    Step {
        /// Node-local CPU index.
        cpu: usize,
    },
    /// Like `Step`, but through the core's functional-warming path
    /// ([`CoreModel::warm_advance`]): architectural state evolves,
    /// timing is fixed at one cycle per instruction. Only the sampled
    /// execution driver sends this.
    WarmStep {
        /// Node-local CPU index.
        cpu: usize,
    },
    /// Deliver the completion of outstanding request `id`.
    Fill {
        /// Node-local CPU index.
        cpu: usize,
        /// The core-local request id being completed.
        id: u64,
        /// Where the data came from (for the stall breakdown).
        source: FillSource,
    },
}

/// An action emitted by the cluster. Cycle-domain timestamps
/// (`at_cycle`) are converted to simulation time by the wiring, which
/// clamps them to be no earlier than the triggering event.
#[derive(Debug, Clone)]
pub enum CpuAction {
    /// A memory request left the core at `at_cycle`, bound for the L2.
    Issue {
        /// Issuing CPU.
        cpu: usize,
        /// Core-local cycle at which the request left the core.
        at_cycle: u64,
        /// The request itself.
        req: MemReq,
    },
    /// Reschedule the CPU's next step at `at_cycle` (0 = immediately).
    Wake {
        /// CPU to reschedule.
        cpu: usize,
        /// Core-local cycle of the next step.
        at_cycle: u64,
    },
    /// The CPU's stream ended; it retires no further instructions.
    Finished {
        /// The finished CPU.
        cpu: usize,
    },
}

/// Per-event context the cluster borrows from its node: the cache
/// complex's L1s (the cores execute against them directly — Piranha's
/// L1s are tightly coupled to the core, §2.2), the global store-version
/// allocator, and this CPU's system-controller enable bit.
pub struct CpuCtx<'a> {
    /// The node's L1 caches, owned by the cache complex.
    pub l1s: &'a mut L1Set,
    /// Global store-version allocator.
    pub versions: &'a mut u64,
    /// Per-store increment for the allocator (see
    /// [`CoreCtx::version_stride`](crate::CoreCtx)).
    pub version_stride: u64,
    /// Whether the system controller has this CPU enabled.
    pub enabled: bool,
    /// For [`CpuEvent::Fill`]: the core-local cycle corresponding to
    /// the event's simulation time.
    pub fill_cycle: u64,
}

/// One node's CPUs: the cores, their instruction streams, and the
/// done-tracking the run loop needs.
pub struct CpuCluster {
    cores: Vec<Box<dyn CoreModel>>,
    streams: Vec<Box<dyn InstrStream>>,
    done: Vec<bool>,
    quantum: u64,
    /// Reusable request buffer for `advance`.
    req_buf: Vec<(u64, MemReq)>,
}

impl std::fmt::Debug for CpuCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuCluster")
            .field("cpus", &self.cores.len())
            .finish_non_exhaustive()
    }
}

impl CpuCluster {
    /// Assemble a cluster from pre-built cores and one stream per core.
    ///
    /// # Panics
    ///
    /// Panics unless `cores` and `streams` have equal length.
    pub fn new(
        cores: Vec<Box<dyn CoreModel>>,
        streams: Vec<Box<dyn InstrStream>>,
        quantum: u64,
    ) -> Self {
        assert_eq!(cores.len(), streams.len(), "one stream per core");
        let done = vec![false; cores.len()];
        CpuCluster {
            cores,
            streams,
            done,
            quantum,
            req_buf: Vec::new(),
        }
    }

    /// Number of CPUs in the cluster.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the cluster has no CPUs.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The core model of `cpu` (statistics, local cycle).
    pub fn core(&self, cpu: usize) -> &dyn CoreModel {
        self.cores[cpu].as_ref()
    }

    /// Mutable access to the core model of `cpu` (traffic dispatch
    /// realigns a parked core's local clock at admission).
    pub fn core_mut(&mut self, cpu: usize) -> &mut dyn CoreModel {
        self.cores[cpu].as_mut()
    }

    /// The instruction stream of `cpu`.
    pub fn stream(&self, cpu: usize) -> &dyn InstrStream {
        self.streams[cpu].as_ref()
    }

    /// Mutable access to the instruction stream of `cpu` (traffic
    /// dispatch drains completions and admits transactions).
    pub fn stream_mut(&mut self, cpu: usize) -> &mut dyn InstrStream {
        self.streams[cpu].as_mut()
    }

    /// Iterate the cores in index order.
    pub fn cores(&self) -> impl Iterator<Item = &dyn CoreModel> {
        self.cores.iter().map(|c| c.as_ref())
    }

    /// Iterate the instruction streams in index order.
    pub fn streams(&self) -> impl Iterator<Item = &dyn InstrStream> {
        self.streams.iter().map(|s| s.as_ref())
    }

    /// Whether `cpu`'s stream has ended.
    pub fn is_done(&self, cpu: usize) -> bool {
        self.done[cpu]
    }

    /// Total instructions retired by the cluster.
    pub fn instrs(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instrs).sum()
    }
}

impl Component for CpuCluster {
    type Event = CpuEvent;
    type Action = CpuAction;
    type Ctx<'a> = CpuCtx<'a>;

    fn handle(
        &mut self,
        now: SimTime,
        event: CpuEvent,
        ctx: CpuCtx<'_>,
        out: &mut Port<CpuAction>,
    ) {
        let warm = matches!(event, CpuEvent::WarmStep { .. });
        match event {
            CpuEvent::Step { cpu } | CpuEvent::WarmStep { cpu } => {
                if self.done[cpu] || !ctx.enabled {
                    return;
                }
                let mut reqs = std::mem::take(&mut self.req_buf);
                debug_assert!(reqs.is_empty());
                let (l1i, l1d) = ctx.l1s.pair_mut(CpuId(cpu as u8));
                let mut core_ctx = CoreCtx {
                    l1i,
                    l1d,
                    versions: ctx.versions,
                    version_stride: ctx.version_stride,
                };
                let status = if warm {
                    self.cores[cpu].warm_advance(
                        self.streams[cpu].as_mut(),
                        &mut core_ctx,
                        self.quantum,
                        &mut reqs,
                    )
                } else {
                    self.cores[cpu].advance(
                        self.streams[cpu].as_mut(),
                        &mut core_ctx,
                        self.quantum,
                        &mut reqs,
                    )
                };
                for (at_cycle, req) in reqs.drain(..) {
                    out.emit(now, CpuAction::Issue { cpu, at_cycle, req });
                }
                self.req_buf = reqs;
                match status {
                    CoreStatus::Runnable => out.emit(
                        now,
                        CpuAction::Wake {
                            cpu,
                            at_cycle: self.cores[cpu].now_cycle(),
                        },
                    ),
                    CoreStatus::Blocked => {}
                    CoreStatus::Done => {
                        self.done[cpu] = true;
                        out.emit(now, CpuAction::Finished { cpu });
                    }
                }
            }
            CpuEvent::Fill { cpu, id, source } => {
                self.cores[cpu].fill(id, ctx.fill_cycle, source);
                out.emit(now, CpuAction::Wake { cpu, at_cycle: 0 });
            }
        }
    }
}
