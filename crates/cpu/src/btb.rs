//! A branch target buffer (paper §2.1: "the processor core includes ...
//! a branch target buffer, pre-compute logic for branch conditions, and
//! a fully bypassed datapath").
//!
//! The model predicts taken/not-taken with a 2-bit counter per entry,
//! direct-mapped on the branch PC. Synthetic workloads bypass it by
//! supplying their own misprediction outcomes; ISA-driven runs use it.

use piranha_types::Addr;

/// A direct-mapped branch target buffer with 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use piranha_cpu::Btb;
/// use piranha_types::Addr;
///
/// let mut btb = Btb::new(1024);
/// let pc = Addr(0x40);
/// // Cold prediction is not-taken; a taken branch therefore mispredicts.
/// assert!(btb.predict_and_update(pc, true));
/// // After training, the same branch predicts correctly.
/// btb.predict_and_update(pc, true);
/// assert!(!btb.predict_and_update(pc, true));
/// ```
#[derive(Debug)]
pub struct Btb {
    counters: Vec<u8>, // 2-bit saturating: 0,1 = not taken; 2,3 = taken
    hits: u64,
    lookups: u64,
}

impl Btb {
    /// A BTB with `entries` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "BTB needs at least one entry");
        let n = entries.next_power_of_two();
        Btb {
            counters: vec![1; n],
            hits: 0,
            lookups: 0,
        }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.0 >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predict the branch at `pc`, update with the actual outcome, and
    /// return whether the prediction was *wrong*.
    pub fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        self.lookups += 1;
        let i = self.index(pc);
        let predicted_taken = self.counters[i] >= 2;
        let mispredict = predicted_taken != taken;
        if !mispredict {
            self.hits += 1;
        }
        self.counters[i] = match (self.counters[i], taken) {
            (c, true) => (c + 1).min(3),
            (c, false) => c.saturating_sub(1),
        };
        mispredict
    }

    /// Prediction accuracy so far (1.0 if no lookups).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Number of predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_on_biased_branch() {
        let mut btb = Btb::new(16);
        let pc = Addr(0x100);
        let misses: u64 = (0..100)
            .map(|_| u64::from(btb.predict_and_update(pc, true)))
            .sum();
        assert!(
            misses <= 2,
            "biased branch should train quickly, missed {misses}"
        );
        assert!(btb.accuracy() > 0.95);
    }

    #[test]
    fn alternating_branch_mispredicts_often() {
        let mut btb = Btb::new(16);
        let pc = Addr(0x100);
        let misses: u64 = (0..100)
            .map(|i| u64::from(btb.predict_and_update(pc, i % 2 == 0)))
            .sum();
        assert!(
            misses >= 40,
            "alternating pattern defeats 2-bit counters: {misses}"
        );
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut btb = Btb::new(1024);
        btb.predict_and_update(Addr(0x0), true);
        btb.predict_and_update(Addr(0x0), true);
        // A different, non-aliasing PC starts cold (weakly not-taken).
        assert!(
            btb.predict_and_update(Addr(0x4), true),
            "cold entry mispredicts taken"
        );
        assert!(
            !btb.predict_and_update(Addr(0x0), true),
            "trained entry unaffected"
        );
    }

    #[test]
    fn lookups_counted() {
        let mut btb = Btb::new(4);
        btb.predict_and_update(Addr(0), false);
        btb.predict_and_update(Addr(4), false);
        assert_eq!(btb.lookups(), 2);
    }
}
