//! Per-core statistics: the raw material of Figures 5 and 6.

use piranha_types::FillSource;

/// Indexable stall categories.
pub const STALL_KINDS: usize = 5;

fn stall_index(s: FillSource) -> usize {
    match s {
        FillSource::L2Hit => 0,
        FillSource::L2Fwd => 1,
        FillSource::LocalMem => 2,
        FillSource::RemoteMem => 3,
        FillSource::RemoteDirty => 4,
    }
}

/// Counters accumulated by a core model.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instrs: u64,
    /// Memory-stall cycles, by where the miss was serviced.
    pub stall_cycles: [u64; STALL_KINDS],
    /// Cycles lost to branch mispredictions.
    pub branch_penalty_cycles: u64,
    /// Cycles the core sat on a full store buffer.
    pub sb_full_cycles: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache misses (loads).
    pub l1d_misses: u64,
    /// Store-buffer transactions issued (upgrades + write misses).
    pub sb_reqs: u64,
    /// L1 load/ifetch hits.
    pub l1_hits: u64,
    /// Cycles spent in TLB miss handling (counted as CPU busy, like the
    /// Alpha's PALcode fills). TLB miss *counts* live in the TLBs
    /// themselves (`piranha_cache::Tlb::misses`, surfaced through
    /// `CoreModel::tlb_misses`) — one source of truth.
    pub tlb_miss_cycles: u64,
    /// Fill counts by service point (the Figure 6(b) breakdown).
    pub fills: [u64; STALL_KINDS],
}

impl CoreStats {
    /// Record a fill and (optionally) the blocking stall it caused.
    pub fn record_fill(&mut self, source: FillSource, stall_cycles: u64) {
        let i = stall_index(source);
        self.fills[i] += 1;
        self.stall_cycles[i] += stall_cycles;
    }

    /// Total memory stall cycles.
    pub fn total_stall(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Stall cycles attributed to on-chip L2 service ("L2 hit stall" in
    /// Figure 5 — includes forwarded requests served by another L1).
    pub fn l2_hit_stall(&self) -> u64 {
        self.stall_cycles[0] + self.stall_cycles[1]
    }

    /// Stall cycles attributed to misses past the L2 ("L2 miss stall").
    pub fn l2_miss_stall(&self) -> u64 {
        self.stall_cycles[2] + self.stall_cycles[3] + self.stall_cycles[4]
    }

    /// Fill count serviced by the L2 itself.
    pub fn fills_l2_hit(&self) -> u64 {
        self.fills[0]
    }

    /// Fill count forwarded to another on-chip L1.
    pub fn fills_l2_fwd(&self) -> u64 {
        self.fills[1]
    }

    /// Fill count that went to (local or remote) memory.
    pub fn fills_l2_miss(&self) -> u64 {
        self.fills[2] + self.fills[3] + self.fills[4]
    }

    /// The difference `self - earlier` (for measurement windows after a
    /// warm-up phase).
    pub fn diff(&self, earlier: &CoreStats) -> CoreStats {
        let mut d = CoreStats {
            instrs: self.instrs - earlier.instrs,
            ..Default::default()
        };
        for i in 0..STALL_KINDS {
            d.stall_cycles[i] = self.stall_cycles[i] - earlier.stall_cycles[i];
            d.fills[i] = self.fills[i] - earlier.fills[i];
        }
        d.branch_penalty_cycles = self.branch_penalty_cycles - earlier.branch_penalty_cycles;
        d.sb_full_cycles = self.sb_full_cycles - earlier.sb_full_cycles;
        d.l1i_misses = self.l1i_misses - earlier.l1i_misses;
        d.l1d_misses = self.l1d_misses - earlier.l1d_misses;
        d.sb_reqs = self.sb_reqs - earlier.sb_reqs;
        d.l1_hits = self.l1_hits - earlier.l1_hits;
        d.tlb_miss_cycles = self.tlb_miss_cycles - earlier.tlb_miss_cycles;
        d
    }

    /// Merge another core's statistics into this one (for chip totals).
    pub fn merge(&mut self, other: &CoreStats) {
        self.instrs += other.instrs;
        for i in 0..STALL_KINDS {
            self.stall_cycles[i] += other.stall_cycles[i];
            self.fills[i] += other.fills[i];
        }
        self.branch_penalty_cycles += other.branch_penalty_cycles;
        self.sb_full_cycles += other.sb_full_cycles;
        self.l1i_misses += other.l1i_misses;
        self.l1d_misses += other.l1d_misses;
        self.sb_reqs += other.sb_reqs;
        self.l1_hits += other.l1_hits;
        self.tlb_miss_cycles += other.tlb_miss_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_recording_buckets_correctly() {
        let mut s = CoreStats::default();
        s.record_fill(FillSource::L2Hit, 8);
        s.record_fill(FillSource::L2Fwd, 12);
        s.record_fill(FillSource::LocalMem, 40);
        s.record_fill(FillSource::RemoteDirty, 90);
        assert_eq!(s.l2_hit_stall(), 20);
        assert_eq!(s.l2_miss_stall(), 130);
        assert_eq!(s.total_stall(), 150);
        assert_eq!(s.fills_l2_hit(), 1);
        assert_eq!(s.fills_l2_fwd(), 1);
        assert_eq!(s.fills_l2_miss(), 2);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = CoreStats {
            instrs: 10,
            ..Default::default()
        };
        a.record_fill(FillSource::L2Hit, 5);
        let mut b = CoreStats {
            instrs: 20,
            branch_penalty_cycles: 7,
            ..Default::default()
        };
        b.record_fill(FillSource::L2Hit, 3);
        a.merge(&b);
        assert_eq!(a.instrs, 30);
        assert_eq!(a.stall_cycles[0], 8);
        assert_eq!(a.fills[0], 2);
        assert_eq!(a.branch_penalty_cycles, 7);
    }
}
