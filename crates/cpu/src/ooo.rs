//! The aggressive out-of-order baseline core (paper Table 1: 1 GHz,
//! 4-issue, 64-entry instruction window — an Alpha 21364-class design).
//!
//! The model is a timestamp dataflow simulation: each instruction's issue
//! time is the maximum of its fetch availability and its producers'
//! completion times; completion adds the operation latency; retirement is
//! in-order at the issue width. Memory-level parallelism arises naturally
//! — multiple load misses issue as soon as their addresses are ready
//! (bounded by MSHRs) and overlap — while *address* dependencies on
//! in-flight misses serialize (pointer chasing), which is exactly the
//! distinction that makes OLTP gain little from out-of-order execution
//! and DSS gain a lot (paper §4, citing Ranganathan et al.).

use std::collections::VecDeque;

use piranha_types::{CacheKind, FillSource, LineAddr, ReqType};

use piranha_cache::{Tlb, TlbConfig};

use crate::btb::Btb;
use crate::stats::CoreStats;
use crate::stream::{InstrStream, OpKind, StreamOp};
use crate::{CoreCtx, CoreModel, CoreStatus, MemReq};

/// Configuration of the out-of-order core.
#[derive(Debug, Clone, Copy)]
pub struct OooConfig {
    /// Issue/retire width (4 in Table 1).
    pub width: u64,
    /// Instruction window size (64 in Table 1).
    pub window: usize,
    /// Maximum outstanding load misses (MSHRs).
    pub mshrs: usize,
    /// Maximum outstanding store transactions.
    pub store_buffer: usize,
    /// Branch mispredict redirect penalty in cycles.
    pub mispredict_penalty: u64,
    /// Load-to-use latency on an L1 hit.
    pub l1_load_latency: u64,
    /// BTB entries.
    pub btb_entries: usize,
    /// Instruction/data TLB geometry.
    pub tlb: TlbConfig,
}

impl OooConfig {
    /// The paper's OOO baseline.
    pub fn paper_default() -> Self {
        OooConfig {
            width: 4,
            window: 64,
            mshrs: 8,
            store_buffer: 8,
            mispredict_penalty: 7,
            l1_load_latency: 2,
            btb_entries: 4096,
            tlb: TlbConfig::paper_default(),
        }
    }
}

impl Default for OooConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Completion record for dependency lookups: quarter-cycle resolution.
#[derive(Debug, Clone, Copy)]
struct Produced {
    /// Completion time in quarter cycles (optimistic for pending loads).
    done_q: u64,
    /// If the producer is an in-flight miss, its request id.
    pending: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct WindowSlot {
    /// Known completion (quarter cycles) or `None` while a miss is
    /// outstanding.
    done_q: Option<u64>,
    /// Outstanding request id, if any.
    pending: Option<u64>,
    source_hint: Option<FillSource>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stalled {
    No,
    /// Window full with a pending miss at the head.
    WindowHead,
    /// Fetch blocked on an iL1 miss.
    IFetch {
        id: u64,
    },
    /// The next op's address depends on an in-flight miss.
    AddrDep {
        id: u64,
    },
    /// No MSHR (or store-buffer slot) free for the next memory op.
    NoMshr,
}

/// The out-of-order core timing model.
#[derive(Debug)]
pub struct OooCore {
    cfg: OooConfig,
    stats: CoreStats,
    btb: Btb,
    window: VecDeque<WindowSlot>,
    /// Completion history of the most recent instructions (deepest
    /// dependency distance honoured: 256).
    hist: VecDeque<Produced>,
    /// Next fetch opportunity, in quarter cycles.
    fetch_q: u64,
    /// Retirement frontier, in quarter cycles.
    retire_q: u64,
    pending_op: Option<StreamOp>,
    last_ifetch_line: Option<LineAddr>,
    stalled: Stalled,
    stalled_since_q: u64,
    loads_outstanding: usize,
    stores_outstanding: usize,
    /// Outstanding load-miss lines (MSHR coalescing: a second miss to a
    /// line already in flight shares its request).
    miss_lines: std::collections::HashMap<LineAddr, u64>,
    /// Outstanding store-transaction lines.
    store_lines: std::collections::HashMap<LineAddr, u64>,
    /// Store ids in flight (they occupy the store buffer, not MSHRs).
    store_ids: Vec<u64>,
    itlb: Tlb,
    dtlb: Tlb,
    next_id: u64,
    stream_done: bool,
}

impl OooCore {
    /// A fresh core at cycle 0.
    pub fn new(cfg: OooConfig) -> Self {
        OooCore {
            cfg,
            stats: CoreStats::default(),
            btb: Btb::new(cfg.btb_entries),
            window: VecDeque::with_capacity(cfg.window),
            hist: VecDeque::with_capacity(256),
            fetch_q: 0,
            retire_q: 0,
            pending_op: None,
            last_ifetch_line: None,
            stalled: Stalled::No,
            stalled_since_q: 0,
            loads_outstanding: 0,
            stores_outstanding: 0,
            miss_lines: std::collections::HashMap::new(),
            store_lines: std::collections::HashMap::new(),
            store_ids: Vec::new(),
            itlb: Tlb::new(cfg.tlb),
            dtlb: Tlb::new(cfg.tlb),
            next_id: 0,
            stream_done: false,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn push_hist(&mut self, p: Produced) {
        if self.hist.len() == 256 {
            self.hist.pop_front();
        }
        self.hist.push_back(p);
    }

    /// The producer `dist` instructions back (0 = no dependency).
    fn producer(&self, dist: u32) -> Option<Produced> {
        if dist == 0 {
            return None;
        }
        let len = self.hist.len();
        if (dist as usize) > len {
            return None;
        }
        Some(self.hist[len - dist as usize])
    }

    /// Retire every completed instruction at the window head.
    fn drain_retires(&mut self) {
        while let Some(head) = self.window.front() {
            let Some(done_q) = head.done_q else { break };
            // Width-limited in-order retirement: one slot per
            // 1/width cycle.
            self.retire_q = (self.retire_q + 4 / self.cfg.width).max(done_q);
            self.window.pop_front();
            self.stats.instrs += 1;
        }
    }

    fn window_full(&self) -> bool {
        self.window.len() >= self.cfg.window
    }
}

impl CoreModel for OooCore {
    fn advance(
        &mut self,
        stream: &mut dyn InstrStream,
        ctx: &mut CoreCtx<'_>,
        budget: u64,
        reqs: &mut Vec<(u64, MemReq)>,
    ) -> CoreStatus {
        let mut left = budget;
        loop {
            self.drain_retires();
            match self.stalled {
                Stalled::No => {}
                Stalled::WindowHead | Stalled::IFetch { .. } | Stalled::AddrDep { .. } => {
                    return CoreStatus::Blocked;
                }
                Stalled::NoMshr => {
                    // Re-check: a fill may have freed resources.
                    if self.loads_outstanding < self.cfg.mshrs
                        && self.stores_outstanding < self.cfg.store_buffer
                    {
                        self.stalled = Stalled::No;
                    } else {
                        return CoreStatus::Blocked;
                    }
                }
            }
            if self.window_full() {
                if self.window.front().is_some_and(|h| h.done_q.is_none()) {
                    self.stalled = Stalled::WindowHead;
                    self.stalled_since_q = self.retire_q;
                    return CoreStatus::Blocked;
                }
                continue; // retires will free space
            }
            if left == 0 {
                return CoreStatus::Runnable;
            }
            // Open-loop gating: a parked stream yields between
            // transactions. Stamp the commit only once every window
            // entry has completed, so in-flight misses of the ending
            // transaction count toward its latency.
            if self.pending_op.is_none() && !self.stream_done && stream.parked() {
                if self.window.iter().all(|s| s.done_q.is_some()) {
                    self.drain_retires();
                    stream.mark_quiescent(self.now_cycle());
                    return CoreStatus::Runnable;
                }
                if self.stalled == Stalled::No
                    && self.window.front().is_some_and(|h| h.done_q.is_none())
                {
                    self.stalled = Stalled::WindowHead;
                    self.stalled_since_q = self.retire_q;
                }
                return CoreStatus::Blocked;
            }
            let Some(op) = self.pending_op.take().or_else(|| {
                if self.stream_done {
                    None
                } else {
                    let n = stream.next_op();
                    if n.is_none() {
                        self.stream_done = true;
                    }
                    n
                }
            }) else {
                return if self.window.is_empty()
                    && self.loads_outstanding == 0
                    && self.stores_outstanding == 0
                {
                    CoreStatus::Done
                } else if self.window.iter().all(|s| s.done_q.is_some())
                    && self.stores_outstanding == 0
                {
                    self.drain_retires();
                    CoreStatus::Done
                } else {
                    // Nothing left to fetch: any pending head is now the
                    // visible stall.
                    if self.stalled == Stalled::No
                        && self.window.front().is_some_and(|h| h.done_q.is_none())
                    {
                        self.stalled = Stalled::WindowHead;
                        self.stalled_since_q = self.retire_q;
                    }
                    CoreStatus::Blocked
                };
            };

            // Front end: fetch, width-limited.
            let iline = op.pc.line();
            if self.last_ifetch_line != Some(iline) {
                if !self.itlb.access(op.pc) {
                    self.fetch_q += self.itlb.miss_penalty() * 4;
                    self.stats.tlb_miss_cycles += self.itlb.miss_penalty();
                }
                if ctx.l1i.access_read(iline) {
                    self.stats.l1_hits += 1;
                    self.last_ifetch_line = Some(iline);
                } else {
                    self.stats.l1i_misses += 1;
                    let id = self.fresh_id();
                    reqs.push((
                        self.fetch_q / 4,
                        MemReq {
                            id,
                            kind: CacheKind::Instruction,
                            req: ReqType::Read,
                            line: iline,
                            store_version: None,
                        },
                    ));
                    self.stalled = Stalled::IFetch { id };
                    self.stalled_since_q = self.fetch_q.max(self.retire_q);
                    self.pending_op = Some(op);
                    return CoreStatus::Blocked;
                }
            }
            let fetch_ready_q = self.fetch_q.max(
                self.retire_q
                    .saturating_sub((self.cfg.window as u64) * 4 / self.cfg.width),
            );
            self.fetch_q = fetch_ready_q + 4 / self.cfg.width;

            let mut slot = WindowSlot {
                done_q: None,
                pending: None,
                source_hint: None,
            };
            match op.kind {
                OpKind::Alu { mul, dep1, dep2 } => {
                    let d1 = self.producer(dep1).map_or(0, |p| p.done_q);
                    let d2 = self.producer(dep2).map_or(0, |p| p.done_q);
                    let issue = fetch_ready_q.max(d1).max(d2);
                    let lat_q = if mul { 8 } else { 4 };
                    slot.done_q = Some(issue + lat_q);
                    self.push_hist(Produced {
                        done_q: issue + lat_q,
                        pending: None,
                    });
                }
                OpKind::Idle { cycles } => {
                    let done = fetch_ready_q + cycles as u64 * 4;
                    slot.done_q = Some(done);
                    self.fetch_q = self.fetch_q.max(done);
                    self.push_hist(Produced {
                        done_q: done,
                        pending: None,
                    });
                }
                OpKind::Branch { taken, mispredict } => {
                    let mp =
                        mispredict.unwrap_or_else(|| self.btb.predict_and_update(op.pc, taken));
                    let done = fetch_ready_q + 4;
                    slot.done_q = Some(done);
                    if mp {
                        let pen = self.cfg.mispredict_penalty * 4;
                        self.fetch_q = self.fetch_q.max(done + pen);
                        self.stats.branch_penalty_cycles += self.cfg.mispredict_penalty;
                    }
                    self.push_hist(Produced {
                        done_q: done,
                        pending: None,
                    });
                }
                OpKind::Load { addr, dep_addr } => {
                    // Address dependencies on in-flight misses serialize.
                    if let Some(p) = self.producer(dep_addr) {
                        if let Some(pid) = p.pending {
                            self.stalled = Stalled::AddrDep { id: pid };
                            self.stalled_since_q = self.retire_q.max(fetch_ready_q);
                            self.pending_op = Some(op);
                            // Undo the fetch-slot consumption.
                            self.fetch_q = fetch_ready_q;
                            return CoreStatus::Blocked;
                        }
                    }
                    let mut addr_ready = self
                        .producer(dep_addr)
                        .map_or(0, |p| p.done_q)
                        .max(fetch_ready_q);
                    if !self.dtlb.access(addr) {
                        addr_ready += self.dtlb.miss_penalty() * 4;
                        self.stats.tlb_miss_cycles += self.dtlb.miss_penalty();
                    }
                    let line = addr.line();
                    if ctx.l1d.access_read(line) || self.store_lines.contains_key(&line) {
                        // L1 hit, or forwarding from an in-flight store.
                        self.stats.l1_hits += 1;
                        let done = addr_ready + self.cfg.l1_load_latency * 4;
                        slot.done_q = Some(done);
                        self.push_hist(Produced {
                            done_q: done,
                            pending: None,
                        });
                    } else if let Some(&id) = self.miss_lines.get(&line) {
                        // Secondary miss: coalesce onto the outstanding
                        // MSHR; the fill completes both.
                        slot.pending = Some(id);
                        self.push_hist(Produced {
                            done_q: addr_ready + self.cfg.l1_load_latency * 4,
                            pending: Some(id),
                        });
                    } else {
                        if self.loads_outstanding >= self.cfg.mshrs {
                            self.stalled = Stalled::NoMshr;
                            self.stalled_since_q = self.retire_q.max(fetch_ready_q);
                            self.pending_op = Some(op);
                            self.fetch_q = fetch_ready_q;
                            return CoreStatus::Blocked;
                        }
                        self.stats.l1d_misses += 1;
                        self.loads_outstanding += 1;
                        let id = self.fresh_id();
                        self.miss_lines.insert(line, id);
                        reqs.push((
                            addr_ready / 4,
                            MemReq {
                                id,
                                kind: CacheKind::Data,
                                req: ReqType::Read,
                                line,
                                store_version: None,
                            },
                        ));
                        slot.pending = Some(id);
                        // Dependents see an optimistic completion; the
                        // retire stage enforces the true fill time.
                        self.push_hist(Produced {
                            done_q: addr_ready + self.cfg.l1_load_latency * 4,
                            pending: Some(id),
                        });
                    }
                }
                OpKind::Store { addr } | OpKind::WriteHint { addr } => {
                    let line = addr.line();
                    let done = fetch_ready_q + 4;
                    slot.done_q = Some(done);
                    self.push_hist(Produced {
                        done_q: done,
                        pending: None,
                    });
                    let full_line = matches!(op.kind, OpKind::WriteHint { .. });
                    let writable = ctx.l1d.state(line).writable();
                    if writable {
                        *ctx.versions += ctx.version_stride;
                        let v = *ctx.versions;
                        let _ = ctx.l1d.store(line, v);
                        self.stats.l1_hits += 1;
                    } else if self.store_lines.contains_key(&line)
                        || self.miss_lines.contains_key(&line)
                    {
                        // Coalesce with the transaction already in
                        // flight for this line (write combining).
                    } else {
                        if self.stores_outstanding >= self.cfg.store_buffer {
                            self.stalled = Stalled::NoMshr;
                            self.stalled_since_q = self.retire_q.max(fetch_ready_q);
                            // The store itself already entered the
                            // window; subsequent ops wait.
                        }
                        let present = ctx.l1d.state(line).readable();
                        let req = if full_line {
                            ReqType::ReadExNoData
                        } else if present {
                            ReqType::Upgrade
                        } else {
                            ReqType::ReadEx
                        };
                        if !present {
                            self.stats.l1d_misses += 1;
                        }
                        *ctx.versions += ctx.version_stride;
                        let v = *ctx.versions;
                        let id = self.fresh_id();
                        self.stores_outstanding += 1;
                        self.store_lines.insert(line, id);
                        self.store_ids.push(id);
                        self.stats.sb_reqs += 1;
                        reqs.push((
                            fetch_ready_q / 4,
                            MemReq {
                                id,
                                kind: CacheKind::Data,
                                req,
                                line,
                                store_version: Some(v),
                            },
                        ));
                    }
                }
            }
            self.window.push_back(slot);
            left -= 1;
        }
    }

    fn fill(&mut self, id: u64, at_cycle: u64, source: FillSource) {
        let at_q = at_cycle * 4;
        if self.store_ids.contains(&id) {
            self.store_ids.retain(|&s| s != id);
            self.store_lines.retain(|_, v| *v != id);
            self.stores_outstanding -= 1;
            self.stats.record_fill(source, 0);
            if self.stalled == Stalled::NoMshr {
                self.stalled = Stalled::No;
            }
            return;
        }
        // A load fill: complete every (possibly coalesced) window slot
        // waiting on this request.
        let mut found = false;
        let head_pending = self.window.front().and_then(|h| h.pending);
        for s in self.window.iter_mut() {
            if s.pending == Some(id) {
                s.done_q = Some(at_q.max(s.done_q.unwrap_or(0)));
                s.pending = None;
                s.source_hint = Some(source);
                found = true;
            }
        }
        if found {
            self.loads_outstanding -= 1;
            self.miss_lines.retain(|_, v| *v != id);
        }
        // Update optimistic history entries so later dependents wait for
        // the real data.
        for p in self.hist.iter_mut() {
            if p.pending == Some(id) {
                p.done_q = p.done_q.max(at_q);
                p.pending = None;
            }
        }
        // Stall attribution: only a miss blocking the window head (or an
        // address dependence / fetch) costs visible time; overlapped
        // misses are the model's MLP.
        let visible = match self.stalled {
            Stalled::WindowHead if head_pending == Some(id) => {
                self.stalled = Stalled::No;
                at_q.saturating_sub(self.stalled_since_q)
            }
            Stalled::IFetch { id: sid } if sid == id => {
                self.stalled = Stalled::No;
                self.fetch_q = self.fetch_q.max(at_q);
                at_q.saturating_sub(self.stalled_since_q)
            }
            Stalled::AddrDep { id: sid } if sid == id => {
                self.stalled = Stalled::No;
                at_q.saturating_sub(self.stalled_since_q)
            }
            Stalled::NoMshr => {
                self.stalled = Stalled::No;
                0
            }
            _ => 0,
        };
        if found || visible > 0 {
            self.stats.record_fill(source, visible / 4);
        }
        self.retire_q = self.retire_q.max(self.stalled_since_q);
        self.drain_retires();
    }

    fn now_cycle(&self) -> u64 {
        (self.retire_q / 4).max(self.fetch_q / 4)
    }

    fn align_cycle(&mut self, cycle: u64) {
        let q = cycle * 4;
        self.fetch_q = self.fetch_q.max(q);
        self.retire_q = self.retire_q.max(q);
    }

    fn stats(&self) -> &CoreStats {
        &self.stats
    }

    fn tlb_misses(&self) -> u64 {
        self.itlb.misses() + self.dtlb.misses()
    }

    fn tlb_residency(&self) -> (Vec<u64>, Vec<u64>) {
        (self.itlb.resident_pages(), self.dtlb.resident_pages())
    }

    fn has_outstanding(&self) -> bool {
        self.loads_outstanding > 0 || self.stores_outstanding > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_cache::{L1Cache, L1Config, Mesi};
    use piranha_types::Addr;

    /// Paper config with a free TLB so cycle counts stay exact.
    fn test_cfg() -> OooConfig {
        OooConfig {
            tlb: TlbConfig {
                miss_penalty: 0,
                ..TlbConfig::paper_default()
            },
            ..OooConfig::paper_default()
        }
    }

    fn env() -> (L1Cache, L1Cache, u64) {
        let mut l1i = L1Cache::new(L1Config::paper_default());
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        (l1i, L1Cache::new(L1Config::paper_default()), 0)
    }

    fn alu_chain(n: usize, dep: u32) -> Vec<StreamOp> {
        (0..n)
            .map(|_| StreamOp {
                pc: Addr(0),
                kind: OpKind::Alu {
                    mul: false,
                    dep1: dep,
                    dep2: 0,
                },
            })
            .collect()
    }

    fn run_all(
        core: &mut OooCore,
        ops: Vec<StreamOp>,
        l1i: &mut L1Cache,
        l1d: &mut L1Cache,
        v: &mut u64,
    ) -> Vec<(u64, MemReq)> {
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i,
            l1d,
            versions: v,
            version_stride: 1,
        };
        core.advance(&mut s, &mut ctx, 1_000_000, &mut reqs);
        reqs
    }

    #[test]
    fn independent_alus_retire_at_width() {
        let (mut l1i, mut l1d, mut v) = env();
        let mut core = OooCore::new(test_cfg());
        run_all(&mut core, alu_chain(400, 0), &mut l1i, &mut l1d, &mut v);
        assert_eq!(core.stats().instrs, 400);
        let cycles = core.now_cycle();
        assert!(
            (100..=140).contains(&cycles),
            "400 independent ALUs at width 4 ≈ 100 cycles, got {cycles}"
        );
    }

    #[test]
    fn dependent_chain_serializes() {
        let (mut l1i, mut l1d, mut v) = env();
        let mut core = OooCore::new(test_cfg());
        run_all(&mut core, alu_chain(400, 1), &mut l1i, &mut l1d, &mut v);
        let cycles = core.now_cycle();
        assert!(
            cycles >= 395,
            "dependency chain is one per cycle, got {cycles}"
        );
    }

    #[test]
    fn independent_load_misses_overlap() {
        let (mut l1i, mut l1d, mut v) = env();
        let mut core = OooCore::new(test_cfg());
        let ops: Vec<StreamOp> = (0..4)
            .map(|i| StreamOp {
                pc: Addr(0),
                kind: OpKind::Load {
                    addr: Addr(0x1000 + i * 64),
                    dep_addr: 0,
                },
            })
            .collect();
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        let st = core.advance(&mut s, &mut ctx, 100, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked);
        assert_eq!(reqs.len(), 4, "all four misses issued back-to-back (MLP)");
        // All four fill at 80 cycles (overlapped): visible stall ≈ one
        // latency, not four.
        for (_, r) in &reqs {
            l1d.fill(r.line, Mesi::Exclusive, 0);
        }
        for (_, r) in &reqs {
            core.fill(r.id, 80, FillSource::LocalMem);
        }
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        assert_eq!(
            core.advance(&mut s, &mut ctx, 100, &mut reqs),
            CoreStatus::Done
        );
        let stall = core.stats().total_stall();
        assert!(
            stall <= 90,
            "overlapped misses cost ≈ one latency, got {stall}"
        );
    }

    #[test]
    fn address_dependent_loads_serialize() {
        let (mut l1i, mut l1d, mut v) = env();
        let mut core = OooCore::new(test_cfg());
        // load A; load B whose address depends on A (pointer chase).
        let ops = vec![
            StreamOp {
                pc: Addr(0),
                kind: OpKind::Load {
                    addr: Addr(0x1000),
                    dep_addr: 0,
                },
            },
            StreamOp {
                pc: Addr(0),
                kind: OpKind::Load {
                    addr: Addr(0x2000),
                    dep_addr: 1,
                },
            },
        ];
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        core.advance(&mut s, &mut ctx, 100, &mut reqs);
        assert_eq!(reqs.len(), 1, "second load must wait for the first's data");
        l1d.fill(Addr(0x1000).line(), Mesi::Exclusive, 0);
        core.fill(reqs[0].1.id, 80, FillSource::LocalMem);
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        core.advance(&mut s, &mut ctx, 100, &mut reqs);
        assert_eq!(reqs.len(), 2, "second load issues after the first fills");
        l1d.fill(Addr(0x2000).line(), Mesi::Exclusive, 0);
        core.fill(reqs[1].1.id, 160, FillSource::LocalMem);
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        assert_eq!(
            core.advance(&mut s, &mut ctx, 100, &mut reqs),
            CoreStatus::Done
        );
        assert!(core.stats().total_stall() >= 150, "both latencies visible");
    }

    #[test]
    fn stores_do_not_block_the_window() {
        let (mut l1i, mut l1d, mut v) = env();
        let mut core = OooCore::new(test_cfg());
        let mut ops = vec![StreamOp {
            pc: Addr(0),
            kind: OpKind::Store { addr: Addr(0x3000) },
        }];
        ops.extend(alu_chain(20, 0));
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        let st = core.advance(&mut s, &mut ctx, 100, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked, "store transaction outstanding");
        assert_eq!(core.stats().instrs, 21, "ALUs retired past the store miss");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].1.req, ReqType::ReadEx);
    }

    #[test]
    fn mshr_limit_bounds_outstanding_loads() {
        let (mut l1i, mut l1d, mut v) = env();
        let cfg = OooConfig {
            mshrs: 2,
            ..test_cfg()
        };
        let mut core = OooCore::new(cfg);
        let ops: Vec<StreamOp> = (0..3)
            .map(|i| StreamOp {
                pc: Addr(0),
                kind: OpKind::Load {
                    addr: Addr(0x1000 + i * 64),
                    dep_addr: 0,
                },
            })
            .collect();
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        core.advance(&mut s, &mut ctx, 100, &mut reqs);
        assert_eq!(reqs.len(), 2, "third load waits for an MSHR");
    }

    #[test]
    fn ifetch_miss_blocks_frontend() {
        let mut l1i = L1Cache::new(L1Config::paper_default());
        let mut l1d = L1Cache::new(L1Config::paper_default());
        let mut v = 0;
        let mut core = OooCore::new(test_cfg());
        let ops = alu_chain(1, 0);
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        let st = core.advance(&mut s, &mut ctx, 100, &mut reqs);
        assert_eq!(st, CoreStatus::Blocked);
        assert_eq!(reqs[0].1.kind, CacheKind::Instruction);
        l1i.fill(Addr(0).line(), Mesi::Shared, 0);
        core.fill(reqs[0].1.id, 16, FillSource::L2Hit);
        assert_eq!(core.stats().l2_hit_stall(), 16);
        let mut ctx = CoreCtx {
            l1i: &mut l1i,
            l1d: &mut l1d,
            versions: &mut v,
            version_stride: 1,
        };
        assert_eq!(
            core.advance(&mut s, &mut ctx, 100, &mut reqs),
            CoreStatus::Done
        );
    }

    #[test]
    fn wide_issue_beats_single_issue_on_ilp() {
        // Same independent-ALU work on both cores: OOO ≈ 4x faster.
        let (mut l1i, mut l1d, mut v) = env();
        let mut ooo = OooCore::new(test_cfg());
        run_all(&mut ooo, alu_chain(1000, 0), &mut l1i, &mut l1d, &mut v);
        let ooo_cycles = ooo.now_cycle();

        let mut l1i2 = L1Cache::new(L1Config::paper_default());
        l1i2.fill(Addr(0).line(), Mesi::Shared, 0);
        let mut l1d2 = L1Cache::new(L1Config::paper_default());
        let mut v2 = 0;
        let mut ino = crate::InOrderCore::new(crate::InOrderConfig::paper_default());
        let ops = alu_chain(1000, 0);
        let mut it = ops.into_iter();
        let mut s = move || it.next();
        let mut reqs = Vec::new();
        let mut ctx = CoreCtx {
            l1i: &mut l1i2,
            l1d: &mut l1d2,
            versions: &mut v2,
            version_stride: 1,
        };
        ino.advance(&mut s, &mut ctx, 1_000_000, &mut reqs);
        let ino_cycles = ino.now_cycle();
        assert!(
            ooo_cycles * 3 < ino_cycles,
            "OOO ({ooo_cycles}) should be ≈4x faster than in-order ({ino_cycles})"
        );
    }
}
