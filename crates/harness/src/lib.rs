//! Parallel, memoizing experiment harness.
//!
//! The paper's evaluation (§4) needs ~20 independent `Machine`
//! simulations, and several figures share baselines (OOO, P1, P8 appear
//! in four figures each). Simulations of *different* configurations are
//! embarrassingly parallel — each `Machine` is a self-contained
//! deterministic event simulation — so this crate:
//!
//! 1. collects the `(SystemConfig, Workload, RunScale)` tuples a figure
//!    (or all figures) needs into a [`RunPlan`],
//! 2. deduplicates them by a stable cache key,
//! 3. executes the unique runs across `std::thread::scope` workers
//!    (bounded by `available_parallelism`, overridable with the
//!    `PIRANHA_THREADS` environment variable), and
//! 4. hands the memoized [`RunResult`]s back through [`Harness::get`].
//!
//! Because each simulation is deterministic and runs on its own thread
//! with its own `Machine`, the parallel path is *bit-identical* to the
//! serial path — the only thing that changes is wall-clock time.
//!
//! # Examples
//!
//! ```no_run
//! use piranha_harness::{Harness, RunPlan, RunScale};
//! use piranha_system::SystemConfig;
//! use piranha_workloads::{OltpConfig, Workload};
//!
//! let w = Workload::Oltp(OltpConfig::paper_default());
//! let scale = RunScale::quick();
//! let mut plan = RunPlan::new();
//! for cfg in [SystemConfig::ooo(), SystemConfig::piranha_p8()] {
//!     plan.add(cfg, w.clone(), scale);
//! }
//! let mut h = Harness::new();
//! h.execute(&plan);
//! let ooo = h.get(&SystemConfig::ooo(), &w, scale); // memoized
//! println!("OOO: {:.2} instrs/ns", ooo.throughput_ipns());
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use piranha_system::{Machine, Probe, ProbeConfig, RunResult, SystemConfig};
use piranha_workloads::Workload;

/// A persistent backing store for memoized results, keyed by
/// [`cache_key`]. Implemented by `piranha_serve::DiskStore` (a
/// content-addressed on-disk cache with a versioned JSON envelope); the
/// harness only sees this trait, so the store crate can sit above it in
/// the dependency graph.
///
/// Contract: `load(key)` returns a result **bit-identical** to what
/// `run_config` would produce for the tuple behind `key`, or `None`
/// (missing, corrupt, or written by an incompatible build — the store
/// must reject rather than serve those). `save` must tolerate concurrent
/// writers of the same key: the simulator is deterministic, so
/// last-writer-wins is safe.
pub trait ResultStore: Send + Sync {
    /// Fetch the persisted result for `key`, if a valid entry exists.
    fn load(&self, key: &str) -> Option<RunResult>;
    /// Persist `result` under `key`. Errors are the store's to swallow
    /// (a full disk must not fail the sweep); it simply won't hit later.
    fn save(&self, key: &str, result: &RunResult);
}

/// The process-wide default store newly built harnesses attach
/// (`Harness::new` / `Harness::with_threads`). Installed by the
/// `--store=<dir>` / `PIRANHA_STORE` rider of the figure binaries.
static DEFAULT_STORE: RwLock<Option<Arc<dyn ResultStore>>> = RwLock::new(None);

/// Install (or clear) the process-wide default result store. Every
/// harness constructed afterwards persists its runs there; existing
/// harnesses are unaffected.
pub fn set_default_store(store: Option<Arc<dyn ResultStore>>) {
    *DEFAULT_STORE.write().unwrap() = store;
}

/// The currently installed process-wide default store, if any.
pub fn default_store() -> Option<Arc<dyn ResultStore>> {
    DEFAULT_STORE.read().unwrap().clone()
}

/// Where a memoized result came from, for cache-provenance accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Served from the in-memory cache (or computed by a concurrent
    /// claimant of the same key while we waited).
    Memory,
    /// Loaded from the persistent [`ResultStore`].
    Store,
    /// Simulated by this call.
    Computed,
}

/// In-flight-aware memo table shared between harnesses (and the serve
/// worker pool). Each key is either absent, being computed by exactly
/// one claimant, or ready; [`SharedCache::claim`] blocks on in-flight
/// keys instead of recomputing, which makes duplicate submissions of
/// the same tuple idempotent across threads.
#[derive(Debug, Clone, Default)]
pub struct SharedCache {
    inner: Arc<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: Mutex<HashMap<String, Slot>>,
    ready: Condvar,
}

#[derive(Debug, Clone)]
enum Slot {
    InFlight,
    Ready(Arc<RunResult>),
}

/// The outcome of [`SharedCache::claim`]: either the key is already
/// resolved, or the caller now owns the obligation to compute it.
pub enum Claim {
    /// The result is ready (possibly after waiting on another claimant).
    Ready(Arc<RunResult>),
    /// The caller must compute the result and [`ClaimGuard::fulfill`]
    /// it. Dropping the guard unfulfilled (e.g. on panic) releases the
    /// key so waiting claimants retry instead of hanging.
    Owed(ClaimGuard),
}

/// Ownership token for an in-flight key (see [`Claim::Owed`]).
pub struct ClaimGuard {
    cache: SharedCache,
    key: String,
    fulfilled: bool,
}

impl ClaimGuard {
    /// The claimed key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Publish the computed result and wake every waiting claimant.
    pub fn fulfill(mut self, result: RunResult) -> Arc<RunResult> {
        let r = Arc::new(result);
        {
            let mut map = self.cache.inner.map.lock().unwrap();
            map.insert(self.key.clone(), Slot::Ready(Arc::clone(&r)));
        }
        self.cache.inner.ready.notify_all();
        self.fulfilled = true;
        r
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        if !self.fulfilled {
            // Abandoned (panic or early return): release the key so a
            // waiting claimant can take over rather than deadlock.
            let mut map = self.cache.inner.map.lock().unwrap();
            if matches!(map.get(&self.key), Some(Slot::InFlight)) {
                map.remove(&self.key);
            }
            drop(map);
            self.cache.inner.ready.notify_all();
        }
    }
}

impl SharedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ready result for `key`, if any (never blocks).
    pub fn lookup(&self, key: &str) -> Option<Arc<RunResult>> {
        match self.inner.map.lock().unwrap().get(key) {
            Some(Slot::Ready(r)) => Some(Arc::clone(r)),
            _ => None,
        }
    }

    /// Resolve `key` to a ready result or the obligation to compute it.
    /// If another claimant is already computing `key`, this blocks until
    /// that computation lands (or is abandoned, in which case the claim
    /// is retried and may become ours).
    pub fn claim(&self, key: &str) -> Claim {
        let mut map = self.inner.map.lock().unwrap();
        loop {
            match map.get(key) {
                Some(Slot::Ready(r)) => return Claim::Ready(Arc::clone(r)),
                Some(Slot::InFlight) => {
                    map = self.inner.ready.wait(map).unwrap();
                }
                None => {
                    map.insert(key.to_string(), Slot::InFlight);
                    return Claim::Owed(ClaimGuard {
                        cache: self.clone(),
                        key: key.to_string(),
                        fulfilled: false,
                    });
                }
            }
        }
    }

    /// Number of *ready* entries.
    pub fn len(&self) -> usize {
        self.inner
            .map
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no entry is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How long to run each configuration. Figures in the paper used 500
/// OLTP transactions; we size in instructions per CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunScale {
    /// Warm-up instructions per CPU (caches, open pages, BTB).
    pub warmup: u64,
    /// Measured instructions per CPU.
    pub measure: u64,
    /// When true, the instruction budget is ignored and the machine runs
    /// until every stream ends (bounded workloads only: `txn_limit` /
    /// `line_limit` set). Fault experiments use this mode so a faulted
    /// run provably completes the same work as its fault-free baseline.
    pub to_completion: bool,
}

impl RunScale {
    /// Full-size runs for the shipped figures.
    pub fn full() -> Self {
        RunScale {
            warmup: 600_000,
            measure: 1_000_000,
            to_completion: false,
        }
    }

    /// Small runs for CI / Criterion iterations.
    pub fn quick() -> Self {
        RunScale {
            warmup: 200_000,
            measure: 300_000,
            to_completion: false,
        }
    }

    /// Tiny runs for unit tests of the harness itself.
    pub fn tiny() -> Self {
        RunScale {
            warmup: 2_000,
            measure: 10_000,
            to_completion: false,
        }
    }

    /// Run-to-completion mode (no fixed instruction budget).
    pub fn completion() -> Self {
        RunScale {
            warmup: 0,
            measure: 0,
            to_completion: true,
        }
    }

    /// Huge runs, a tier beyond [`RunScale::full`] — affordable only
    /// under sampled execution ([`run_config_sampled`]), where the
    /// detailed model covers a small fraction of the instructions.
    pub fn huge() -> Self {
        RunScale {
            warmup: 2_000_000,
            measure: 8_000_000,
            to_completion: false,
        }
    }
}

/// Drive a built machine for `scale`: either a warmup+measure window or
/// a run to stream completion. Shared by [`run_config`] and
/// [`run_config_probed`] so the two paths cannot drift apart. Applies
/// the process-wide [`node_workers`] setting, which changes wall-clock
/// only — multi-chip results are bit-identical at every worker count.
fn drive(m: &mut Machine, scale: RunScale) -> RunResult {
    m.set_parallel_workers(node_workers());
    if scale.to_completion {
        m.run_to_completion()
    } else {
        m.run(scale.warmup, scale.measure)
    }
}

/// Run one configuration against one workload on the calling thread
/// (multi-chip machines additionally use [`node_workers`] lane threads
/// inside the run). This is the primitive everything else schedules.
pub fn run_config(cfg: SystemConfig, w: &Workload, scale: RunScale) -> RunResult {
    let mut m = Machine::new(cfg, w);
    drive(&mut m, scale)
}

/// Like [`run_config`] with an explicit per-machine lane-worker count,
/// bypassing the process-wide [`node_workers`] setting. Bit-identical
/// to `run_config` of the same tuple at any `workers` value.
pub fn run_config_parallel(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    workers: usize,
) -> RunResult {
    run_config_parallel_machine(cfg, w, scale, workers).0
}

/// [`run_config_parallel`] returning the machine too, for callers that
/// need lifetime state the measured-window [`RunResult`] cannot carry —
/// the final simulated time, the parallel-engine counters
/// (`Machine::parsim_stats`), the lookahead matrix. Used by the
/// `parsim_speedup` bench to report rounds per simulated microsecond.
pub fn run_config_parallel_machine(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    workers: usize,
) -> (RunResult, Machine) {
    let mut m = Machine::new(cfg, w);
    m.set_parallel_workers(workers);
    let r = if scale.to_completion {
        m.run_to_completion()
    } else {
        m.run(scale.warmup, scale.measure)
    };
    (r, m)
}

/// The process-wide lane-worker count applied to every machine the
/// harness drives (1 = serial within each simulation, the default).
static NODE_WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Set the per-machine lane-worker count (`--parallel=<n>` in the
/// figure binaries). Clamped to ≥ 1. The harness divides its sweep
/// thread budget by the widest [`effective_lane_width`] in a batch so
/// `sweep threads × lane workers` stays within the configured
/// parallelism (see [`Harness::execute`]).
pub fn set_node_workers(workers: usize) {
    NODE_WORKERS.store(workers.max(1), Ordering::Relaxed);
}

/// The current per-machine lane-worker count.
pub fn node_workers() -> usize {
    NODE_WORKERS.load(Ordering::Relaxed).max(1)
}

/// Process-wide provenance tally, summed over every `Harness` in the
/// process. The figure binaries build many short-lived harnesses
/// internally; these counters let `--store=` report one summary line
/// (and let CI assert a warm store recomputes nothing) without
/// threading each harness's per-instance counters out.
static PROCESS_COMPUTED: AtomicUsize = AtomicUsize::new(0);
static PROCESS_STORE_HITS: AtomicUsize = AtomicUsize::new(0);

/// `(computed, store_hits)` summed across every harness resolution in
/// this process: simulations actually executed versus results served
/// from the persistent [`ResultStore`]. In-memory cache hits are not
/// counted (they cost nothing and would dwarf the interesting numbers).
pub fn process_counters() -> (usize, usize) {
    (
        PROCESS_COMPUTED.load(Ordering::Relaxed),
        PROCESS_STORE_HITS.load(Ordering::Relaxed),
    )
}

/// Like [`run_config`], but with an observability probe attached per
/// `probe_cfg`. Returns the result *and* the probe, whose trace buffer
/// and metric registry the caller can export (Chrome JSON, CSV).
///
/// The probe never feeds back into the simulation, so the `RunResult`
/// fingerprint is bit-identical to an unprobed [`run_config`] of the
/// same tuple — the determinism guard test asserts this.
pub fn run_config_probed(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    probe_cfg: ProbeConfig,
) -> (RunResult, Probe) {
    let mut m = Machine::new(cfg, w);
    let probe = Probe::new(probe_cfg);
    m.set_probe(probe.clone());
    let r = drive(&mut m, scale);
    (r, probe)
}

/// Like [`run_config`], but under SMARTS-style sampled execution: the
/// machine functionally fast-forwards between detailed measurement
/// windows per `sample`, and the returned result carries a
/// [`piranha_system::SampleEstimate`] in `RunResult::sample`.
///
/// The scale maps as in [`run_config`]: `to_completion` runs every
/// stream to its end (sampling handles `scale.warmup` implicitly via
/// `sample.warmup`, so only the budget is taken from the scale);
/// otherwise the run is bounded at `warmup + measure` instructions per
/// CPU.
pub fn run_config_sampled(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    sample: &piranha_system::SampleConfig,
) -> RunResult {
    let mut m = Machine::new(cfg, w);
    m.set_parallel_workers(node_workers());
    let budget = if scale.to_completion {
        None
    } else {
        Some(scale.warmup + scale.measure)
    };
    m.run_sampled(sample, budget)
}

/// Like [`run_config`], but with an open-loop traffic plane attached:
/// `traffic` replaces `cfg.traffic` before the run, so transactions are
/// admitted by the arrival process instead of back-to-back, and the
/// returned result carries a [`piranha_system::TrafficSummary`] in
/// `RunResult::traffic` (offered/accepted/dropped ledger plus the
/// transaction-latency histogram).
///
/// Because `TrafficConfig` is part of [`SystemConfig`], the memoizing
/// harness distinguishes runs at different offered loads automatically —
/// [`cache_key`] covers every traffic field.
pub fn run_config_traffic(
    mut cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    traffic: piranha_system::TrafficConfig,
) -> RunResult {
    cfg.traffic = traffic;
    run_config(cfg, w, scale)
}

/// The lane-worker threads one request will *actually* spawn, as opposed
/// to the process-wide [`node_workers`] setting: single-chip machines run
/// the serial engine regardless of the setting, and multi-chip machines
/// clamp it to their lane count (`nodes + io_nodes`). The harness sizes
/// its sweep-level thread pool against the widest request in a batch, so
/// a sweep of single-chip configs is not throttled by a `--parallel=8`
/// flag that none of its machines can use.
pub fn effective_lane_width(cfg: &SystemConfig, node_workers: usize) -> usize {
    let lanes = cfg.nodes + cfg.io_nodes;
    if lanes > 1 {
        node_workers.clamp(1, lanes)
    } else {
        1
    }
}

/// One simulation a figure needs.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// The machine configuration to simulate.
    pub cfg: SystemConfig,
    /// The workload to drive it with.
    pub workload: Workload,
    /// Instruction budget.
    pub scale: RunScale,
}

impl RunRequest {
    /// Assemble a request.
    pub fn new(cfg: SystemConfig, workload: Workload, scale: RunScale) -> Self {
        RunRequest {
            cfg,
            workload,
            scale,
        }
    }

    /// The stable cache key identifying this simulation.
    pub fn key(&self) -> String {
        cache_key(&self.cfg, &self.workload, self.scale)
    }
}

/// The stable cache key of a `(config, workload, scale)` tuple.
///
/// Built from the `Debug` renderings, which cover every field of the
/// derived config structs — two tuples collide exactly when they would
/// produce identical simulations (configurations are pure data and the
/// simulator is deterministic).
pub fn cache_key(cfg: &SystemConfig, w: &Workload, scale: RunScale) -> String {
    format!("{cfg:?}|{w:?}|{scale:?}")
}

/// A deduplicated batch of simulations to run.
#[derive(Debug, Default, Clone)]
pub struct RunPlan {
    reqs: Vec<RunRequest>,
    keys: HashSet<String>,
}

impl RunPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one simulation; duplicates (by cache key) are dropped.
    /// Returns whether the request was new.
    pub fn add(&mut self, cfg: SystemConfig, workload: Workload, scale: RunScale) -> bool {
        self.push(RunRequest::new(cfg, workload, scale))
    }

    /// Add a pre-built request; duplicates (by cache key) are dropped.
    pub fn push(&mut self, req: RunRequest) -> bool {
        if self.keys.insert(req.key()) {
            self.reqs.push(req);
            true
        } else {
            false
        }
    }

    /// Fold another plan's requests into this one.
    pub fn merge(&mut self, other: RunPlan) {
        for r in other.reqs {
            self.push(r);
        }
    }

    /// Number of unique simulations planned.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The unique requests, in insertion order.
    pub fn requests(&self) -> &[RunRequest] {
        &self.reqs
    }
}

/// The worker-thread count the harness uses by default: the
/// `PIRANHA_THREADS` environment variable if set (and ≥ 1), else
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PIRANHA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A memoizing executor for simulation runs.
///
/// Results are cached by [`cache_key`] in a [`SharedCache`];
/// [`Harness::execute`] runs every uncached request of a [`RunPlan`]
/// across scoped worker threads, and [`Harness::get`] returns cached
/// results (simulating inline, serially, on a miss so figures never see
/// a gap).
///
/// Two extra layers compose in transparently:
///
/// - **Persistence** — with a [`ResultStore`] attached (explicitly via
///   [`Harness::set_store`] or process-wide via [`set_default_store`]),
///   every miss consults the store before simulating and every computed
///   result is persisted, so sweeps resume across processes.
/// - **In-flight dedup** — the cache tracks keys *being* computed, so a
///   key submitted while already in flight (a second harness sharing the
///   cache, or the serve worker pool) waits on the running computation
///   instead of recomputing it.
pub struct Harness {
    cache: SharedCache,
    store: Option<Arc<dyn ResultStore>>,
    threads: usize,
    executed: usize,
    hits: usize,
    store_hits: usize,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("cached", &self.cache.len())
            .field("threads", &self.threads)
            .field("executed", &self.executed)
            .field("hits", &self.hits)
            .field("store_hits", &self.store_hits)
            .field("store", &self.store.is_some())
            .finish()
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness using [`default_threads`] workers (and the process-wide
    /// default [`ResultStore`], if one is installed).
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// A harness with an explicit worker count (`1` = serial). Picks up
    /// the process-wide default store.
    pub fn with_threads(threads: usize) -> Self {
        Harness {
            cache: SharedCache::new(),
            store: default_store(),
            threads: threads.max(1),
            executed: 0,
            hits: 0,
            store_hits: 0,
        }
    }

    /// A strictly serial harness (still memoizing).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// Attach (or detach) a persistent result store.
    pub fn set_store(&mut self, store: Option<Arc<dyn ResultStore>>) {
        self.store = store;
    }

    /// The in-memory cache, cloneable into another harness
    /// ([`Harness::with_cache`]) or the serve worker pool so concurrent
    /// consumers share results and in-flight dedup.
    pub fn shared_cache(&self) -> SharedCache {
        self.cache.clone()
    }

    /// Replace the in-memory cache (builder-style), typically with one
    /// shared from another harness.
    pub fn with_cache(mut self, cache: SharedCache) -> Self {
        self.cache = cache;
        self
    }

    /// The worker-thread bound.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many simulations this harness actually executed (store loads
    /// and waits on another claimant's computation are *not* counted).
    pub fn unique_runs(&self) -> usize {
        self.executed
    }

    /// How many [`Harness::get`] calls were answered from the cache.
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// How many results were served from the persistent store instead of
    /// being recomputed.
    pub fn store_hits(&self) -> usize {
        self.store_hits
    }

    /// Resolve one request through the cache/store/compute stack:
    /// ready cache entry → persistent store → simulate. Blocks if the
    /// key is in flight elsewhere (idempotent duplicate submission).
    fn resolve(&self, req: &RunRequest) -> (Arc<RunResult>, Provenance) {
        let key = req.key();
        match self.cache.claim(&key) {
            Claim::Ready(r) => (r, Provenance::Memory),
            Claim::Owed(guard) => {
                if let Some(r) = self.store.as_ref().and_then(|s| s.load(&key)) {
                    PROCESS_STORE_HITS.fetch_add(1, Ordering::Relaxed);
                    return (guard.fulfill(r), Provenance::Store);
                }
                let r = run_config(req.cfg.clone(), &req.workload, req.scale);
                if let Some(s) = &self.store {
                    s.save(&key, &r);
                }
                PROCESS_COMPUTED.fetch_add(1, Ordering::Relaxed);
                (guard.fulfill(r), Provenance::Computed)
            }
        }
    }

    /// Execute every request of `plan` that is not already cached,
    /// fanning the unique runs out over up to `threads` scoped workers.
    ///
    /// Workers pull tasks from a shared index in plan order, so with one
    /// worker this degrades to exactly the serial loop. Each task builds
    /// its own `Machine`, making results independent of scheduling.
    /// Requests whose key lands in the persistent store or is computed
    /// concurrently by another cache sharer are *not* re-simulated.
    pub fn execute(&mut self, plan: &RunPlan) {
        let todo: Vec<&RunRequest> = plan
            .requests()
            .iter()
            .filter(|r| self.cache.lookup(&r.key()).is_none())
            .collect();
        if todo.is_empty() {
            return;
        }
        // Nested-parallelism budget: each simulation may itself spin up
        // lane threads, so the sweep gets its share of the thread budget
        // (at least one worker either way). Divide by what the batch's
        // machines will actually use — single-chip runs are serial no
        // matter the `node_workers()` setting, and multi-chip runs clamp
        // it to their lane count — not by the raw setting, which would
        // starve sweeps of small configs under a wide `--parallel` flag.
        let per_run = todo
            .iter()
            .map(|r| effective_lane_width(&r.cfg, node_workers()))
            .max()
            .unwrap_or(1);
        let workers = piranha_parsim::sweep_share(self.threads, per_run).min(todo.len());
        let executed = AtomicUsize::new(0);
        let store_hits = AtomicUsize::new(0);
        let count = |p: Provenance| match p {
            Provenance::Computed => {
                executed.fetch_add(1, Ordering::Relaxed);
            }
            Provenance::Store => {
                store_hits.fetch_add(1, Ordering::Relaxed);
            }
            Provenance::Memory => {}
        };
        if workers <= 1 {
            for req in todo {
                let (_, p) = self.resolve(req);
                count(p);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = todo.get(i) else { break };
                        let (_, p) = self.resolve(req);
                        count(p);
                    });
                }
            });
        }
        self.executed += executed.into_inner();
        self.store_hits += store_hits.into_inner();
    }

    /// The memoized result for one tuple; simulates inline (serially) if
    /// it is not cached yet — or loads it from the store, or waits for a
    /// concurrent claimant, through the same claim protocol
    /// [`Harness::execute`] uses.
    pub fn get(&mut self, cfg: &SystemConfig, w: &Workload, scale: RunScale) -> Arc<RunResult> {
        let req = RunRequest::new(cfg.clone(), w.clone(), scale);
        let (r, p) = self.resolve(&req);
        match p {
            Provenance::Memory => self.hits += 1,
            Provenance::Store => self.store_hits += 1,
            Provenance::Computed => self.executed += 1,
        }
        r
    }

    /// Whether a tuple is already cached (ready, not merely in flight).
    pub fn contains(&self, cfg: &SystemConfig, w: &Workload, scale: RunScale) -> bool {
        self.cache.lookup(&cache_key(cfg, w, scale)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_workloads::SynthConfig;

    fn synth() -> Workload {
        Workload::Synth(SynthConfig::light())
    }

    fn tiny_cfg(name: &str, cpus: usize) -> SystemConfig {
        let mut c = SystemConfig::piranha_pn(cpus.max(1));
        c.name = name.into();
        c.cpu_quantum = 500;
        c
    }

    #[test]
    fn plan_deduplicates_by_key() {
        let mut plan = RunPlan::new();
        assert!(plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny()));
        assert!(
            !plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny()),
            "exact dup dropped"
        );
        assert!(
            plan.add(tiny_cfg("A", 2), synth(), RunScale::tiny()),
            "config change kept"
        );
        assert!(
            plan.add(tiny_cfg("A", 1), synth(), RunScale::quick()),
            "scale change kept"
        );
        assert_eq!(plan.len(), 3);
        let mut other = RunPlan::new();
        other.add(tiny_cfg("A", 2), synth(), RunScale::tiny());
        other.add(tiny_cfg("B", 1), synth(), RunScale::tiny());
        plan.merge(other);
        assert_eq!(plan.len(), 4, "merge dedups against existing keys");
    }

    #[test]
    fn execute_memoizes_and_get_hits() {
        let mut plan = RunPlan::new();
        plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny());
        plan.add(tiny_cfg("B", 1), synth(), RunScale::tiny());
        let mut h = Harness::serial();
        h.execute(&plan);
        assert_eq!(h.unique_runs(), 2);
        h.execute(&plan);
        assert_eq!(h.unique_runs(), 2, "re-executing a cached plan is free");
        let _ = h.get(&tiny_cfg("A", 1), &synth(), RunScale::tiny());
        assert_eq!(h.cache_hits(), 1);
        assert_eq!(h.unique_runs(), 2, "get() was served from cache");
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        let mut plan = RunPlan::new();
        for (name, cpus) in [("A", 1), ("B", 2), ("C", 1), ("D", 2), ("E", 1)] {
            plan.add(tiny_cfg(name, cpus), synth(), RunScale::tiny());
        }
        let mut serial = Harness::serial();
        serial.execute(&plan);
        let mut parallel = Harness::with_threads(4);
        parallel.execute(&plan);
        for req in plan.requests() {
            let a = serial.get(&req.cfg, &req.workload, req.scale);
            let b = parallel.get(&req.cfg, &req.workload, req.scale);
            assert_eq!(a.name, b.name);
            assert_eq!(a.window, b.window);
            assert_eq!(a.total_instrs(), b.total_instrs());
            assert_eq!(a.cpus.len(), b.cpus.len());
            for (x, y) in a.cpus.iter().zip(&b.cpus) {
                assert_eq!(
                    format!("{x:?}"),
                    format!("{y:?}"),
                    "per-CPU stats identical"
                );
            }
        }
    }

    #[test]
    fn get_runs_inline_on_miss() {
        let mut h = Harness::new();
        let r = h.get(&tiny_cfg("A", 1), &synth(), RunScale::tiny());
        assert!(r.total_instrs() >= 10_000);
        assert_eq!(h.unique_runs(), 1);
        assert_eq!(h.cache_hits(), 0);
    }

    #[test]
    fn lane_workers_do_not_change_multichip_results() {
        let cfg = tiny_cfg("MC", 2).scaled_to_chips(2);
        let serial = run_config_parallel(cfg.clone(), &synth(), RunScale::tiny(), 1);
        let threaded = run_config_parallel(cfg, &synth(), RunScale::tiny(), 2);
        assert_eq!(serial.fingerprint(), threaded.fingerprint());
        assert_eq!(serial.window, threaded.window);
        assert_eq!(serial.total_instrs(), threaded.total_instrs());
    }

    #[test]
    fn sampled_run_carries_estimate_and_respects_budget() {
        let sample = piranha_system::SampleConfig {
            warmup: 1_000,
            period: 5_000,
            detail_warmup: 100,
            window: 500,
            min_windows: 3,
            max_windows: 8,
            target_rel_ci: None,
        };
        let scale = RunScale {
            warmup: 5_000,
            measure: 20_000,
            to_completion: false,
        };
        let r = run_config_sampled(tiny_cfg("S", 2), &synth(), scale, &sample);
        let est = r.sample.as_ref().expect("sampled run carries estimate");
        assert!(est.windows >= 3);
        assert!(est.cpi_mean > 0.0);
        // The budget is per-CPU: warming plus detailed windows must
        // together cover scale.warmup + scale.measure on both CPUs.
        assert!(est.detailed_instrs + est.warmed_instrs >= 2 * 25_000);
    }

    #[test]
    fn traffic_run_carries_summary_and_is_memoized_separately() {
        let cfg = tiny_cfg("T", 2);
        let oltp = piranha_workloads::OltpConfig {
            txn_limit: 10,
            ..piranha_workloads::OltpConfig::paper_default()
        };
        let w = Workload::Oltp(oltp);
        let traffic = piranha_system::TrafficConfig::poisson(200.0);
        let r = run_config_traffic(cfg.clone(), &w, RunScale::completion(), traffic.clone());
        let t = r.traffic.as_ref().expect("traffic summary present");
        assert!(t.ledger.conserved(), "ledger: {:?}", t.ledger);
        assert_eq!(t.ledger.completed, 20, "both cores drained their limit");
        // The traffic config is part of the cache key, so loaded and
        // unloaded runs of the same (cfg, workload, scale) never collide.
        let mut loaded = cfg.clone();
        loaded.traffic = traffic;
        assert_ne!(
            cache_key(&cfg, &w, RunScale::completion()),
            cache_key(&loaded, &w, RunScale::completion())
        );
    }

    #[test]
    fn lane_width_reflects_actual_threads_not_the_setting() {
        // A single-chip machine runs the serial engine: its width is 1
        // no matter how wide --parallel is set.
        assert_eq!(effective_lane_width(&tiny_cfg("A", 2), 8), 1);
        // Multi-chip machines clamp the setting to their lane count.
        let multi = tiny_cfg("A", 2).scaled_to_chips(2);
        assert_eq!(effective_lane_width(&multi, 8), 2);
        assert_eq!(effective_lane_width(&multi, 1), 1);
        let wide = tiny_cfg("A", 2).scaled_to_chips(4);
        assert_eq!(effective_lane_width(&wide, 3), 3);
    }

    #[test]
    fn thread_env_override_parses() {
        // Only checks the parser contract; the env var itself is global
        // state we do not mutate in tests.
        assert!(default_threads() >= 1);
    }

    /// In-memory [`ResultStore`] with save/load counters, standing in
    /// for the on-disk store in unit tests.
    #[derive(Default)]
    struct MemStore {
        map: Mutex<HashMap<String, RunResult>>,
        saves: AtomicUsize,
        loads: AtomicUsize,
    }

    impl ResultStore for MemStore {
        fn load(&self, key: &str) -> Option<RunResult> {
            let r = self.map.lock().unwrap().get(key).cloned();
            if r.is_some() {
                self.loads.fetch_add(1, Ordering::Relaxed);
            }
            r
        }
        fn save(&self, key: &str, result: &RunResult) {
            self.saves.fetch_add(1, Ordering::Relaxed);
            self.map
                .lock()
                .unwrap()
                .insert(key.to_string(), result.clone());
        }
    }

    #[test]
    fn store_persists_and_short_circuits_recompute() {
        let store = Arc::new(MemStore::default());
        let mut plan = RunPlan::new();
        plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny());
        plan.add(tiny_cfg("B", 1), synth(), RunScale::tiny());

        let mut first = Harness::serial();
        first.set_store(Some(store.clone() as Arc<dyn ResultStore>));
        first.execute(&plan);
        assert_eq!(first.unique_runs(), 2);
        assert_eq!(first.store_hits(), 0);
        assert_eq!(store.saves.load(Ordering::Relaxed), 2);

        // A fresh harness (fresh in-memory cache, same store) resumes
        // from disk: zero simulations, two store hits.
        let mut second = Harness::serial();
        second.set_store(Some(store.clone() as Arc<dyn ResultStore>));
        second.execute(&plan);
        assert_eq!(second.unique_runs(), 0, "resumed entirely from store");
        assert_eq!(second.store_hits(), 2);
        assert_eq!(store.saves.load(Ordering::Relaxed), 2, "nothing re-saved");

        // And the results agree bit-for-bit with a storeless run.
        let mut bare = Harness::serial();
        bare.execute(&plan);
        for req in plan.requests() {
            let a = second.get(&req.cfg, &req.workload, req.scale);
            let b = bare.get(&req.cfg, &req.workload, req.scale);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn partial_store_resumes_only_missing_rows() {
        let store = Arc::new(MemStore::default());
        let mut warm = RunPlan::new();
        warm.add(tiny_cfg("A", 1), synth(), RunScale::tiny());
        let mut h = Harness::serial();
        h.set_store(Some(store.clone() as Arc<dyn ResultStore>));
        h.execute(&warm);

        // A superset plan in a fresh harness recomputes only row B, as a
        // killed-and-restarted sweep would.
        let mut full = warm.clone();
        full.add(tiny_cfg("B", 1), synth(), RunScale::tiny());
        let mut resumed = Harness::serial();
        resumed.set_store(Some(store.clone() as Arc<dyn ResultStore>));
        resumed.execute(&full);
        assert_eq!(resumed.store_hits(), 1);
        assert_eq!(resumed.unique_runs(), 1);
    }

    #[test]
    fn duplicate_submission_in_flight_is_idempotent() {
        // Two harnesses sharing one cache race the same plan; the
        // in-flight claim protocol must hand every key to exactly one of
        // them, so total simulations equal the number of unique tuples.
        let mut plan = RunPlan::new();
        for (name, cpus) in [("A", 1), ("B", 2), ("C", 1), ("D", 2)] {
            plan.add(tiny_cfg(name, cpus), synth(), RunScale::tiny());
        }
        let lead = Harness::with_threads(2);
        let cache = lead.shared_cache();
        let (a, b) = std::thread::scope(|s| {
            let plan_a = plan.clone();
            let cache_a = cache.clone();
            let ta = s.spawn(move || {
                let mut h = Harness::with_threads(2).with_cache(cache_a);
                h.set_store(None);
                h.execute(&plan_a);
                h.unique_runs()
            });
            let plan_b = plan.clone();
            let tb = s.spawn(move || {
                let mut h = Harness::with_threads(2).with_cache(cache);
                h.set_store(None);
                h.execute(&plan_b);
                h.unique_runs()
            });
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert_eq!(a + b, plan.len(), "each tuple simulated exactly once");
        assert_eq!(lead.shared_cache().len(), plan.len());
    }

    #[test]
    fn abandoned_claim_is_released_to_waiters() {
        let cache = SharedCache::new();
        let key = "k";
        let Claim::Owed(guard) = cache.claim(key) else {
            panic!("fresh key must be owed");
        };
        // Simulate a panicking worker: the guard drops unfulfilled while
        // another thread is blocked waiting on the in-flight entry.
        let waiter = std::thread::spawn({
            let cache = cache.clone();
            move || match cache.claim(key) {
                Claim::Ready(_) => panic!("nothing was ever fulfilled"),
                Claim::Owed(g) => g.key().to_string(),
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard);
        assert_eq!(waiter.join().unwrap(), key, "waiter inherited the claim");
        assert!(cache.lookup(key).is_none());
    }
}
