//! Parallel, memoizing experiment harness.
//!
//! The paper's evaluation (§4) needs ~20 independent `Machine`
//! simulations, and several figures share baselines (OOO, P1, P8 appear
//! in four figures each). Simulations of *different* configurations are
//! embarrassingly parallel — each `Machine` is a self-contained
//! deterministic event simulation — so this crate:
//!
//! 1. collects the `(SystemConfig, Workload, RunScale)` tuples a figure
//!    (or all figures) needs into a [`RunPlan`],
//! 2. deduplicates them by a stable cache key,
//! 3. executes the unique runs across `std::thread::scope` workers
//!    (bounded by `available_parallelism`, overridable with the
//!    `PIRANHA_THREADS` environment variable), and
//! 4. hands the memoized [`RunResult`]s back through [`Harness::get`].
//!
//! Because each simulation is deterministic and runs on its own thread
//! with its own `Machine`, the parallel path is *bit-identical* to the
//! serial path — the only thing that changes is wall-clock time.
//!
//! # Examples
//!
//! ```no_run
//! use piranha_harness::{Harness, RunPlan, RunScale};
//! use piranha_system::SystemConfig;
//! use piranha_workloads::{OltpConfig, Workload};
//!
//! let w = Workload::Oltp(OltpConfig::paper_default());
//! let scale = RunScale::quick();
//! let mut plan = RunPlan::new();
//! for cfg in [SystemConfig::ooo(), SystemConfig::piranha_p8()] {
//!     plan.add(cfg, w.clone(), scale);
//! }
//! let mut h = Harness::new();
//! h.execute(&plan);
//! let ooo = h.get(&SystemConfig::ooo(), &w, scale); // memoized
//! println!("OOO: {:.2} instrs/ns", ooo.throughput_ipns());
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use piranha_system::{Machine, Probe, ProbeConfig, RunResult, SystemConfig};
use piranha_workloads::Workload;

/// How long to run each configuration. Figures in the paper used 500
/// OLTP transactions; we size in instructions per CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunScale {
    /// Warm-up instructions per CPU (caches, open pages, BTB).
    pub warmup: u64,
    /// Measured instructions per CPU.
    pub measure: u64,
    /// When true, the instruction budget is ignored and the machine runs
    /// until every stream ends (bounded workloads only: `txn_limit` /
    /// `line_limit` set). Fault experiments use this mode so a faulted
    /// run provably completes the same work as its fault-free baseline.
    pub to_completion: bool,
}

impl RunScale {
    /// Full-size runs for the shipped figures.
    pub fn full() -> Self {
        RunScale {
            warmup: 600_000,
            measure: 1_000_000,
            to_completion: false,
        }
    }

    /// Small runs for CI / Criterion iterations.
    pub fn quick() -> Self {
        RunScale {
            warmup: 200_000,
            measure: 300_000,
            to_completion: false,
        }
    }

    /// Tiny runs for unit tests of the harness itself.
    pub fn tiny() -> Self {
        RunScale {
            warmup: 2_000,
            measure: 10_000,
            to_completion: false,
        }
    }

    /// Run-to-completion mode (no fixed instruction budget).
    pub fn completion() -> Self {
        RunScale {
            warmup: 0,
            measure: 0,
            to_completion: true,
        }
    }

    /// Huge runs, a tier beyond [`RunScale::full`] — affordable only
    /// under sampled execution ([`run_config_sampled`]), where the
    /// detailed model covers a small fraction of the instructions.
    pub fn huge() -> Self {
        RunScale {
            warmup: 2_000_000,
            measure: 8_000_000,
            to_completion: false,
        }
    }
}

/// Drive a built machine for `scale`: either a warmup+measure window or
/// a run to stream completion. Shared by [`run_config`] and
/// [`run_config_probed`] so the two paths cannot drift apart. Applies
/// the process-wide [`node_workers`] setting, which changes wall-clock
/// only — multi-chip results are bit-identical at every worker count.
fn drive(m: &mut Machine, scale: RunScale) -> RunResult {
    m.set_parallel_workers(node_workers());
    if scale.to_completion {
        m.run_to_completion()
    } else {
        m.run(scale.warmup, scale.measure)
    }
}

/// Run one configuration against one workload on the calling thread
/// (multi-chip machines additionally use [`node_workers`] lane threads
/// inside the run). This is the primitive everything else schedules.
pub fn run_config(cfg: SystemConfig, w: &Workload, scale: RunScale) -> RunResult {
    let mut m = Machine::new(cfg, w);
    drive(&mut m, scale)
}

/// Like [`run_config`] with an explicit per-machine lane-worker count,
/// bypassing the process-wide [`node_workers`] setting. Bit-identical
/// to `run_config` of the same tuple at any `workers` value.
pub fn run_config_parallel(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    workers: usize,
) -> RunResult {
    run_config_parallel_machine(cfg, w, scale, workers).0
}

/// [`run_config_parallel`] returning the machine too, for callers that
/// need lifetime state the measured-window [`RunResult`] cannot carry —
/// the final simulated time, the parallel-engine counters
/// (`Machine::parsim_stats`), the lookahead matrix. Used by the
/// `parsim_speedup` bench to report rounds per simulated microsecond.
pub fn run_config_parallel_machine(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    workers: usize,
) -> (RunResult, Machine) {
    let mut m = Machine::new(cfg, w);
    m.set_parallel_workers(workers);
    let r = if scale.to_completion {
        m.run_to_completion()
    } else {
        m.run(scale.warmup, scale.measure)
    };
    (r, m)
}

/// The process-wide lane-worker count applied to every machine the
/// harness drives (1 = serial within each simulation, the default).
static NODE_WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Set the per-machine lane-worker count (`--parallel=<n>` in the
/// figure binaries). Clamped to ≥ 1. The harness divides its sweep
/// thread budget by the widest [`effective_lane_width`] in a batch so
/// `sweep threads × lane workers` stays within the configured
/// parallelism (see [`Harness::execute`]).
pub fn set_node_workers(workers: usize) {
    NODE_WORKERS.store(workers.max(1), Ordering::Relaxed);
}

/// The current per-machine lane-worker count.
pub fn node_workers() -> usize {
    NODE_WORKERS.load(Ordering::Relaxed).max(1)
}

/// Like [`run_config`], but with an observability probe attached per
/// `probe_cfg`. Returns the result *and* the probe, whose trace buffer
/// and metric registry the caller can export (Chrome JSON, CSV).
///
/// The probe never feeds back into the simulation, so the `RunResult`
/// fingerprint is bit-identical to an unprobed [`run_config`] of the
/// same tuple — the determinism guard test asserts this.
pub fn run_config_probed(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    probe_cfg: ProbeConfig,
) -> (RunResult, Probe) {
    let mut m = Machine::new(cfg, w);
    let probe = Probe::new(probe_cfg);
    m.set_probe(probe.clone());
    let r = drive(&mut m, scale);
    (r, probe)
}

/// Like [`run_config`], but under SMARTS-style sampled execution: the
/// machine functionally fast-forwards between detailed measurement
/// windows per `sample`, and the returned result carries a
/// [`piranha_system::SampleEstimate`] in `RunResult::sample`.
///
/// The scale maps as in [`run_config`]: `to_completion` runs every
/// stream to its end (sampling handles `scale.warmup` implicitly via
/// `sample.warmup`, so only the budget is taken from the scale);
/// otherwise the run is bounded at `warmup + measure` instructions per
/// CPU.
pub fn run_config_sampled(
    cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    sample: &piranha_system::SampleConfig,
) -> RunResult {
    let mut m = Machine::new(cfg, w);
    m.set_parallel_workers(node_workers());
    let budget = if scale.to_completion {
        None
    } else {
        Some(scale.warmup + scale.measure)
    };
    m.run_sampled(sample, budget)
}

/// Like [`run_config`], but with an open-loop traffic plane attached:
/// `traffic` replaces `cfg.traffic` before the run, so transactions are
/// admitted by the arrival process instead of back-to-back, and the
/// returned result carries a [`piranha_system::TrafficSummary`] in
/// `RunResult::traffic` (offered/accepted/dropped ledger plus the
/// transaction-latency histogram).
///
/// Because `TrafficConfig` is part of [`SystemConfig`], the memoizing
/// harness distinguishes runs at different offered loads automatically —
/// [`cache_key`] covers every traffic field.
pub fn run_config_traffic(
    mut cfg: SystemConfig,
    w: &Workload,
    scale: RunScale,
    traffic: piranha_system::TrafficConfig,
) -> RunResult {
    cfg.traffic = traffic;
    run_config(cfg, w, scale)
}

/// The lane-worker threads one request will *actually* spawn, as opposed
/// to the process-wide [`node_workers`] setting: single-chip machines run
/// the serial engine regardless of the setting, and multi-chip machines
/// clamp it to their lane count (`nodes + io_nodes`). The harness sizes
/// its sweep-level thread pool against the widest request in a batch, so
/// a sweep of single-chip configs is not throttled by a `--parallel=8`
/// flag that none of its machines can use.
pub fn effective_lane_width(cfg: &SystemConfig, node_workers: usize) -> usize {
    let lanes = cfg.nodes + cfg.io_nodes;
    if lanes > 1 {
        node_workers.clamp(1, lanes)
    } else {
        1
    }
}

/// One simulation a figure needs.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// The machine configuration to simulate.
    pub cfg: SystemConfig,
    /// The workload to drive it with.
    pub workload: Workload,
    /// Instruction budget.
    pub scale: RunScale,
}

impl RunRequest {
    /// Assemble a request.
    pub fn new(cfg: SystemConfig, workload: Workload, scale: RunScale) -> Self {
        RunRequest {
            cfg,
            workload,
            scale,
        }
    }

    /// The stable cache key identifying this simulation.
    pub fn key(&self) -> String {
        cache_key(&self.cfg, &self.workload, self.scale)
    }
}

/// The stable cache key of a `(config, workload, scale)` tuple.
///
/// Built from the `Debug` renderings, which cover every field of the
/// derived config structs — two tuples collide exactly when they would
/// produce identical simulations (configurations are pure data and the
/// simulator is deterministic).
pub fn cache_key(cfg: &SystemConfig, w: &Workload, scale: RunScale) -> String {
    format!("{cfg:?}|{w:?}|{scale:?}")
}

/// A deduplicated batch of simulations to run.
#[derive(Debug, Default, Clone)]
pub struct RunPlan {
    reqs: Vec<RunRequest>,
    keys: HashSet<String>,
}

impl RunPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one simulation; duplicates (by cache key) are dropped.
    /// Returns whether the request was new.
    pub fn add(&mut self, cfg: SystemConfig, workload: Workload, scale: RunScale) -> bool {
        self.push(RunRequest::new(cfg, workload, scale))
    }

    /// Add a pre-built request; duplicates (by cache key) are dropped.
    pub fn push(&mut self, req: RunRequest) -> bool {
        if self.keys.insert(req.key()) {
            self.reqs.push(req);
            true
        } else {
            false
        }
    }

    /// Fold another plan's requests into this one.
    pub fn merge(&mut self, other: RunPlan) {
        for r in other.reqs {
            self.push(r);
        }
    }

    /// Number of unique simulations planned.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The unique requests, in insertion order.
    pub fn requests(&self) -> &[RunRequest] {
        &self.reqs
    }
}

/// The worker-thread count the harness uses by default: the
/// `PIRANHA_THREADS` environment variable if set (and ≥ 1), else
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PIRANHA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A memoizing executor for simulation runs.
///
/// Results are cached by [`cache_key`]; [`Harness::execute`] runs every
/// uncached request of a [`RunPlan`] across scoped worker threads, and
/// [`Harness::get`] returns cached results (simulating inline, serially,
/// on a miss so figures never see a gap).
#[derive(Debug)]
pub struct Harness {
    cache: HashMap<String, Arc<RunResult>>,
    threads: usize,
    executed: usize,
    hits: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness using [`default_threads`] workers.
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// A harness with an explicit worker count (`1` = serial).
    pub fn with_threads(threads: usize) -> Self {
        Harness {
            cache: HashMap::new(),
            threads: threads.max(1),
            executed: 0,
            hits: 0,
        }
    }

    /// A strictly serial harness (still memoizing).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// The worker-thread bound.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many simulations have actually been executed.
    pub fn unique_runs(&self) -> usize {
        self.executed
    }

    /// How many [`Harness::get`] calls were answered from the cache.
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Execute every request of `plan` that is not already cached,
    /// fanning the unique runs out over up to `threads` scoped workers.
    ///
    /// Workers pull tasks from a shared index in plan order, so with one
    /// worker this degrades to exactly the serial loop. Each task builds
    /// its own `Machine`, making results independent of scheduling.
    pub fn execute(&mut self, plan: &RunPlan) {
        let todo: Vec<&RunRequest> = plan
            .requests()
            .iter()
            .filter(|r| !self.cache.contains_key(&r.key()))
            .collect();
        if todo.is_empty() {
            return;
        }
        // Nested-parallelism budget: each simulation may itself spin up
        // lane threads, so the sweep gets its share of the thread budget
        // (at least one worker either way). Divide by what the batch's
        // machines will actually use — single-chip runs are serial no
        // matter the `node_workers()` setting, and multi-chip runs clamp
        // it to their lane count — not by the raw setting, which would
        // starve sweeps of small configs under a wide `--parallel` flag.
        let per_run = todo
            .iter()
            .map(|r| effective_lane_width(&r.cfg, node_workers()))
            .max()
            .unwrap_or(1);
        let workers = piranha_parsim::sweep_share(self.threads, per_run).min(todo.len());
        if workers <= 1 {
            for req in todo {
                let r = Arc::new(run_config(req.cfg.clone(), &req.workload, req.scale));
                self.cache.insert(req.key(), r);
                self.executed += 1;
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<RunResult>>> =
            todo.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = todo.get(i) else { break };
                    let r = run_config(req.cfg.clone(), &req.workload, req.scale);
                    *results[i].lock().unwrap() = Some(r);
                });
            }
        });
        for (req, cell) in todo.iter().zip(results) {
            let r = cell
                .into_inner()
                .unwrap()
                .expect("worker completed every claimed task");
            self.cache.insert(req.key(), Arc::new(r));
            self.executed += 1;
        }
    }

    /// The memoized result for one tuple; simulates inline (serially) if
    /// it is not cached yet.
    pub fn get(&mut self, cfg: &SystemConfig, w: &Workload, scale: RunScale) -> Arc<RunResult> {
        let key = cache_key(cfg, w, scale);
        if let Some(r) = self.cache.get(&key) {
            self.hits += 1;
            return Arc::clone(r);
        }
        let r = Arc::new(run_config(cfg.clone(), w, scale));
        self.cache.insert(key, Arc::clone(&r));
        self.executed += 1;
        r
    }

    /// Whether a tuple is already cached.
    pub fn contains(&self, cfg: &SystemConfig, w: &Workload, scale: RunScale) -> bool {
        self.cache.contains_key(&cache_key(cfg, w, scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_workloads::SynthConfig;

    fn synth() -> Workload {
        Workload::Synth(SynthConfig::light())
    }

    fn tiny_cfg(name: &str, cpus: usize) -> SystemConfig {
        let mut c = SystemConfig::piranha_pn(cpus.max(1));
        c.name = name.into();
        c.cpu_quantum = 500;
        c
    }

    #[test]
    fn plan_deduplicates_by_key() {
        let mut plan = RunPlan::new();
        assert!(plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny()));
        assert!(
            !plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny()),
            "exact dup dropped"
        );
        assert!(
            plan.add(tiny_cfg("A", 2), synth(), RunScale::tiny()),
            "config change kept"
        );
        assert!(
            plan.add(tiny_cfg("A", 1), synth(), RunScale::quick()),
            "scale change kept"
        );
        assert_eq!(plan.len(), 3);
        let mut other = RunPlan::new();
        other.add(tiny_cfg("A", 2), synth(), RunScale::tiny());
        other.add(tiny_cfg("B", 1), synth(), RunScale::tiny());
        plan.merge(other);
        assert_eq!(plan.len(), 4, "merge dedups against existing keys");
    }

    #[test]
    fn execute_memoizes_and_get_hits() {
        let mut plan = RunPlan::new();
        plan.add(tiny_cfg("A", 1), synth(), RunScale::tiny());
        plan.add(tiny_cfg("B", 1), synth(), RunScale::tiny());
        let mut h = Harness::serial();
        h.execute(&plan);
        assert_eq!(h.unique_runs(), 2);
        h.execute(&plan);
        assert_eq!(h.unique_runs(), 2, "re-executing a cached plan is free");
        let _ = h.get(&tiny_cfg("A", 1), &synth(), RunScale::tiny());
        assert_eq!(h.cache_hits(), 1);
        assert_eq!(h.unique_runs(), 2, "get() was served from cache");
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        let mut plan = RunPlan::new();
        for (name, cpus) in [("A", 1), ("B", 2), ("C", 1), ("D", 2), ("E", 1)] {
            plan.add(tiny_cfg(name, cpus), synth(), RunScale::tiny());
        }
        let mut serial = Harness::serial();
        serial.execute(&plan);
        let mut parallel = Harness::with_threads(4);
        parallel.execute(&plan);
        for req in plan.requests() {
            let a = serial.get(&req.cfg, &req.workload, req.scale);
            let b = parallel.get(&req.cfg, &req.workload, req.scale);
            assert_eq!(a.name, b.name);
            assert_eq!(a.window, b.window);
            assert_eq!(a.total_instrs(), b.total_instrs());
            assert_eq!(a.cpus.len(), b.cpus.len());
            for (x, y) in a.cpus.iter().zip(&b.cpus) {
                assert_eq!(
                    format!("{x:?}"),
                    format!("{y:?}"),
                    "per-CPU stats identical"
                );
            }
        }
    }

    #[test]
    fn get_runs_inline_on_miss() {
        let mut h = Harness::new();
        let r = h.get(&tiny_cfg("A", 1), &synth(), RunScale::tiny());
        assert!(r.total_instrs() >= 10_000);
        assert_eq!(h.unique_runs(), 1);
        assert_eq!(h.cache_hits(), 0);
    }

    #[test]
    fn lane_workers_do_not_change_multichip_results() {
        let cfg = tiny_cfg("MC", 2).scaled_to_chips(2);
        let serial = run_config_parallel(cfg.clone(), &synth(), RunScale::tiny(), 1);
        let threaded = run_config_parallel(cfg, &synth(), RunScale::tiny(), 2);
        assert_eq!(serial.fingerprint(), threaded.fingerprint());
        assert_eq!(serial.window, threaded.window);
        assert_eq!(serial.total_instrs(), threaded.total_instrs());
    }

    #[test]
    fn sampled_run_carries_estimate_and_respects_budget() {
        let sample = piranha_system::SampleConfig {
            warmup: 1_000,
            period: 5_000,
            detail_warmup: 100,
            window: 500,
            min_windows: 3,
            max_windows: 8,
            target_rel_ci: None,
        };
        let scale = RunScale {
            warmup: 5_000,
            measure: 20_000,
            to_completion: false,
        };
        let r = run_config_sampled(tiny_cfg("S", 2), &synth(), scale, &sample);
        let est = r.sample.as_ref().expect("sampled run carries estimate");
        assert!(est.windows >= 3);
        assert!(est.cpi_mean > 0.0);
        // The budget is per-CPU: warming plus detailed windows must
        // together cover scale.warmup + scale.measure on both CPUs.
        assert!(est.detailed_instrs + est.warmed_instrs >= 2 * 25_000);
    }

    #[test]
    fn traffic_run_carries_summary_and_is_memoized_separately() {
        let cfg = tiny_cfg("T", 2);
        let oltp = piranha_workloads::OltpConfig {
            txn_limit: 10,
            ..piranha_workloads::OltpConfig::paper_default()
        };
        let w = Workload::Oltp(oltp);
        let traffic = piranha_system::TrafficConfig::poisson(200.0);
        let r = run_config_traffic(cfg.clone(), &w, RunScale::completion(), traffic.clone());
        let t = r.traffic.as_ref().expect("traffic summary present");
        assert!(t.ledger.conserved(), "ledger: {:?}", t.ledger);
        assert_eq!(t.ledger.completed, 20, "both cores drained their limit");
        // The traffic config is part of the cache key, so loaded and
        // unloaded runs of the same (cfg, workload, scale) never collide.
        let mut loaded = cfg.clone();
        loaded.traffic = traffic;
        assert_ne!(
            cache_key(&cfg, &w, RunScale::completion()),
            cache_key(&loaded, &w, RunScale::completion())
        );
    }

    #[test]
    fn lane_width_reflects_actual_threads_not_the_setting() {
        // A single-chip machine runs the serial engine: its width is 1
        // no matter how wide --parallel is set.
        assert_eq!(effective_lane_width(&tiny_cfg("A", 2), 8), 1);
        // Multi-chip machines clamp the setting to their lane count.
        let multi = tiny_cfg("A", 2).scaled_to_chips(2);
        assert_eq!(effective_lane_width(&multi, 8), 2);
        assert_eq!(effective_lane_width(&multi, 1), 1);
        let wide = tiny_cfg("A", 2).scaled_to_chips(4);
        assert_eq!(effective_lane_width(&wide, 3), 3);
    }

    #[test]
    fn thread_env_override_parses() {
        // Only checks the parser contract; the env var itself is global
        // state we do not mutate in tests.
        assert!(default_threads() >= 1);
    }
}
