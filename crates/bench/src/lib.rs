//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation (the binaries in the `piranha` crate print the full-scale
//! versions; the benches measure simulator throughput on reduced runs so
//! `cargo bench` stays fast) plus component microbenchmarks.

#![warn(missing_docs)]

use piranha::workloads::Workload;
use piranha::{Machine, RunResult, SystemConfig};

/// Instructions per CPU for one bench iteration (small on purpose).
pub const BENCH_WARMUP: u64 = 20_000;
/// Measured instructions per CPU for one bench iteration.
pub const BENCH_MEASURE: u64 = 40_000;

/// Run one configuration at bench scale and return the measured window.
pub fn bench_run(cfg: SystemConfig, w: &Workload) -> RunResult {
    let mut m = Machine::new(cfg, w);
    m.run(BENCH_WARMUP, BENCH_MEASURE)
}
