//! Component microbenchmarks: raw throughput of the simulator's building
//! blocks (useful for tracking regressions in the substrate itself).
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::cache::{BankEvent, L1Cache, L1Config, L1Set, L2Bank, L2BankConfig, Mesi, Slot};
use piranha::kernel::{EventQueue, Prng};
use piranha::net::{encode22, Network, NetworkConfig, Packet, PacketKind, Topology};
use piranha::types::{CacheKind, CpuId, Lane, LineAddr, NodeId, ReqType, SimTime};

fn bench(c: &mut Criterion) {
    c.bench_function("components/event_queue_push_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime(i * 7 % 991), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            std::hint::black_box(sum)
        })
    });

    c.bench_function("components/l1_access_mix", |b| {
        let mut l1 = L1Cache::new(L1Config::paper_default());
        let mut rng = Prng::seed_from_u64(3);
        b.iter(|| {
            for _ in 0..1000 {
                let line = LineAddr(rng.below(4096));
                if !l1.access_read(line) {
                    l1.fill(line, Mesi::Exclusive, 0);
                }
            }
            std::hint::black_box(l1.len())
        })
    });

    c.bench_function("components/l2_bank_miss_path", |b| {
        b.iter(|| {
            let mut bank = L2Bank::new(L2BankConfig::paper_default(), 0, 1);
            let mut l1s = L1Set::new(8, L1Config::paper_default());
            let mut served = 0u64;
            for i in 0..500u64 {
                let slot = Slot::new(CpuId((i % 8) as u8), CacheKind::Data);
                let line = LineAddr(i % 64);
                if l1s.get(slot).state(line).readable() || bank.is_pending(line) {
                    continue;
                }
                let acts = bank.handle(
                    BankEvent::Miss {
                        slot,
                        req: ReqType::Read,
                        line,
                        home_local: true,
                        store_version: None,
                    },
                    &mut l1s,
                );
                served += acts.len() as u64;
                if bank.is_pending(line) {
                    bank.handle(
                        BankEvent::MemData {
                            line,
                            version: 0,
                            remote: piranha::types::RemoteSummary::None,
                        },
                        &mut l1s,
                    );
                }
            }
            std::hint::black_box(served)
        })
    });

    c.bench_function("components/router_mesh_16", |b| {
        b.iter(|| {
            let mut net: Network<u32> =
                Network::new(Topology::mesh(4, 4), NetworkConfig::paper_default());
            let mut rng = Prng::seed_from_u64(9);
            let mut last = SimTime::ZERO;
            for _ in 0..500 {
                let s = NodeId(rng.below(16) as u16);
                let mut d = NodeId(rng.below(16) as u16);
                if d == s {
                    d = NodeId((d.0 + 1) % 16);
                }
                let (t, _) = net.send(last, Packet::new(s, d, Lane::Low, PacketKind::Short, 0));
                last = SimTime(last.0 + (t.0 - last.0) / 7);
            }
            std::hint::black_box(net.delivered())
        })
    });

    c.bench_function("components/dc_balanced_codec", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in (0..1u32 << 13).step_by(7) {
                acc ^= encode22(p).unwrap();
            }
            std::hint::black_box(acc)
        })
    });
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
