//! Figure 8: the full-custom chip (P8F) versus OOO and ASIC P8.
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::workloads::{DssConfig, OltpConfig, Workload};
use piranha::SystemConfig;
use piranha_bench::bench_run;

fn bench(c: &mut Criterion) {
    let oltp = Workload::Oltp(OltpConfig::paper_default());
    let dss = Workload::Dss(DssConfig::paper_default());
    let mut g = c.benchmark_group("fig8");
    for (name, cfg) in [
        ("OOO", SystemConfig::ooo()),
        ("P8", SystemConfig::piranha_p8()),
        ("P8F", SystemConfig::piranha_p8f()),
    ] {
        let r = bench_run(cfg.clone(), &oltp);
        println!("fig8 OLTP {name}: {:.2} instrs/ns", r.throughput_ipns());
        g.bench_function(format!("oltp/{name}"), |b| {
            b.iter(|| std::hint::black_box(bench_run(cfg.clone(), &oltp).total_instrs()))
        });
        g.bench_function(format!("dss/{name}"), |b| {
            b.iter(|| std::hint::black_box(bench_run(cfg.clone(), &dss).total_instrs()))
        });
    }
    g.finish();
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
