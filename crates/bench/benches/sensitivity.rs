//! §4 sensitivity: the pessimistic P8 design point and the TPC-C-like
//! workload variant.
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::workloads::{OltpConfig, Workload};
use piranha::SystemConfig;
use piranha_bench::bench_run;

fn bench(c: &mut Criterion) {
    let tpcb = Workload::Oltp(OltpConfig::paper_default());
    let tpcc = Workload::Oltp(OltpConfig::tpcc_like());
    let p8 = bench_run(SystemConfig::piranha_p8(), &tpcb);
    let pess = bench_run(SystemConfig::piranha_p8_pessimistic(), &tpcb);
    println!(
        "sensitivity: pessimistic P8 keeps {:.0}% of P8's throughput",
        pess.throughput_ipns() / p8.throughput_ipns() * 100.0
    );
    let mut g = c.benchmark_group("sensitivity");
    g.bench_function("oltp/P8-pessimistic", |b| {
        b.iter(|| {
            std::hint::black_box(
                bench_run(SystemConfig::piranha_p8_pessimistic(), &tpcb).total_instrs(),
            )
        })
    });
    g.bench_function("tpcc/P8", |b| {
        b.iter(|| std::hint::black_box(bench_run(SystemConfig::piranha_p8(), &tpcc).total_instrs()))
    });
    g.finish();
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
