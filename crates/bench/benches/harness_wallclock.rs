//! Wall-clock comparison of the two full-evaluation paths: the old
//! per-figure serial loop (`all_figures_serial`) versus the parallel,
//! memoizing harness (`all_figures`). The memoized path runs each
//! unique `(config, workload, scale)` tuple once and fans the unique
//! runs out over worker threads, so the gap widens with core count.
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::experiments::{self, RunScale};

fn bench(c: &mut Criterion) {
    // Small enough for Criterion iteration, big enough that simulation
    // dominates the harness bookkeeping.
    let scale = RunScale {
        warmup: 10_000,
        measure: 20_000,
        ..RunScale::tiny()
    };
    let serial = experiments::all_figures_serial(scale);
    let parallel = experiments::all_figures(scale);
    assert_eq!(serial, parallel, "paths must agree before timing them");

    let mut g = c.benchmark_group("all_figures");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(experiments::all_figures_serial(scale)))
    });
    g.bench_function("parallel_memoized", |b| {
        b.iter(|| std::hint::black_box(experiments::all_figures(scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
