//! §2.5.3 ablation: cruise-missile invalidates (4 routes) versus
//! conventional point-to-point invalidation (one message per sharer) on
//! a 4-chip sharing storm.
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::workloads::{SynthConfig, Workload};
use piranha::{Machine, SystemConfig};

fn storm() -> Workload {
    // Read-mostly sharing lets sharer sets grow to ~7 nodes before the
    // occasional store invalidates them — the regime where the 4-route
    // CMI budget binds.
    Workload::Synth(SynthConfig {
        load_frac: 0.45,
        store_frac: 0.02,
        shared_frac: 0.9,
        shared_bytes: 16 << 10,
        ..SynthConfig::light()
    })
}

fn run(routes: usize) -> (f64, u64) {
    // Eight chips: up to seven sharers per line, so the 4-route CMI
    // budget actually binds (with ≤5 nodes it degenerates to
    // point-to-point anyway).
    let mut cfg = SystemConfig::piranha_pn(1).scaled_to_chips(8);
    cfg.cmi_routes = routes;
    let mut m = Machine::new(cfg, &storm());
    let r = m.run(8_000, 20_000);
    (r.throughput_ipns(), m.network().delivered())
}

fn bench(c: &mut Criterion) {
    let (t4, m4) = run(4);
    let (tp, mp) = run(1024); // degenerates to point-to-point invals
    println!(
        "cmi: 4 routes -> {t4:.3} instrs/ns ({m4} msgs) | point-to-point -> {tp:.3} instrs/ns ({mp} msgs)"
    );
    println!(
        "cmi latency claim (paper: 'superior invalidation latencies by avoiding \
serializations'): {:.2}x throughput under an invalidation storm; the \
message bound itself (<=4 injected invals, <=128 buffered headers per \
node) is structural and unit-tested in piranha-protocol::msg",
        t4 / tp
    );
    let mut g = c.benchmark_group("cmi");
    g.bench_function("routes4", |b| b.iter(|| std::hint::black_box(run(4))));
    g.bench_function("point_to_point", |b| {
        b.iter(|| std::hint::black_box(run(1024)))
    });
    g.finish();
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
