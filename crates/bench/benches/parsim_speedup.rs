//! Wall-clock speedup of the conservative parallel-in-space engine
//! (`piranha-parsim`) on a fig8-style multi-chip run: a 4-chip machine
//! of 4-CPU Piranha chips at quick scale, executed serially (1 lane
//! worker) and with 2 and 4 lane workers. The runs are bit-identical by
//! construction — the bench asserts the fingerprints *and* the
//! engine-structure counters (rounds, windows, merged events) match
//! before it trusts any timing — so the only thing that changes is
//! wall-clock.
//!
//! Writes the measurements to `BENCH_parsim.json` at the repo root,
//! including the coordination-cost profile CI keeps a ceiling on:
//! `rounds_per_us` (barrier rendezvous per simulated microsecond),
//! windows, the empty-window fraction, and mean events per window. On a
//! machine with ≥ 4 cores the 2-worker run must be ≥ 1.4× faster than
//! serial and the 4-worker run ≥ 2.0× (the ISSUE acceptance bar); on
//! smaller machines the speedups are reported but not asserted, since
//! oversubscribed lane threads cannot beat the serial loop.
//!
//! Not a Criterion target on purpose: one quick-scale multi-chip run is
//! seconds, not microseconds, so a single timed run per worker count is
//! the right measurement (Criterion's sampling would multiply minutes).

use std::time::Instant;

use piranha::experiments::{self, RunScale};
use piranha::harness::run_config_parallel_machine;
use piranha::{ParsimStats, SystemConfig};

fn main() {
    let cfg = SystemConfig::piranha_pn(4).scaled_to_chips(4);
    let w = experiments::oltp();
    let scale = RunScale::quick();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parsim_speedup: {} on OLTP at quick scale, {cores} core(s)",
        cfg.name
    );

    let t0 = Instant::now();
    let (serial, m) = run_config_parallel_machine(cfg.clone(), &w, scale, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let stats: ParsimStats = m.parsim_stats();
    let sim_us = m.now().as_ns() as f64 / 1000.0;
    let rounds_per_us = stats.rounds as f64 / sim_us;
    let empty_fraction = stats.empty_windows as f64 / stats.windows.max(1) as f64;
    let events_per_window = stats.events as f64 / stats.windows.max(1) as f64;
    println!(
        "  workers=1  {serial_s:>7.2}s  fp {:#018x}",
        serial.fingerprint()
    );
    println!(
        "  engine: {} rounds / {} windows over {sim_us:.0} simulated µs \
         ({rounds_per_us:.2} rounds/µs, {:.1}% windows empty, {events_per_window:.1} events/window)",
        stats.rounds,
        stats.windows,
        empty_fraction * 100.0
    );
    assert!(
        stats.rounds * 5 <= stats.windows,
        "train batching must cut rendezvous ≥ 5x below the per-window count \
         ({} rounds for {} windows)",
        stats.rounds,
        stats.windows
    );

    let mut rows = Vec::new();
    for workers in [2usize, 4] {
        let t0 = Instant::now();
        let (r, m) = run_config_parallel_machine(cfg.clone(), &w, scale, workers);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            r.fingerprint(),
            serial.fingerprint(),
            "parallel run at {workers} workers is not bit-identical to serial"
        );
        assert_eq!(
            m.parsim_stats(),
            stats,
            "engine counters diverged at {workers} workers — they must be a \
             function of the simulation, not the thread schedule"
        );
        let speedup = serial_s / secs;
        println!("  workers={workers}  {secs:>7.2}s  speedup {speedup:.2}x (bit-identical)");
        rows.push((workers, secs, speedup));
    }

    let asserted = cores >= 4;
    if asserted {
        let bars = [(2usize, 1.4f64), (4, 2.0)];
        for ((workers, _, speedup), (w2, bar)) in rows.iter().zip(bars) {
            assert_eq!(*workers, w2);
            assert!(
                *speedup >= bar,
                "{workers}-worker speedup {speedup:.2}x < {bar}x on a {cores}-core machine"
            );
        }
    } else {
        println!("  (speedup bars not asserted: {cores} core(s) < 4)");
        // Unasserted is not the same as fine: a sub-1.0 "speedup" means
        // the parallel engine *lost* to the serial loop, and silence
        // here would let that rot unnoticed on small CI machines.
        for (workers, _, speedup) in &rows {
            if *speedup < 1.0 {
                eprintln!(
                    "WARN: parsim {workers}-worker run was SLOWER than serial \
                     ({speedup:.2}x) on this {cores}-core host — unasserted, \
                     but investigate before trusting parallel-run timings"
                );
            }
        }
    }

    let worker_rows: Vec<String> = rows
        .iter()
        .map(|(workers, secs, speedup)| {
            format!("{{\"workers\":{workers},\"seconds\":{secs:.3},\"speedup\":{speedup:.3}}}")
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"parsim_speedup\",\"config\":\"{}\",\"workload\":\"oltp\",\
         \"scale\":\"quick\",\"cores\":{cores},\"host_cores\":{cores},\
         \"serial_seconds\":{serial_s:.3},\
         \"rounds\":{},\"windows\":{},\"merged_events\":{},\"events\":{},\
         \"simulated_us\":{sim_us:.3},\"rounds_per_us\":{rounds_per_us:.3},\
         \"empty_window_fraction\":{empty_fraction:.4},\
         \"events_per_window\":{events_per_window:.2},\
         \"bit_identical\":true,\"speedup_asserted\":{asserted},\
         \"min_required_speedup\":{{\"2\":1.4,\"4\":2.0}},\"runs\":[{}]}}\n",
        cfg.name,
        stats.rounds,
        stats.windows,
        stats.merged_events,
        stats.events,
        worker_rows.join(",")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parsim.json");
    std::fs::write(&path, &json).expect("writing BENCH_parsim.json");
    println!(
        "  report -> {}",
        path.canonicalize().unwrap_or(path).display()
    );
}
