//! Wall-clock speedup of the conservative parallel-in-space engine
//! (`piranha-parsim`) on a fig8-style multi-chip run: a 4-chip machine
//! of 4-CPU Piranha chips at quick scale, executed serially (1 lane
//! worker) and with 2 and 4 lane workers. The runs are bit-identical by
//! construction — the bench asserts the fingerprints match before it
//! trusts any timing — so the only thing that changes is wall-clock.
//!
//! Writes the measurements to `BENCH_parsim.json` at the repo root. On
//! a machine with ≥ 4 cores the 2-worker run must be ≥ 1.4× faster than
//! serial (the ISSUE acceptance bar); on smaller machines the speedup
//! is reported but not asserted, since oversubscribed lane threads
//! cannot beat the serial loop.
//!
//! Not a Criterion target on purpose: one quick-scale multi-chip run is
//! seconds, not microseconds, so a single timed run per worker count is
//! the right measurement (Criterion's sampling would multiply minutes).

use std::time::Instant;

use piranha::experiments::{self, RunScale};
use piranha::harness::run_config_parallel;
use piranha::SystemConfig;

fn main() {
    let cfg = SystemConfig::piranha_pn(4).scaled_to_chips(4);
    let w = experiments::oltp();
    let scale = RunScale::quick();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parsim_speedup: {} on OLTP at quick scale, {cores} core(s)",
        cfg.name
    );

    let t0 = Instant::now();
    let serial = run_config_parallel(cfg.clone(), &w, scale, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    println!(
        "  workers=1  {serial_s:>7.2}s  fp {:#018x}",
        serial.fingerprint()
    );

    let mut rows = Vec::new();
    for workers in [2usize, 4] {
        let t0 = Instant::now();
        let r = run_config_parallel(cfg.clone(), &w, scale, workers);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            r.fingerprint(),
            serial.fingerprint(),
            "parallel run at {workers} workers is not bit-identical to serial"
        );
        let speedup = serial_s / secs;
        println!("  workers={workers}  {secs:>7.2}s  speedup {speedup:.2}x (bit-identical)");
        rows.push((workers, secs, speedup));
    }

    let asserted = cores >= 4;
    let two_worker_speedup = rows[0].2;
    if asserted {
        assert!(
            two_worker_speedup >= 1.4,
            "2-worker speedup {two_worker_speedup:.2}x < 1.4x on a {cores}-core machine"
        );
    } else {
        println!("  (speedup bar not asserted: {cores} core(s) < 4)");
    }

    let worker_rows: Vec<String> = rows
        .iter()
        .map(|(workers, secs, speedup)| {
            format!("{{\"workers\":{workers},\"seconds\":{secs:.3},\"speedup\":{speedup:.3}}}")
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"parsim_speedup\",\"config\":\"{}\",\"workload\":\"oltp\",\
         \"scale\":\"quick\",\"cores\":{cores},\"serial_seconds\":{serial_s:.3},\
         \"bit_identical\":true,\"speedup_asserted\":{asserted},\
         \"min_required_speedup\":1.4,\"runs\":[{}]}}\n",
        cfg.name,
        worker_rows.join(",")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parsim.json");
    std::fs::write(&path, &json).expect("writing BENCH_parsim.json");
    println!(
        "  report -> {}",
        path.canonicalize().unwrap_or(path).display()
    );
}
