//! Table 1: configuration parameters (regeneration is pure formatting;
//! the bench guards against accidental cost creep in config assembly).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rendered = piranha::experiments::table1();
    println!("{rendered}");
    c.bench_function("table1/render", |b| {
        b.iter(|| std::hint::black_box(piranha::experiments::table1()))
    });
}

fn cfg() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
