//! Figure 6: core-count scaling of one Piranha chip (speedup and L1-miss
//! breakdown).
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::workloads::{OltpConfig, Workload};
use piranha::SystemConfig;
use piranha_bench::bench_run;

fn bench(c: &mut Criterion) {
    let w = Workload::Oltp(OltpConfig::paper_default());
    let mut g = c.benchmark_group("fig6");
    for n in [1usize, 2, 4, 8] {
        let r = bench_run(SystemConfig::piranha_pn(n), &w);
        let (h, f, m) = r.l1_miss_breakdown();
        println!(
            "fig6 P{n}: {:.2} instrs/ns | L1 misses: {:.0}% L2, {:.0}% fwd, {:.0}% mem",
            r.throughput_ipns(),
            h * 100.0,
            f * 100.0,
            m * 100.0
        );
        g.bench_function(format!("oltp/P{n}"), |b| {
            b.iter(|| {
                std::hint::black_box(bench_run(SystemConfig::piranha_pn(n), &w).total_instrs())
            })
        });
    }
    g.finish();
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
