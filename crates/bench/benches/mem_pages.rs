//! §2.4: RDRAM open-page behaviour — the raw channel model and the
//! OLTP-driven page hit rate.
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::mem::{Rdram, RdramConfig};
use piranha::types::{LineAddr, SimTime};
use piranha::workloads::{OltpConfig, Workload};
use piranha::{Machine, SystemConfig};

fn bench(c: &mut Criterion) {
    let mut m = Machine::new(
        SystemConfig::piranha_p8(),
        &Workload::Oltp(OltpConfig::paper_default()),
    );
    m.run(piranha_bench::BENCH_WARMUP, piranha_bench::BENCH_MEASURE);
    println!(
        "mem_pages: OLTP open-page hit rate {:.0}% (paper claims >50% at full block traffic)",
        m.mem_page_hit_rate() * 100.0
    );
    c.bench_function("mem/rdram_sequential_access", |b| {
        b.iter(|| {
            let mut r = Rdram::new(RdramConfig::with_banks(8));
            let mut t = SimTime::ZERO;
            for i in 0..512u64 {
                t = r.access(t, LineAddr(i * 8)).full;
            }
            std::hint::black_box(r.page_hit_rate())
        })
    });
    c.bench_function("mem/rdram_random_access", |b| {
        b.iter(|| {
            let mut r = Rdram::new(RdramConfig::with_banks(8));
            let mut rng = piranha::kernel::Prng::seed_from_u64(1);
            let mut t = SimTime::ZERO;
            for _ in 0..512 {
                t = r.access(t, LineAddr(rng.below(1 << 20))).full;
            }
            std::hint::black_box(r.page_hit_rate())
        })
    });
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
