//! Figure 7: glueless multi-chip scaling with the inter-node protocol.
use criterion::{criterion_group, criterion_main, Criterion};
use piranha::workloads::{OltpConfig, Workload};
use piranha::SystemConfig;
use piranha_bench::bench_run;

fn bench(c: &mut Criterion) {
    let w = Workload::Oltp(OltpConfig::paper_default());
    let mut g = c.benchmark_group("fig7");
    let mut base = None;
    for chips in [1usize, 2, 4] {
        let cfg = if chips == 1 {
            SystemConfig::piranha_pn(4)
        } else {
            SystemConfig::piranha_pn(4).scaled_to_chips(chips)
        };
        let r = bench_run(cfg.clone(), &w);
        let b0 = *base.get_or_insert(r.throughput_ipns());
        println!(
            "fig7 {} chips: speedup {:.2}",
            chips,
            r.throughput_ipns() / b0
        );
        g.bench_function(format!("oltp/chips{chips}"), |b| {
            b.iter(|| std::hint::black_box(bench_run(cfg.clone(), &w).total_instrs()))
        });
    }
    g.finish();
}

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
