//! SMARTS-style statistical sampling over a timing simulation.
//!
//! Full-detail simulation pays the detailed-model cost on every
//! instruction, which caps how much work a run can afford. Systematic
//! sampling fixes that: the machine spends most of its time in a cheap
//! **functional-warming** mode (instructions retire and keep the
//! caches, TLBs and directory warm, but no detailed timing events run)
//! and periodically drops into a short **detailed measurement window**.
//! Per-window CPI and stall-fraction samples are aggregated into a mean
//! with a 95% confidence interval via standard-error machinery, so the
//! estimate carries its own error bar.
//!
//! This crate is the statistics half of the scheme and is deliberately
//! dependency-free: [`SampleConfig`] describes the plan, [`SampleDriver`]
//! alternates any [`SampleTarget`] (the system crate implements it for
//! its `Machine`) between the two regimes, [`Estimator`] does the
//! standard-error arithmetic, and [`SampleEstimate`] is the result. The
//! driver is deterministic: the sample schedule is a pure function of
//! the configuration and the target's retirement progress, never of
//! wall-clock or randomness.

#![warn(missing_docs)]

/// How a run is sampled. All instruction counts are **per CPU**, like
/// the harness's `RunScale` fields; targets scale them to aggregate
/// counts internally.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConfig {
    /// Functional-warming instructions before the first detailed window
    /// (caches, TLBs, directory, branch predictors).
    pub warmup: u64,
    /// Sampling period: instructions from one detailed-window start to
    /// the next. The functional share of each period is
    /// `period - detail_warmup - window`.
    pub period: u64,
    /// Detailed, *unmeasured* lead-in instructions before each window,
    /// re-establishing the timing state (queues, in-flight misses) that
    /// functional warming does not model.
    pub detail_warmup: u64,
    /// Measured detailed instructions per window.
    pub window: u64,
    /// Minimum number of measured windows before the adaptive rule may
    /// stop the measurement.
    pub min_windows: usize,
    /// Hard ceiling on measured windows. In fixed mode (no confidence
    /// target) the driver samples one window every period until this
    /// ceiling, so windows span the whole stream; in adaptive mode it
    /// stops here even if the confidence target was not reached.
    pub max_windows: usize,
    /// Optional target relative CI half-width: keep taking windows past
    /// `min_windows` until `cpi_ci95 / cpi_mean` falls at or below this
    /// (or `max_windows` is hit).
    pub target_rel_ci: Option<f64>,
}

impl SampleConfig {
    /// A plan sampling `window` detailed instructions out of every
    /// `period`, with defaults for the remaining knobs: warming one full
    /// period before the first window, a detailed lead-in of a tenth of
    /// the window, at least 8 and at most 64 windows, no adaptive
    /// target.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < window` and `window < period`.
    pub fn new(period: u64, window: u64) -> Self {
        assert!(window > 0, "a zero-length detailed window measures nothing");
        assert!(
            window < period,
            "the detailed window ({window}) must be shorter than the sampling period ({period})"
        );
        let detail_warmup = (window / 10).max(1).min(period - window);
        SampleConfig {
            warmup: period,
            period,
            detail_warmup,
            window,
            min_windows: 8,
            max_windows: 64,
            target_rel_ci: None,
        }
    }

    /// Builder-style adaptive mode: keep sampling until the CPI
    /// estimate's relative 95% CI half-width is at or below `rel`.
    pub fn with_target_rel_ci(mut self, rel: f64) -> Self {
        self.target_rel_ci = Some(rel);
        self
    }

    /// The functional-warming instructions in each period after the
    /// first (at least 1, so the driver always makes progress).
    pub fn warm_per_period(&self) -> u64 {
        self.period
            .saturating_sub(self.detail_warmup + self.window)
            .max(1)
    }

    /// The detailed fraction this plan aims for:
    /// `(detail_warmup + window) / period`.
    pub fn planned_detailed_fraction(&self) -> f64 {
        (self.detail_warmup + self.window) as f64 / self.period as f64
    }
}

/// What one detailed measurement window observed, in aggregate
/// (summed over CPUs) core-cycle units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Instructions retired during the detailed lead-in (detailed cost,
    /// not measured).
    pub lead_instrs: u64,
    /// Instructions retired in the measured window.
    pub instrs: u64,
    /// Core cycles elapsed in the measured window, summed over CPUs.
    pub cycles: u64,
    /// Memory-stall cycles in the measured window, summed over CPUs.
    pub stall_cycles: u64,
}

impl WindowSample {
    /// The window's cycles-per-instruction sample.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instrs.max(1) as f64
    }

    /// The window's memory-stall fraction sample.
    pub fn stall_fraction(&self) -> f64 {
        self.stall_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// A simulation the driver can alternate between regimes. Instruction
/// counts are per CPU, mirroring [`SampleConfig`].
pub trait SampleTarget {
    /// Fast-forward `instrs` instructions per CPU in functional-warming
    /// mode; returns the aggregate instructions actually retired (less
    /// than requested when streams end or a budget is hit).
    fn functional_warm(&mut self, instrs: u64) -> u64;

    /// Run one detailed window: `lead` unmeasured lead-in instructions
    /// per CPU, then `measure` measured ones. The target must leave
    /// itself ready to re-enter functional mode afterwards (drained of
    /// in-flight detailed work).
    fn detailed_window(&mut self, lead: u64, measure: u64) -> WindowSample;

    /// Whether the run is over: every stream ended, or the target's own
    /// instruction budget is exhausted.
    fn done(&self) -> bool;
}

/// Mean ± 95% confidence interval over a stream of samples, via the
/// standard error of the mean with Student-t critical values (so small
/// window counts get honestly wider intervals).
///
/// # Examples
///
/// ```
/// use piranha_sample::Estimator;
/// let mut e = Estimator::new();
/// for x in [1.0, 1.1, 0.9, 1.0] {
///     e.push(x);
/// }
/// assert!((e.mean() - 1.0).abs() < 1e-12);
/// assert!(e.ci95() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Estimator {
    n: u64,
    sum: f64,
    sum_sq: f64,
}

/// Two-sided 95% Student-t critical values for 1..=30 degrees of
/// freedom; beyond 30 the normal 1.96 is close enough.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% two-sided Student-t critical value for `df` degrees of
/// freedom (1.96 beyond the table; infinite below one degree).
pub fn t95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => T95[(d - 1) as usize],
        _ => 1.96,
    }
}

impl Estimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0) // guard the tiny negative from cancellation
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// The 95% confidence-interval half-width. Infinite for a single
    /// sample (one window supports no interval), zero when empty.
    pub fn ci95(&self) -> f64 {
        match self.n {
            0 => 0.0,
            1 => f64::INFINITY,
            _ => t95(self.n - 1) * self.std_error(),
        }
    }

    /// `ci95 / |mean|` — the relative half-width the adaptive mode
    /// targets. Infinite when the mean is zero or only one sample
    /// exists.
    pub fn rel_ci95(&self) -> f64 {
        let m = self.mean().abs();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.ci95() / m
        }
    }
}

/// The sampled run's aggregate estimate: what a `RunResult` carries in
/// place of exact whole-run timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleEstimate {
    /// Mean cycles-per-instruction over the measured windows.
    pub cpi_mean: f64,
    /// 95% confidence-interval half-width of `cpi_mean`.
    pub cpi_ci95: f64,
    /// Mean memory-stall fraction over the measured windows.
    pub stall_mean: f64,
    /// 95% confidence-interval half-width of `stall_mean`.
    pub stall_ci: f64,
    /// Number of measured detailed windows.
    pub windows: u64,
    /// Fraction of all retired instructions executed under the detailed
    /// model (lead-ins included): the cost knob sampling exists to
    /// shrink.
    pub detailed_fraction: f64,
    /// Aggregate instructions retired under the detailed model.
    pub detailed_instrs: u64,
    /// Aggregate instructions retired in functional-warming mode.
    pub warmed_instrs: u64,
}

impl SampleEstimate {
    /// Whether `cpi` (e.g. a full-detail reference measurement) falls
    /// inside this estimate's 95% confidence interval.
    pub fn covers_cpi(&self, cpi: f64) -> bool {
        (cpi - self.cpi_mean).abs() <= self.cpi_ci95
    }

    /// Digest every field bit-exactly (f64s by `to_bits`), for
    /// determinism tests: two sampled runs with the same seed must
    /// produce bit-identical estimates.
    pub fn digest(&self) -> u64 {
        let repr = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.cpi_mean.to_bits(),
            self.cpi_ci95.to_bits(),
            self.stall_mean.to_bits(),
            self.stall_ci.to_bits(),
            self.windows,
            self.detailed_fraction.to_bits(),
            self.detailed_instrs,
            self.warmed_instrs,
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Drives a [`SampleTarget`] through a [`SampleConfig`]'s alternation of
/// functional warming and detailed windows, accumulating the estimate.
#[derive(Debug)]
pub struct SampleDriver<'a> {
    cfg: &'a SampleConfig,
    cpi: Estimator,
    stall: Estimator,
    windows: u64,
    detailed_instrs: u64,
    warmed_instrs: u64,
}

impl<'a> SampleDriver<'a> {
    /// A driver for one plan.
    pub fn new(cfg: &'a SampleConfig) -> Self {
        SampleDriver {
            cfg,
            cpi: Estimator::new(),
            stall: Estimator::new(),
            windows: 0,
            detailed_instrs: 0,
            warmed_instrs: 0,
        }
    }

    /// Whether measurement should continue (as opposed to fast-forwarding
    /// the rest of the run functionally).
    fn want_more_windows(&self) -> bool {
        if self.windows >= self.cfg.max_windows as u64 {
            return false;
        }
        if (self.windows as usize) < self.cfg.min_windows {
            return true;
        }
        match self.cfg.target_rel_ci {
            // Adaptive: past the minimum, keep going only while the CPI
            // interval is wider than the target.
            Some(rel) => self.cpi.rel_ci95() > rel,
            // Fixed: sample every period until `max_windows`, so the
            // windows span the whole stream. Stopping at `min_windows`
            // would measure only the run's prologue, which biases the
            // estimate badly on non-stationary workloads (OLTP CPI
            // drifts as the caches and working set settle).
            None => true,
        }
    }

    /// Run the full alternation until the target reports done, and
    /// package the estimate.
    pub fn run<T: SampleTarget>(mut self, target: &mut T) -> SampleEstimate {
        self.warmed_instrs += target.functional_warm(self.cfg.warmup);
        while !target.done() {
            if self.want_more_windows() {
                let s = target.detailed_window(self.cfg.detail_warmup, self.cfg.window);
                self.detailed_instrs += s.lead_instrs + s.instrs;
                if s.instrs > 0 && s.cycles > 0 {
                    self.windows += 1;
                    self.cpi.push(s.cpi());
                    self.stall.push(s.stall_fraction());
                }
                if target.done() {
                    break;
                }
                self.warmed_instrs += target.functional_warm(self.cfg.warm_per_period());
            } else {
                // Measurement satisfied: fast-forward the remainder in
                // period-sized functional chunks.
                let n = target.functional_warm(self.cfg.period);
                if n == 0 {
                    break; // no retirement progress possible: stop
                }
                self.warmed_instrs += n;
            }
        }
        self.finish()
    }

    fn finish(self) -> SampleEstimate {
        let total = self.detailed_instrs + self.warmed_instrs;
        SampleEstimate {
            cpi_mean: self.cpi.mean(),
            cpi_ci95: self.cpi.ci95(),
            stall_mean: self.stall.mean(),
            stall_ci: self.stall.ci95(),
            windows: self.windows,
            detailed_fraction: if total == 0 {
                0.0
            } else {
                self.detailed_instrs as f64 / total as f64
            },
            detailed_instrs: self.detailed_instrs,
            warmed_instrs: self.warmed_instrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_mean_and_ci() {
        let mut e = Estimator::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.ci95(), 0.0);
        e.push(2.0);
        assert_eq!(e.mean(), 2.0);
        assert!(e.ci95().is_infinite(), "one sample supports no interval");
        e.push(4.0);
        assert!((e.mean() - 3.0).abs() < 1e-12);
        // var = 2, se = 1, t95(1) = 12.706
        assert!((e.std_error() - 1.0).abs() < 1e-12);
        assert!((e.ci95() - 12.706).abs() < 1e-9);
    }

    #[test]
    fn estimator_identical_samples_have_zero_interval() {
        let mut e = Estimator::new();
        for _ in 0..10 {
            e.push(1.5);
        }
        assert!((e.mean() - 1.5).abs() < 1e-12);
        assert!(e.variance() < 1e-18);
        assert!(e.ci95() < 1e-9);
        assert!(e.rel_ci95() < 1e-9);
    }

    #[test]
    fn t_table_shrinks_toward_normal() {
        assert!(t95(0).is_infinite());
        assert!(t95(1) > t95(2));
        assert!(t95(30) > t95(31));
        assert_eq!(t95(31), 1.96);
        assert_eq!(t95(1000), 1.96);
    }

    #[test]
    fn config_derives_sensible_defaults() {
        let c = SampleConfig::new(100_000, 10_000);
        assert_eq!(c.detail_warmup, 1_000);
        assert_eq!(c.warm_per_period(), 89_000);
        assert!((c.planned_detailed_fraction() - 0.11).abs() < 1e-12);
        assert!(c.target_rel_ci.is_none());
        let a = c.with_target_rel_ci(0.05);
        assert_eq!(a.target_rel_ci, Some(0.05));
    }

    #[test]
    #[should_panic(expected = "shorter than the sampling period")]
    fn window_must_fit_in_period() {
        let _ = SampleConfig::new(1_000, 1_000);
    }

    /// A fake target: constant-CPI detailed windows over a bounded
    /// instruction stream, counting the mode alternation.
    struct Fake {
        remaining: u64,
        cpi_x1000: u64,
        warms: u64,
        windows: u64,
    }

    impl Fake {
        fn new(total: u64, cpi_x1000: u64) -> Self {
            Fake {
                remaining: total,
                cpi_x1000,
                warms: 0,
                windows: 0,
            }
        }
        fn take(&mut self, n: u64) -> u64 {
            let got = n.min(self.remaining);
            self.remaining -= got;
            got
        }
    }

    impl SampleTarget for Fake {
        fn functional_warm(&mut self, instrs: u64) -> u64 {
            self.warms += 1;
            self.take(instrs)
        }
        fn detailed_window(&mut self, lead: u64, measure: u64) -> WindowSample {
            self.windows += 1;
            let lead_instrs = self.take(lead);
            let instrs = self.take(measure);
            let cycles = instrs * self.cpi_x1000 / 1000;
            WindowSample {
                lead_instrs,
                instrs,
                cycles,
                stall_cycles: cycles / 4,
            }
        }
        fn done(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn driver_fixed_mode_respects_max_windows() {
        let cfg = SampleConfig {
            warmup: 0,
            period: 10_000,
            detail_warmup: 100,
            window: 1_000,
            min_windows: 2,
            max_windows: 3,
            target_rel_ci: None,
        };
        let mut t = Fake::new(200_000, 1_500);
        let est = SampleDriver::new(&cfg).run(&mut t);
        assert_eq!(est.windows, 3, "fixed mode still honours the ceiling");
        assert!(t.done(), "remainder fast-forwarded functionally");
        assert_eq!(est.detailed_instrs + est.warmed_instrs, 200_000);
    }

    #[test]
    fn driver_fixed_mode_samples_across_the_whole_stream() {
        let cfg = SampleConfig {
            warmup: 50_000,
            period: 100_000,
            detail_warmup: 1_000,
            window: 10_000,
            min_windows: 5,
            max_windows: 64,
            target_rel_ci: None,
        };
        let mut t = Fake::new(2_000_000, 1_800);
        let est = SampleDriver::new(&cfg).run(&mut t);
        // One window per period over the whole stream: 50k warmup, then
        // 100k consumed per iteration until the 2M run out — not just
        // `min_windows` measured up front.
        assert_eq!(est.windows, 20);
        assert!((est.cpi_mean - 1.8).abs() < 1e-9);
        assert!(est.cpi_ci95 < 1e-6, "constant CPI has no spread");
        assert!((est.stall_mean - 0.25).abs() < 1e-9);
        assert!(t.done(), "driver fast-forwards to the end of the stream");
        assert_eq!(
            est.detailed_instrs + est.warmed_instrs,
            2_000_000,
            "every instruction is accounted to exactly one regime"
        );
        assert!(
            est.detailed_fraction < 0.2,
            "detailed share stays small: {}",
            est.detailed_fraction
        );
    }

    #[test]
    fn driver_adaptive_mode_stops_on_tight_interval() {
        let cfg = SampleConfig {
            warmup: 10_000,
            period: 50_000,
            detail_warmup: 500,
            window: 5_000,
            min_windows: 3,
            max_windows: 64,
            target_rel_ci: Some(0.05),
        };
        // Constant CPI: the interval collapses immediately, so adaptive
        // mode stops at min_windows.
        let mut t = Fake::new(5_000_000, 2_000);
        let est = SampleDriver::new(&cfg).run(&mut t);
        assert_eq!(est.windows, 3);
        assert!(est.cpi_ci95 <= 0.05 * est.cpi_mean);
    }

    #[test]
    fn driver_adaptive_mode_respects_max_windows() {
        let cfg = SampleConfig {
            warmup: 1_000,
            period: 10_000,
            detail_warmup: 100,
            window: 1_000,
            min_windows: 2,
            max_windows: 4,
            target_rel_ci: Some(0.0), // unreachable target
        };
        /// Alternating CPI so the interval never closes.
        struct Noisy {
            inner: Fake,
        }
        impl SampleTarget for Noisy {
            fn functional_warm(&mut self, instrs: u64) -> u64 {
                self.inner.functional_warm(instrs)
            }
            fn detailed_window(&mut self, lead: u64, measure: u64) -> WindowSample {
                let mut s = self.inner.detailed_window(lead, measure);
                if self.inner.windows % 2 == 0 {
                    s.cycles *= 2;
                }
                s
            }
            fn done(&self) -> bool {
                self.inner.done()
            }
        }
        let mut t = Noisy {
            inner: Fake::new(500_000, 1_000),
        };
        let est = SampleDriver::new(&cfg).run(&mut t);
        assert_eq!(est.windows, 4, "capped at max_windows");
        assert!(est.cpi_ci95 > 0.0);
        assert!(t.done());
    }

    #[test]
    fn window_sample_ratios() {
        let s = WindowSample {
            lead_instrs: 10,
            instrs: 1_000,
            cycles: 2_500,
            stall_cycles: 500,
        };
        assert!((s.cpi() - 2.5).abs() < 1e-12);
        assert!((s.stall_fraction() - 0.2).abs() < 1e-12);
        let z = WindowSample::default();
        assert_eq!(z.cpi(), 0.0);
        assert_eq!(z.stall_fraction(), 0.0);
    }

    #[test]
    fn estimate_coverage_and_digest_determinism() {
        let mk = || SampleEstimate {
            cpi_mean: 2.0,
            cpi_ci95: 0.1,
            stall_mean: 0.3,
            stall_ci: 0.02,
            windows: 8,
            detailed_fraction: 0.1,
            detailed_instrs: 80_000,
            warmed_instrs: 720_000,
        };
        let a = mk();
        assert!(a.covers_cpi(2.05));
        assert!(!a.covers_cpi(2.2));
        assert_eq!(a.digest(), mk().digest());
        let mut b = mk();
        b.cpi_mean = 2.0 + 1e-12;
        assert_ne!(a.digest(), b.digest(), "digest is bit-exact");
    }
}
