//! The TPC-D-Query-6-like DSS workload engine (paper §3.1).
//!
//! "Query 6 scans the largest table in the database to assess the
//! increase in revenue that would have resulted if some discounts were
//! eliminated." The paper parallelizes it with Oracle Parallel Query
//! into four server processes per CPU over an in-memory database.
//!
//! Architecturally, Q6 is a streaming predicate + aggregate: sequential
//! reads with excellent spatial locality, a tiny instruction footprint
//! ("tight loops"), long dependency distances (each tuple is independent,
//! so wide-issue out-of-order cores profit), and a small memory-stall
//! component. Each CPU scans a disjoint chunk of the lineitem-like table
//! with its four slaves interleaved.

use piranha_cpu::{InstrStream, OpKind, StreamOp};
use piranha_kernel::Prng;
use piranha_types::Addr;

use crate::layout::Layout;

/// Tuning knobs of the DSS scan engine.
#[derive(Debug, Clone)]
pub struct DssConfig {
    /// Bytes of the scanned (lineitem-like) table.
    pub table_bytes: u64,
    /// Parallel-query slave processes per CPU (4 in the paper).
    pub slaves_per_cpu: usize,
    /// Mean ALU instructions of predicate/aggregate work per 64-byte
    /// line of tuples (drives the CPU-bound character).
    pub instrs_per_line: u64,
    /// Probability an ALU op depends on the previous result (low:
    /// independent tuples expose ILP).
    pub serial_dep_rate: f64,
    /// A branch every this many instructions (tight loop).
    pub branch_every: u64,
    /// Branch misprediction rate (loop branches predict well).
    pub mispredict_rate: f64,
    /// Selectivity: fraction of tuples passing the predicate (these get
    /// the full aggregate work; the rest short-circuit).
    pub selectivity: f64,
    /// Code footprint in bytes (a few KB: the scan loop).
    pub code_bytes: u64,
    /// Stop after this many table lines per CPU stream (0 = unbounded).
    /// Bounded streams let fault-injection runs prove completion of
    /// identical work.
    pub line_limit: u64,
}

impl DssConfig {
    /// Parameters calibrated to the paper's in-memory Q6 setup.
    pub fn paper_default() -> Self {
        DssConfig {
            table_bytes: 192 << 20,
            slaves_per_cpu: 4,
            instrs_per_line: 520,
            serial_dep_rate: 0.58,
            branch_every: 8,
            mispredict_rate: 0.005,
            selectivity: 0.55,
            code_bytes: 6 << 10,
            line_limit: 0,
        }
    }
}

/// The per-CPU DSS scan stream.
#[derive(Debug)]
pub struct DssStream {
    cfg: DssConfig,
    rng: Prng,
    code_base: Addr,
    table_base: Addr,
    /// Per-slave scan cursors (line indices within the CPU's chunk).
    cursors: Vec<u64>,
    chunk_lines: u64,
    chunk_base_line: u64,
    slave: usize,
    queue: std::collections::VecDeque<StreamOp>,
    pc_off: u64,
    since_branch: u64,
    lines_scanned: u64,
    chain_gap: u32,
}

impl DssStream {
    /// The stream for CPU `cpu_index` of `total_cpus`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_index >= total_cpus`.
    pub fn new(cfg: DssConfig, cpu_index: usize, total_cpus: usize, seed: u64) -> Self {
        assert!(cpu_index < total_cpus);
        let mut l = Layout::new();
        let code = l.alloc("dss_code", cfg.code_bytes);
        let table = l.alloc("lineitem", cfg.table_bytes);
        let total_lines = table.size / 64;
        let chunk_lines = total_lines / total_cpus as u64;
        let chunk_base_line = chunk_lines * cpu_index as u64;
        let slaves = cfg.slaves_per_cpu.max(1);
        let per_slave = chunk_lines / slaves as u64;
        let cursors = (0..slaves as u64).map(|s| s * per_slave).collect();
        DssStream {
            rng: Prng::seed_from_u64(seed).derive(0xd55_000 + cpu_index as u64),
            cfg,
            code_base: code.base,
            table_base: table.base,
            cursors,
            chunk_lines,
            chunk_base_line,
            slave: 0,
            queue: std::collections::VecDeque::new(),
            pc_off: 0,
            since_branch: 0,
            lines_scanned: 0,
            chain_gap: 1,
        }
    }

    /// Lines of the table consumed so far (for throughput reporting).
    pub fn lines_scanned(&self) -> u64 {
        self.lines_scanned
    }

    fn next_pc(&mut self) -> Addr {
        // A tight loop: the PC cycles through a tiny code region.
        let pc = Addr(self.code_base.0 + self.pc_off);
        self.pc_off = (self.pc_off + 4) % self.cfg.code_bytes;
        pc
    }

    fn push_alu(&mut self, n: u64) {
        for _ in 0..n {
            let pc = self.next_pc();
            self.since_branch += 1;
            if self.since_branch >= self.cfg.branch_every {
                self.since_branch = 0;
                self.chain_gap += 1;
                let mp = self.rng.chance(self.cfg.mispredict_rate);
                self.queue.push_back(StreamOp {
                    pc,
                    kind: OpKind::Branch {
                        taken: true,
                        mispredict: Some(mp),
                    },
                });
                continue;
            }
            // The aggregate accumulator forms a serial chain threading
            // through the independent per-tuple work.
            let dep1 = if self.rng.chance(self.cfg.serial_dep_rate) {
                let d = self.chain_gap;
                self.chain_gap = 1;
                d
            } else {
                self.chain_gap += 1;
                0
            };
            // Aggregation multiplies (price * discount).
            let mul = self.rng.chance(0.1);
            self.queue.push_back(StreamOp {
                pc,
                kind: OpKind::Alu { mul, dep1, dep2: 0 },
            });
        }
    }

    /// Emit the processing of one 64-byte line of tuples.
    fn generate_line(&mut self) {
        let slaves = self.cursors.len();
        let cur = &mut self.cursors[self.slave];
        let line_in_chunk = *cur % self.chunk_lines.max(1);
        *cur += 1;
        self.slave = (self.slave + 1) % slaves;
        let line = self.chunk_base_line + line_in_chunk;
        let addr = Addr(self.table_base.0 + line * 64);
        // Sequential load: the address comes from an induction variable,
        // not from memory — no pointer chasing, full MLP.
        let pc = self.next_pc();
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::Load { addr, dep_addr: 0 },
        });
        self.chain_gap += 1;
        // A second load covers the rest of the tuple fields (same line:
        // spatial locality makes it an L1 hit).
        let pc = self.next_pc();
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::Load {
                addr: Addr(addr.0 + 32),
                dep_addr: 0,
            },
        });
        self.chain_gap += 1;
        let full = self.rng.chance(self.cfg.selectivity);
        let work = if full {
            self.cfg.instrs_per_line
        } else {
            self.cfg.instrs_per_line / 3
        };
        // ±25% variation so the stream is not perfectly periodic.
        let jitter = self.rng.below(work / 2 + 1);
        self.push_alu(work * 3 / 4 + jitter);
        self.lines_scanned += 1;
    }
}

impl InstrStream for DssStream {
    fn next_op(&mut self) -> Option<StreamOp> {
        if self.queue.is_empty() {
            if self.cfg.line_limit > 0 && self.lines_scanned >= self.cfg.line_limit {
                return None;
            }
            self.generate_line();
        }
        self.queue.pop_front()
    }

    fn txns_committed(&self) -> Option<u64> {
        Some(self.lines_scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(n: usize, s: &mut DssStream) -> Vec<StreamOp> {
        (0..n)
            .map(|_| s.next_op().expect("infinite stream"))
            .collect()
    }

    #[test]
    fn line_limit_ends_the_stream_at_exactly_the_limit() {
        let cfg = DssConfig {
            line_limit: 5,
            ..DssConfig::paper_default()
        };
        let mut s = DssStream::new(cfg, 0, 4, 1);
        let ops: Vec<StreamOp> = std::iter::from_fn(|| s.next_op()).collect();
        assert!(!ops.is_empty());
        assert_eq!(s.txns_committed(), Some(5));
        assert_eq!(s.lines_scanned(), 5);
        assert!(s.next_op().is_none());
    }

    #[test]
    fn deterministic_and_cpu_disjoint() {
        let cfg = DssConfig::paper_default();
        let mut a = DssStream::new(cfg.clone(), 0, 4, 1);
        let mut b = DssStream::new(cfg.clone(), 0, 4, 1);
        assert_eq!(take(2000, &mut a), take(2000, &mut b));
        // CPUs scan disjoint chunks.
        let mut c = DssStream::new(cfg, 1, 4, 1);
        let loads = |ops: &[StreamOp]| -> Vec<u64> {
            ops.iter()
                .filter_map(|o| match o.kind {
                    OpKind::Load { addr, .. } => Some(addr.0),
                    _ => None,
                })
                .collect()
        };
        let la = loads(&take(5000, &mut a));
        let lc = loads(&take(5000, &mut c));
        let max_a = la.iter().max().unwrap();
        let min_c = lc.iter().min().unwrap();
        assert!(max_a < min_c, "chunk of CPU0 precedes chunk of CPU1");
    }

    #[test]
    fn streaming_spatial_locality() {
        let mut s = DssStream::new(DssConfig::paper_default(), 0, 1, 1);
        let ops = take(50_000, &mut s);
        let mut lines: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                OpKind::Load { addr, .. } => Some(addr.0 / 64),
                _ => None,
            })
            .collect();
        lines.dedup();
        // Interleaved slaves give 4 sequential runs; consecutive
        // accesses within a slave's run differ by one line.
        let mut sorted = lines.clone();
        sorted.sort();
        sorted.dedup();
        assert!(sorted.windows(2).filter(|w| w[1] == w[0] + 1).count() > sorted.len() / 2);
    }

    #[test]
    fn tiny_instruction_footprint() {
        let mut s = DssStream::new(DssConfig::paper_default(), 0, 1, 1);
        let ops = take(100_000, &mut s);
        let lines: std::collections::HashSet<_> = ops.iter().map(|o| o.pc.line()).collect();
        assert!(lines.len() as u64 * 64 <= DssConfig::paper_default().code_bytes);
    }

    #[test]
    fn cpu_bound_mix() {
        let mut s = DssStream::new(DssConfig::paper_default(), 0, 1, 1);
        let ops = take(100_000, &mut s);
        let mem = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. } | OpKind::Store { .. }))
            .count();
        let frac = mem as f64 / ops.len() as f64;
        assert!(frac < 0.03, "DSS is compute-bound, mem fraction {frac}");
    }

    #[test]
    fn no_stores_in_scan() {
        let mut s = DssStream::new(DssConfig::paper_default(), 0, 1, 1);
        let ops = take(50_000, &mut s);
        assert!(ops.iter().all(|o| !matches!(o.kind, OpKind::Store { .. })));
    }

    #[test]
    fn lines_scanned_advances() {
        let mut s = DssStream::new(DssConfig::paper_default(), 0, 2, 3);
        take(30_000, &mut s);
        assert!(s.lines_scanned() > 50);
    }
}
