//! A web-search workload in the AltaVista mould (paper §6).
//!
//! "We expect Piranha to also be well suited for a large class of web
//! server applications that have explicit thread-level parallelism.
//! Previous studies have shown that some web server applications, such
//! as the AltaVista search engine, exhibit behavior similar to decision
//! support (DSS) workloads."
//!
//! The engine models query serving over an in-memory inverted index:
//! each query walks a few posting lists (sequential, DSS-like streaming
//! with good spatial locality and high ILP), intersects them (ALU work),
//! and touches a small amount of shared metadata (query cache, statistics
//! — a modest communication component absent from pure DSS). Many
//! concurrent query threads per CPU supply the explicit thread-level
//! parallelism.

use piranha_cpu::{InstrStream, OpKind, StreamOp};
use piranha_kernel::Prng;
use piranha_types::Addr;

use crate::layout::Layout;

/// Tuning knobs of the web-search engine.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Bytes of the in-memory inverted index.
    pub index_bytes: u64,
    /// Concurrent query threads per CPU.
    pub threads_per_cpu: usize,
    /// Posting lists walked per query.
    pub lists_per_query: u32,
    /// Lines streamed per posting list.
    pub lines_per_list: u64,
    /// ALU instructions per streamed line (ranking/intersection work).
    pub instrs_per_line: u64,
    /// Probability an ALU op extends the serial chain.
    pub serial_dep_rate: f64,
    /// Shared metadata bytes (query cache, global statistics).
    pub meta_bytes: u64,
    /// Code footprint (larger than DSS's scan loop, far smaller than
    /// OLTP's).
    pub code_bytes: u64,
}

impl WebConfig {
    /// Parameters matching the paper's "similar to DSS" characterization
    /// with a light sharing component.
    pub fn paper_default() -> Self {
        WebConfig {
            index_bytes: 128 << 20,
            threads_per_cpu: 6,
            lists_per_query: 3,
            lines_per_list: 24,
            instrs_per_line: 180,
            serial_dep_rate: 0.45,
            meta_bytes: 512 << 10,
            code_bytes: 48 << 10,
        }
    }
}

/// The per-CPU web-search stream.
#[derive(Debug)]
pub struct WebStream {
    cfg: WebConfig,
    rng: Prng,
    code_base: Addr,
    index_base: Addr,
    meta_base: Addr,
    queue: std::collections::VecDeque<StreamOp>,
    pc_off: u64,
    since_branch: u64,
    chain_gap: u32,
    queries_served: u64,
    thread: usize,
}

impl WebStream {
    /// The stream for CPU `cpu_index` of `total_cpus`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_index >= total_cpus`.
    pub fn new(cfg: WebConfig, cpu_index: usize, total_cpus: usize, seed: u64) -> Self {
        assert!(cpu_index < total_cpus);
        let mut l = Layout::new();
        let code = l.alloc("web_code", cfg.code_bytes);
        let meta = l.alloc("web_meta", cfg.meta_bytes);
        let index = l.alloc("web_index", cfg.index_bytes);
        WebStream {
            rng: Prng::seed_from_u64(seed).derive(0x3eb_000 + cpu_index as u64),
            cfg,
            code_base: code.base,
            index_base: index.base,
            meta_base: meta.base,
            queue: std::collections::VecDeque::new(),
            pc_off: 0,
            since_branch: 0,
            chain_gap: 1,
            queries_served: 0,
            thread: 0,
        }
    }

    /// Queries completed so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    fn next_pc(&mut self) -> Addr {
        let pc = Addr(self.code_base.0 + self.pc_off);
        self.pc_off = (self.pc_off + 4) % self.cfg.code_bytes;
        pc
    }

    fn push_alu(&mut self, n: u64) {
        for _ in 0..n {
            let pc = self.next_pc();
            self.since_branch += 1;
            if self.since_branch >= 7 {
                self.since_branch = 0;
                self.chain_gap += 1;
                let mp = self.rng.chance(0.01);
                self.queue.push_back(StreamOp {
                    pc,
                    kind: OpKind::Branch {
                        taken: true,
                        mispredict: Some(mp),
                    },
                });
                continue;
            }
            let dep1 = if self.rng.chance(self.cfg.serial_dep_rate) {
                let d = self.chain_gap;
                self.chain_gap = 1;
                d
            } else {
                self.chain_gap += 1;
                0
            };
            self.queue.push_back(StreamOp {
                pc,
                kind: OpKind::Alu {
                    mul: false,
                    dep1,
                    dep2: 0,
                },
            });
        }
    }

    fn push_load(&mut self, addr: Addr, dep_addr: u32) {
        let pc = self.next_pc();
        self.chain_gap += 1;
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::Load { addr, dep_addr },
        });
    }

    fn generate_query(&mut self) {
        // Shared metadata: query-cache probe + a statistics update.
        let meta = Addr(self.meta_base.0 + self.rng.below(self.cfg.meta_bytes / 64) * 64);
        self.push_load(meta, 1);
        self.push_alu(30);
        // Walk the posting lists: sequential streams starting at random
        // index positions; addresses come from an induction variable
        // (full memory-level parallelism on a wide core).
        for _ in 0..self.cfg.lists_per_query {
            let total_lines = self.cfg.index_bytes / 64;
            let start = self
                .rng
                .below(total_lines.saturating_sub(self.cfg.lines_per_list));
            for i in 0..self.cfg.lines_per_list {
                let addr = Addr(self.index_base.0 + (start + i) * 64);
                self.push_load(addr, 0);
                self.push_alu(self.cfg.instrs_per_line);
            }
        }
        // Result assembly + statistics write.
        self.push_alu(60);
        let stat = Addr(self.meta_base.0 + self.rng.below(64) * 64);
        let pc = self.next_pc();
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::Store { addr: stat },
        });
        self.queries_served += 1;
        self.thread = (self.thread + 1) % self.cfg.threads_per_cpu.max(1);
    }
}

impl InstrStream for WebStream {
    fn next_op(&mut self) -> Option<StreamOp> {
        if self.queue.is_empty() {
            self.generate_query();
        }
        self.queue.pop_front()
    }

    /// Queries are this stream's unit of work. Deliberately *not*
    /// `txns_committed` — that feeds `fingerprint()` and must stay
    /// `None` for web streams.
    fn units_completed(&self) -> Option<u64> {
        Some(self.queries_served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(n: usize, s: &mut WebStream) -> Vec<StreamOp> {
        (0..n)
            .map(|_| s.next_op().expect("infinite stream"))
            .collect()
    }

    #[test]
    fn deterministic() {
        let cfg = WebConfig::paper_default();
        let mut a = WebStream::new(cfg.clone(), 0, 4, 7);
        let mut b = WebStream::new(cfg, 0, 4, 7);
        assert_eq!(take(3000, &mut a), take(3000, &mut b));
    }

    #[test]
    fn dss_like_signature_with_light_sharing() {
        let mut s = WebStream::new(WebConfig::paper_default(), 0, 1, 7);
        let ops = take(100_000, &mut s);
        let mem = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. } | OpKind::Store { .. }))
            .count() as f64
            / ops.len() as f64;
        assert!(mem < 0.05, "compute-bound like DSS: {mem}");
        let stores = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Store { .. }))
            .count();
        assert!(stores > 0, "statistics updates create a sharing component");
        let code_lines: std::collections::HashSet<_> = ops.iter().map(|o| o.pc.line()).collect();
        let code_bytes = code_lines.len() as u64 * 64;
        assert!(
            code_bytes <= 48 << 10,
            "small-ish code footprint: {code_bytes}"
        );
    }

    #[test]
    fn posting_lists_stream_sequentially() {
        let mut s = WebStream::new(WebConfig::paper_default(), 0, 1, 7);
        let ops = take(60_000, &mut s);
        let loads: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                OpKind::Load { addr, .. } => Some(addr.0 / 64),
                _ => None,
            })
            .collect();
        let sequential_pairs =
            loads.windows(2).filter(|w| w[1] == w[0] + 1).count() as f64 / loads.len() as f64;
        assert!(
            sequential_pairs > 0.7,
            "streaming index walks: {sequential_pairs}"
        );
    }

    #[test]
    fn queries_complete() {
        let mut s = WebStream::new(WebConfig::paper_default(), 1, 2, 3);
        take(80_000, &mut s);
        assert!(s.queries_served() > 3);
    }
}
