//! A fully parameterized synthetic stream, for ablations, calibration
//! sweeps, and property tests.

use piranha_cpu::{InstrStream, OpKind, StreamOp};
use piranha_kernel::Prng;
use piranha_types::Addr;

use crate::layout::Layout;

/// Knobs of the synthetic stream.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction that are stores.
    pub store_frac: f64,
    /// Fraction that are branches.
    pub branch_frac: f64,
    /// Private data bytes per CPU.
    pub private_bytes: u64,
    /// Shared data bytes (across all CPUs).
    pub shared_bytes: u64,
    /// Probability a memory access targets the shared region.
    pub shared_frac: f64,
    /// Code footprint bytes.
    pub code_bytes: u64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Probability an ALU op depends on the previous instruction.
    pub serial_dep_rate: f64,
}

impl SynthConfig {
    /// A cache-friendly, low-sharing default.
    pub fn light() -> Self {
        SynthConfig {
            load_frac: 0.2,
            store_frac: 0.1,
            branch_frac: 0.1,
            private_bytes: 32 << 10,
            shared_bytes: 32 << 10,
            shared_frac: 0.05,
            code_bytes: 8 << 10,
            mispredict_rate: 0.01,
            serial_dep_rate: 0.3,
        }
    }

    /// Device/DMA traffic for an I/O node's CPU (paper §2, Figure 2):
    /// streaming reads and writes over a shared buffer region plus
    /// driver code, coherent with the rest of the system.
    pub fn dma() -> Self {
        SynthConfig {
            load_frac: 0.3,
            store_frac: 0.25,
            branch_frac: 0.08,
            shared_frac: 0.6,
            shared_bytes: 1 << 20,
            private_bytes: 64 << 10,
            code_bytes: 16 << 10,
            mispredict_rate: 0.02,
            serial_dep_rate: 0.3,
        }
    }

    /// A memory-hostile configuration: huge footprints, heavy sharing.
    pub fn heavy() -> Self {
        SynthConfig {
            private_bytes: 16 << 20,
            shared_bytes: 16 << 20,
            shared_frac: 0.3,
            code_bytes: 512 << 10,
            mispredict_rate: 0.05,
            serial_dep_rate: 0.6,
            ..Self::light()
        }
    }
}

/// The synthetic per-CPU stream.
#[derive(Debug)]
pub struct SynthStream {
    cfg: SynthConfig,
    rng: Prng,
    code_base: Addr,
    private_base: Addr,
    shared_base: Addr,
    pc_off: u64,
}

impl SynthStream {
    /// The stream for `cpu_index` of `total_cpus`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_index >= total_cpus`.
    pub fn new(cfg: SynthConfig, cpu_index: usize, total_cpus: usize, seed: u64) -> Self {
        assert!(cpu_index < total_cpus);
        let mut l = Layout::new();
        let code = l.alloc("synth_code", cfg.code_bytes);
        let shared = l.alloc("synth_shared", cfg.shared_bytes);
        let private = l.alloc("synth_private", cfg.private_bytes * total_cpus as u64);
        SynthStream {
            rng: Prng::seed_from_u64(seed).derive(0x51_000 + cpu_index as u64),
            code_base: code.base,
            private_base: Addr(private.base.0 + cfg.private_bytes * cpu_index as u64),
            shared_base: shared.base,
            cfg,
            pc_off: 0,
        }
    }

    fn data_addr(&mut self) -> Addr {
        if self.rng.chance(self.cfg.shared_frac) {
            Addr(self.shared_base.0 + self.rng.below(self.cfg.shared_bytes / 8) * 8)
        } else {
            Addr(self.private_base.0 + self.rng.below(self.cfg.private_bytes / 8) * 8)
        }
    }
}

impl InstrStream for SynthStream {
    fn next_op(&mut self) -> Option<StreamOp> {
        let pc = Addr(self.code_base.0 + self.pc_off);
        self.pc_off = (self.pc_off + 4) % self.cfg.code_bytes;
        let u = self.rng.unit_f64();
        let kind = if u < self.cfg.load_frac {
            OpKind::Load {
                addr: self.data_addr(),
                dep_addr: 0,
            }
        } else if u < self.cfg.load_frac + self.cfg.store_frac {
            OpKind::Store {
                addr: self.data_addr(),
            }
        } else if u < self.cfg.load_frac + self.cfg.store_frac + self.cfg.branch_frac {
            OpKind::Branch {
                taken: self.rng.chance(0.5),
                mispredict: Some(self.rng.chance(self.cfg.mispredict_rate)),
            }
        } else {
            let dep1 = u64::from(self.rng.chance(self.cfg.serial_dep_rate)) as u32;
            OpKind::Alu {
                mul: false,
                dep1,
                dep2: 0,
            }
        };
        Some(StreamOp { pc, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_fractions() {
        let mut s = SynthStream::new(SynthConfig::light(), 0, 2, 9);
        let n = 100_000;
        let ops: Vec<StreamOp> = (0..n).map(|_| s.next_op().unwrap()).collect();
        let loads = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. }))
            .count();
        let frac = loads as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "load fraction {frac}");
    }

    #[test]
    fn private_regions_disjoint_across_cpus() {
        let cfg = SynthConfig {
            shared_frac: 0.0,
            ..SynthConfig::light()
        };
        let mut a = SynthStream::new(cfg.clone(), 0, 2, 9);
        let mut b = SynthStream::new(cfg, 1, 2, 9);
        let addrs = |s: &mut SynthStream| -> Vec<u64> {
            (0..20_000)
                .filter_map(|_| match s.next_op().unwrap().kind {
                    OpKind::Load { addr, .. } | OpKind::Store { addr } => Some(addr.0),
                    _ => None,
                })
                .collect()
        };
        let aa = addrs(&mut a);
        let bb = addrs(&mut b);
        let bset: std::collections::HashSet<_> = bb.iter().map(|x| x / 64).collect();
        assert!(aa.iter().all(|x| !bset.contains(&(x / 64))));
    }

    #[test]
    fn shared_region_is_shared() {
        let cfg = SynthConfig {
            shared_frac: 1.0,
            ..SynthConfig::light()
        };
        let mut a = SynthStream::new(cfg.clone(), 0, 2, 9);
        let mut b = SynthStream::new(cfg, 1, 2, 9);
        let one = |s: &mut SynthStream| loop {
            if let OpKind::Load { addr, .. } | OpKind::Store { addr } = s.next_op().unwrap().kind {
                return addr.0;
            }
        };
        let (x, y) = (one(&mut a), one(&mut b));
        assert!(x.abs_diff(y) < (64 << 10), "both inside the shared region");
    }
}
