//! Synthetic commercial workloads (paper §3.1).
//!
//! The paper evaluates Piranha with Oracle 7.3.2 running a TPC-B-like
//! OLTP workload and a TPC-D-Q6-like DSS query under SimOS-Alpha. Neither
//! the database nor the full-system simulator is available, so this crate
//! implements *workload engines* that generate the instruction and
//! memory-reference streams those applications produce, from actual
//! transaction state machines over the same logical tables:
//!
//! * [`oltp`] — a banking database in the TPC-B schema (branches,
//!   tellers, accounts, history) with a shared SGA-style region, B-tree
//!   index probes, dedicated server processes (8 per CPU, as in the
//!   paper's runs), hot contended branch/teller rows, a shared log, and
//!   kernel-like activity. Its architectural signature matches the
//!   paper's characterization: large instruction and data footprints,
//!   high communication miss rates, and little instruction-level
//!   parallelism.
//! * [`dss`] — a parallel sequential scan with predicate + aggregate
//!   over a lineitem-like table (4 processes per CPU): tiny instruction
//!   footprint, streaming spatial locality, high ILP, small memory-stall
//!   component.
//! * [`web`] — an AltaVista-like search-engine workload (paper §6:
//!   web servers "exhibit behavior similar to decision support"):
//!   streaming posting-list walks with a light shared-metadata
//!   component.
//! * [`synth`] — a fully parameterized synthetic stream for ablations
//!   and property tests.
//!
//! All generators are deterministic from a seed and implement
//! `piranha_cpu::InstrStream`.

#![warn(missing_docs)]

pub mod dss;
pub mod layout;
pub mod oltp;
pub mod synth;
pub mod web;

pub use dss::{DssConfig, DssStream};
pub use layout::{Layout, Region};
pub use oltp::{OltpConfig, OltpStream};
pub use synth::{SynthConfig, SynthStream};
pub use web::{WebConfig, WebStream};

use piranha_cpu::InstrStream;

/// The workloads of the paper's evaluation, plus the synthetic stream.
#[derive(Debug, Clone)]
pub enum Workload {
    /// TPC-B-like on-line transaction processing.
    Oltp(OltpConfig),
    /// TPC-D-Q6-like decision support scan.
    Dss(DssConfig),
    /// Parameterized synthetic stream.
    Synth(SynthConfig),
    /// AltaVista-like web search (paper §6: "behavior similar to DSS").
    Web(WebConfig),
}

impl Workload {
    /// Build the per-CPU instruction stream for CPU `cpu_index` of
    /// `total_cpus`, deterministic in `seed`.
    pub fn stream_for_cpu(
        &self,
        cpu_index: usize,
        total_cpus: usize,
        seed: u64,
    ) -> Box<dyn InstrStream> {
        match self {
            Workload::Oltp(cfg) => {
                Box::new(OltpStream::new(cfg.clone(), cpu_index, total_cpus, seed))
            }
            Workload::Dss(cfg) => {
                Box::new(DssStream::new(cfg.clone(), cpu_index, total_cpus, seed))
            }
            Workload::Synth(cfg) => {
                Box::new(SynthStream::new(cfg.clone(), cpu_index, total_cpus, seed))
            }
            Workload::Web(cfg) => {
                Box::new(WebStream::new(cfg.clone(), cpu_index, total_cpus, seed))
            }
        }
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Oltp(_) => "OLTP",
            Workload::Dss(_) => "DSS",
            Workload::Synth(_) => "SYNTH",
            Workload::Web(_) => "WEB",
        }
    }
}
