//! The TPC-B-like OLTP workload engine (paper §3.1).
//!
//! "This benchmark models a banking database system that keeps track of
//! customers' account balances, as well as balances per branch and
//! teller. Each transaction updates a randomly chosen account balance,
//! which includes updating the balance of the branch the customer
//! belongs to and the teller from which the transaction is submitted. It
//! also adds an entry to the history table." The paper runs Oracle with
//! 8 dedicated server processes per CPU to hide I/O latency, a 40-branch
//! database, and observes ~25% kernel time.
//!
//! This engine reproduces that reference stream from an actual
//! transaction state machine: per-CPU server processes switch at commit
//! boundaries; each transaction performs kernel entry/exit work against
//! shared OS structures, a three-level B-tree probe (address-dependent
//! loads — pointer chasing), a random account-row update in a region far
//! exceeding the caches, *hot contended* branch and teller row updates
//! (the migratory communication pattern that dominates OLTP's
//! communication misses), a `wh64` history insert, and a shared log
//! append. Instruction addresses walk a multi-hundred-KB code footprint
//! in basic-block-sized runs, so the 64 KB iL1 misses while the shared
//! L2 holds the (single) code image — the effect that makes Piranha's
//! shared L2 so effective on OLTP.

use piranha_cpu::{InstrStream, OpKind, StreamOp};
use piranha_kernel::Prng;
use piranha_types::Addr;

use crate::layout::{Layout, Region};

/// Tuning knobs of the OLTP engine.
#[derive(Debug, Clone)]
pub struct OltpConfig {
    /// Branches in the database (TPC-B scale; the paper uses 40).
    pub branches: u64,
    /// Tellers per branch (10 in TPC-B).
    pub tellers_per_branch: u64,
    /// Bytes of the account table (the miss-to-memory driver).
    pub account_bytes: u64,
    /// Bytes of hot shared metadata (SGA latches, buffer headers).
    pub sga_bytes: u64,
    /// Bytes of B-tree index nodes.
    pub index_bytes: u64,
    /// Database code footprint in bytes.
    pub code_bytes: u64,
    /// Kernel code footprint in bytes.
    pub kernel_code_bytes: u64,
    /// Dedicated server processes per CPU (8 in the paper).
    pub processes_per_cpu: usize,
    /// Per-process private (PGA/stack) bytes.
    pub pga_bytes: u64,
    /// B-tree levels probed per lookup.
    pub index_levels: u32,
    /// A conditional branch every this many instructions.
    pub branch_every: u64,
    /// Probability a branch mispredicts (data-dependent OLTP control
    /// flow predicts poorly).
    pub mispredict_rate: f64,
    /// Probability an ALU op depends on the immediately preceding
    /// result (low ILP: high value).
    pub serial_dep_rate: f64,
    /// Log-buffer slots (commits scatter across these).
    pub log_slots: u64,
    /// Work multiplier: >1 adds extra phases per transaction (used for
    /// the TPC-C-like variant).
    pub work_scale: u32,
    /// Stop after this many transactions per CPU stream (0 = unbounded,
    /// the fixed-instruction-window default). Bounded streams let
    /// fault-injection runs prove completion of identical work.
    pub txn_limit: u64,
}

impl OltpConfig {
    /// Parameters calibrated to the paper's TPC-B setup.
    pub fn paper_default() -> Self {
        OltpConfig {
            branches: 40,
            tellers_per_branch: 10,
            account_bytes: 48 << 20,
            sga_bytes: 768 << 10,
            index_bytes: 1 << 20,
            code_bytes: 320 << 10,
            kernel_code_bytes: 128 << 10,
            processes_per_cpu: 8,
            pga_bytes: 16 << 10,
            index_levels: 3,
            branch_every: 6,
            mispredict_rate: 0.05,
            serial_dep_rate: 0.70,
            log_slots: 32,
            work_scale: 1,
            txn_limit: 0,
        }
    }

    /// A heavier TPC-C-like mix (the paper's §4 robustness check: "P8
    /// outperforms OOO by over a factor of 3" on TPC-C).
    pub fn tpcc_like() -> Self {
        OltpConfig {
            account_bytes: 96 << 20,
            sga_bytes: 6 << 20,
            code_bytes: 640 << 10,
            work_scale: 3,
            ..Self::paper_default()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Regions {
    kernel_code: Region,
    db_code: Region,
    sga: Region,
    index: Region,
    branch_rows: Region,
    teller_rows: Region,
    account: Region,
    history: Region,
    log: Region,
    pga: Region,
}

fn build_regions(cfg: &OltpConfig, total_procs: u64) -> Regions {
    let mut l = Layout::new();
    Regions {
        kernel_code: l.alloc("kernel_code", cfg.kernel_code_bytes),
        db_code: l.alloc("db_code", cfg.code_bytes),
        sga: l.alloc("sga", cfg.sga_bytes),
        index: l.alloc("index", cfg.index_bytes),
        branch_rows: l.alloc("branch_rows", cfg.branches * 128),
        teller_rows: l.alloc("teller_rows", cfg.branches * cfg.tellers_per_branch * 128),
        account: l.alloc("account", cfg.account_bytes),
        history: l.alloc("history", total_procs * (64 << 10)),
        log: l.alloc("log", cfg.log_slots * 4096),
        pga: l.alloc("pga", total_procs * cfg.pga_bytes),
    }
}

/// One server process's execution context.
#[derive(Debug, Clone)]
struct Process {
    /// Global process number (drives private-region placement).
    global_id: u64,
    /// Next history-record index for this process.
    history_next: u64,
}

/// The per-CPU OLTP instruction stream.
#[derive(Debug)]
pub struct OltpStream {
    cfg: OltpConfig,
    regions: Regions,
    rng: Prng,
    procs: Vec<Process>,
    current: usize,
    queue: std::collections::VecDeque<StreamOp>,
    /// Current instruction-fetch position.
    pc: Addr,
    /// Instructions left in the current basic-block run.
    run_left: u64,
    /// Instructions since the last branch.
    since_branch: u64,
    /// Kernel or user code? (drives which code region PCs come from)
    in_kernel: bool,
    txns_generated: u64,
    /// Sequential cursor of this CPU's share of log-writer flushes.
    log_writer_cursor: u64,
    /// Ops emitted since the last serial-chain member (dependency
    /// distances thread through the chain so the OOO window cannot hide
    /// them — this is what bounds OLTP's ILP).
    chain_gap: u32,
}

impl OltpStream {
    /// The stream for CPU `cpu_index` of `total_cpus`, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `total_cpus` is zero or `cpu_index` out of range.
    pub fn new(cfg: OltpConfig, cpu_index: usize, total_cpus: usize, seed: u64) -> Self {
        assert!(cpu_index < total_cpus, "cpu {cpu_index} of {total_cpus}");
        let total_procs = (total_cpus * cfg.processes_per_cpu) as u64;
        let regions = build_regions(&cfg, total_procs);
        let procs = (0..cfg.processes_per_cpu)
            .map(|p| Process {
                global_id: (cpu_index * cfg.processes_per_cpu + p) as u64,
                history_next: 0,
            })
            .collect();
        let rng = Prng::seed_from_u64(seed).derive(0x017_000 + cpu_index as u64);
        let pc = regions.db_code.base;
        OltpStream {
            cfg,
            regions,
            rng,
            procs,
            current: 0,
            queue: std::collections::VecDeque::new(),
            pc,
            run_left: 16,
            since_branch: 0,
            in_kernel: false,
            txns_generated: 0,
            log_writer_cursor: 0,
            chain_gap: 1,
        }
    }

    /// Number of complete transactions generated so far.
    pub fn txns_generated(&self) -> u64 {
        self.txns_generated
    }

    fn code_region(&self) -> Region {
        if self.in_kernel {
            self.regions.kernel_code
        } else {
            self.regions.db_code
        }
    }

    /// Advance the fetch PC by one instruction, hopping to a new basic
    /// block when the current run ends (this is what creates the large
    /// instruction footprint).
    fn next_pc(&mut self) -> Addr {
        if self.run_left == 0 {
            let region = self.code_region();
            let block = self.rng.below(region.size / 256);
            self.pc = Addr(region.base.0 + block * 256);
            self.run_left = 8 + self.rng.below(48);
        }
        let pc = self.pc;
        self.pc = Addr(self.pc.0 + 4);
        self.run_left -= 1;
        pc
    }

    fn push_alu(&mut self, n: u64) {
        for _ in 0..n {
            let pc = self.next_pc();
            self.since_branch += 1;
            if self.since_branch >= self.cfg.branch_every {
                self.since_branch = 0;
                self.chain_gap += 1;
                let mp = self.rng.chance(self.cfg.mispredict_rate);
                self.queue.push_back(StreamOp {
                    pc,
                    kind: OpKind::Branch {
                        taken: self.rng.chance(0.6),
                        mispredict: Some(mp),
                    },
                });
                continue;
            }
            let dep1 = if self.rng.chance(self.cfg.serial_dep_rate) {
                let d = self.chain_gap;
                self.chain_gap = 1;
                d
            } else {
                self.chain_gap += 1;
                0
            };
            self.queue.push_back(StreamOp {
                pc,
                kind: OpKind::Alu {
                    mul: false,
                    dep1,
                    dep2: 0,
                },
            });
        }
    }

    fn push_load(&mut self, addr: Addr, dep_addr: u32) {
        let pc = self.next_pc();
        self.chain_gap += 1;
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::Load { addr, dep_addr },
        });
    }

    fn push_store(&mut self, addr: Addr) {
        let pc = self.next_pc();
        self.chain_gap += 1;
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::Store { addr },
        });
    }

    fn push_write_hint(&mut self, addr: Addr) {
        let pc = self.next_pc();
        self.chain_gap += 1;
        self.queue.push_back(StreamOp {
            pc,
            kind: OpKind::WriteHint { addr },
        });
    }

    fn sga_addr(&mut self) -> Addr {
        // Zipf-like tiers: latches and hot buffer headers (32 KB,
        // L1-resident), a warm 256 KB tier (L2-resident once warm), and
        // a cold tail over the whole SGA.
        let u = self.rng.unit_f64();
        let r = self.regions.sga;
        if u < 0.50 {
            r.at(self.rng.below(512) * 64)
        } else if u < 0.90 {
            r.at(self.rng.below(4096) * 64)
        } else {
            r.at(self.rng.below(r.size / 64) * 64)
        }
    }

    fn pga_addr(&mut self, proc_id: u64) -> Addr {
        let base = proc_id * self.cfg.pga_bytes;
        // Stack-like: hot top-of-stack.
        let off = self.rng.below(self.cfg.pga_bytes / 8);
        self.regions.pga.at(base + off)
    }

    /// Kernel entry/exit: shared OS structures (run queues, stats) —
    /// roughly the paper's 25% kernel component.
    fn phase_kernel(&mut self, proc_id: u64) {
        self.in_kernel = true;
        self.run_left = 0;
        self.push_alu(44);
        let a = self.sga_addr();
        self.push_load(a, 1);
        let b = self.pga_addr(proc_id);
        self.push_load(b, 1);
        let c = self.sga_addr();
        self.push_store(c);
        self.push_alu(22);
        self.in_kernel = false;
        self.run_left = 0;
    }

    fn phase_begin(&mut self, proc_id: u64) {
        self.push_alu(90);
        for _ in 0..3 {
            let a = self.sga_addr();
            self.push_load(a, 1);
        }
        let latch = self.sga_addr();
        self.push_load(latch, 1);
        self.push_store(latch); // latch acquire/release (contended RMW)
        let p = self.pga_addr(proc_id);
        self.push_store(p);
        self.push_alu(24);
    }

    /// Three-level B-tree probe: root is hot and shared read-only; the
    /// leaf is cold. Each level's address depends on the previous load
    /// (pointer chasing — no memory-level parallelism).
    fn phase_index_probe(&mut self) -> u64 {
        let account = self.rng.below(self.cfg.account_bytes / 128);
        let idx = self.regions.index;
        for level in 0..self.cfg.index_levels {
            let node = match level {
                0 => idx.at(0),
                1 => idx.at(4096 + (account % 64) * 256),
                // Leaves: a warm 512 KB set covers most probes; the rest
                // spread over the full leaf level.
                _ => {
                    if self.rng.chance(0.7) {
                        idx.at((64 << 10) + (account % 2048) * 256)
                    } else {
                        idx.at((64 << 10) + (account % ((idx.size - (64 << 10)) / 256)) * 256)
                    }
                }
            };
            self.push_load(node, 1);
            self.push_alu(12);
        }
        account
    }

    fn phase_account(&mut self, account: u64) {
        // Oracle reads the whole database block: block header first,
        // then the row (two adjacent lines) — giving the RDRAM open-page
        // locality the paper reports (§2.4).
        let block = self.regions.account.at(account * 2048);
        let row = Addr(block.0 + 256 + (account % 12) * 128);
        self.push_load(block, 1);
        self.push_alu(6);
        self.push_load(row, 1);
        self.push_alu(14);
        self.push_store(row);
    }

    fn phase_branch_teller(&mut self) {
        let b = self.rng.below(self.cfg.branches);
        let row = self.regions.branch_rows.record(b, 128);
        self.push_load(row, 1);
        self.push_alu(6);
        self.push_store(row);
        let t = b * self.cfg.tellers_per_branch + self.rng.below(self.cfg.tellers_per_branch);
        let trow = self.regions.teller_rows.record(t, 128);
        self.push_load(trow, 1);
        self.push_alu(6);
        self.push_store(trow);
    }

    fn phase_history(&mut self) {
        let p = &mut self.procs[self.current];
        let rec = p.history_next;
        p.history_next += 1;
        let gid = p.global_id;
        let addr = self
            .regions
            .history
            .at(gid * (64 << 10) + (rec * 64) % (64 << 10));
        // Whole-line insert: the wh64 write hint avoids fetching the
        // line (paper §2.5.3 footnote).
        self.push_write_hint(addr);
        self.push_store(addr);
        self.push_alu(8);
    }

    fn phase_log(&mut self) {
        let slot = self.rng.below(self.cfg.log_slots);
        let base = self.regions.log.at(slot * 4096 + self.rng.below(32) * 128);
        self.push_load(base, 1);
        self.push_store(base);
        self.push_store(Addr(base.0 + 64));
        self.push_alu(22);
    }

    /// The log-writer daemon: group-commits accumulated log records with
    /// a sequential whole-line burst (the `wh64` copy-routine pattern of
    /// paper footnote 2); this sequential write traffic is what earns the
    /// RDRAM open-page hits of §2.4.
    fn phase_log_writer(&mut self) {
        self.log_writer_cursor += 1;
        let base = self.log_writer_cursor * 32 * 64;
        for i in 0..32u64 {
            let addr = self.regions.log.at(base + i * 64);
            self.push_write_hint(addr);
            self.push_alu(3);
        }
    }

    /// The database-writer daemon: flushes a dirty 2 KB block back,
    /// streaming whole-line writes through the store buffer (`wh64`, the
    /// copy-routine pattern of paper footnote 2).
    fn phase_db_writer(&mut self) {
        let block = self.rng.below(self.cfg.account_bytes / 2048);
        for i in 0..32u64 {
            let addr = self.regions.account.at(block * 2048 + i * 64);
            self.push_write_hint(addr);
            if i % 4 == 0 {
                self.push_alu(3);
            }
        }
        self.push_alu(20);
    }

    /// Generate one whole transaction for the current process, then
    /// switch processes (the paper's I/O-latency hiding).
    fn generate_txn(&mut self) {
        let proc_id = self.procs[self.current].global_id;
        self.phase_kernel(proc_id);
        self.phase_begin(proc_id);
        for _ in 0..self.cfg.work_scale {
            let account = self.phase_index_probe();
            self.phase_account(account);
            self.phase_branch_teller();
        }
        self.phase_history();
        self.phase_log();
        if self.txns_generated % 4 == 3 {
            self.phase_log_writer();
        }
        if self.txns_generated % 8 == 5 {
            self.phase_db_writer();
        }
        self.phase_kernel(proc_id);
        self.txns_generated += 1;
        // Commit: the process waits for its log I/O; another takes over.
        self.current = (self.current + 1) % self.procs.len();
        self.run_left = 0;
    }
}

impl InstrStream for OltpStream {
    fn next_op(&mut self) -> Option<StreamOp> {
        if self.queue.is_empty() {
            if self.cfg.txn_limit > 0 && self.txns_generated >= self.cfg.txn_limit {
                return None;
            }
            self.generate_txn();
        }
        self.queue.pop_front()
    }

    fn txns_committed(&self) -> Option<u64> {
        Some(self.txns_generated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(n: usize, s: &mut OltpStream) -> Vec<StreamOp> {
        (0..n)
            .map(|_| s.next_op().expect("infinite stream"))
            .collect()
    }

    #[test]
    fn deterministic_from_seed() {
        let cfg = OltpConfig::paper_default();
        let mut a = OltpStream::new(cfg.clone(), 0, 8, 42);
        let mut b = OltpStream::new(cfg, 0, 8, 42);
        assert_eq!(take(5000, &mut a), take(5000, &mut b));
    }

    #[test]
    fn txn_limit_ends_the_stream_at_exactly_the_limit() {
        let cfg = OltpConfig {
            txn_limit: 3,
            ..OltpConfig::paper_default()
        };
        let mut s = OltpStream::new(cfg, 0, 8, 42);
        let ops: Vec<StreamOp> = std::iter::from_fn(|| s.next_op()).collect();
        assert!(!ops.is_empty());
        assert_eq!(s.txns_committed(), Some(3));
        assert!(s.next_op().is_none(), "stream stays exhausted");
        // The unbounded default never ends.
        let mut unbounded = OltpStream::new(OltpConfig::paper_default(), 0, 8, 42);
        assert_eq!(take(5000, &mut unbounded).len(), 5000);
    }

    #[test]
    fn different_cpus_differ_but_share_tables() {
        let cfg = OltpConfig::paper_default();
        let mut a = OltpStream::new(cfg.clone(), 0, 8, 42);
        let mut b = OltpStream::new(cfg.clone(), 1, 8, 42);
        let oa = take(5000, &mut a);
        let ob = take(5000, &mut b);
        assert_ne!(oa, ob, "different CPUs run different transactions");
        // Both touch the same branch-row region (communication!).
        let r = build_regions(&cfg, 64).branch_rows;
        let touches = |ops: &[StreamOp]| {
            ops.iter().any(|o| match o.kind {
                OpKind::Store { addr } => addr.0 >= r.base.0 && addr.0 < r.base.0 + r.size,
                _ => false,
            })
        };
        assert!(touches(&oa) && touches(&ob));
    }

    #[test]
    fn instruction_mix_is_commercial() {
        let mut s = OltpStream::new(OltpConfig::paper_default(), 0, 1, 7);
        let ops = take(50_000, &mut s);
        let loads = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. }))
            .count();
        let stores = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Store { .. } | OpKind::WriteHint { .. }))
            .count();
        let branches = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Branch { .. }))
            .count();
        let lf = loads as f64 / ops.len() as f64;
        let sf = stores as f64 / ops.len() as f64;
        let bf = branches as f64 / ops.len() as f64;
        assert!((0.03..0.30).contains(&lf), "load fraction {lf}");
        assert!((0.02..0.20).contains(&sf), "store fraction {sf}");
        assert!((0.05..0.25).contains(&bf), "branch fraction {bf}");
    }

    #[test]
    fn code_footprint_exceeds_l1() {
        let mut s = OltpStream::new(OltpConfig::paper_default(), 0, 1, 7);
        let ops = take(200_000, &mut s);
        let mut lines = std::collections::HashSet::new();
        for o in &ops {
            lines.insert(o.pc.line());
        }
        let bytes = lines.len() as u64 * 64;
        assert!(
            bytes > 64 * 1024,
            "instruction footprint {bytes}B must exceed the 64KB iL1"
        );
    }

    #[test]
    fn processes_rotate_at_commit() {
        let mut s = OltpStream::new(OltpConfig::paper_default(), 0, 1, 7);
        take(10_000, &mut s);
        assert!(
            s.txns_generated() >= 8,
            "several transactions in 10k instrs"
        );
    }

    #[test]
    fn tpcc_variant_has_more_work_per_txn() {
        let mut b = OltpStream::new(OltpConfig::paper_default(), 0, 1, 7);
        let mut c = OltpStream::new(OltpConfig::tpcc_like(), 0, 1, 7);
        take(50_000, &mut b);
        take(50_000, &mut c);
        assert!(
            c.txns_generated() < b.txns_generated(),
            "TPC-C-like transactions are longer"
        );
    }

    #[test]
    fn write_hints_present() {
        let mut s = OltpStream::new(OltpConfig::paper_default(), 0, 1, 7);
        let ops = take(20_000, &mut s);
        assert!(ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::WriteHint { .. })));
    }
}
