//! The simulated physical address-space layout shared by the workload
//! generators.
//!
//! A simple bump allocator hands out 8 KB-aligned regions; keeping every
//! workload's regions in one map makes the generated reference streams
//! reproducible and lets multi-chip configurations interleave pages
//! across homes deterministically.

use piranha_types::Addr;

/// One allocated region of simulated physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// The byte address at `offset` into the region, wrapping at the
    /// region size (so any index is valid).
    pub fn at(&self, offset: u64) -> Addr {
        Addr(self.base.0 + offset % self.size)
    }

    /// The address of the `i`-th fixed-size record.
    pub fn record(&self, i: u64, record_bytes: u64) -> Addr {
        self.at(i * record_bytes)
    }

    /// Number of whole 64-byte lines in the region.
    pub fn lines(&self) -> u64 {
        self.size / piranha_types::LINE_BYTES
    }
}

/// A bump allocator over the simulated physical address space.
///
/// # Examples
///
/// ```
/// use piranha_workloads::Layout;
/// let mut l = Layout::new();
/// let code = l.alloc("code", 64 * 1024);
/// let heap = l.alloc("heap", 1 << 20);
/// assert!(heap.base.0 >= code.base.0 + code.size);
/// ```
#[derive(Debug, Default)]
pub struct Layout {
    next: u64,
    regions: Vec<(String, Region)>,
}

/// Alignment of every region (one OS page).
pub const REGION_ALIGN: u64 = 8192;

impl Layout {
    /// An empty layout starting at a non-zero base (so that address 0
    /// stays unused and bugs surface).
    pub fn new() -> Self {
        Layout {
            next: REGION_ALIGN,
            regions: Vec::new(),
        }
    }

    /// Allocate a named region of at least `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, name: &str, size: u64) -> Region {
        assert!(size > 0, "zero-sized region {name:?}");
        let size = size.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        let r = Region {
            base: Addr(self.next),
            size,
        };
        self.next += size;
        self.regions.push((name.to_string(), r));
        r
    }

    /// Total bytes allocated.
    pub fn allocated(&self) -> u64 {
        self.next - REGION_ALIGN
    }

    /// Look up a region by name (for tests/reports).
    pub fn get(&self, name: &str) -> Option<Region> {
        self.regions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut l = Layout::new();
        let a = l.alloc("a", 100);
        let b = l.alloc("b", 8192);
        let c = l.alloc("c", 8193);
        assert_eq!(a.size, 8192, "rounded up");
        assert_eq!(b.base.0 % REGION_ALIGN, 0);
        assert_eq!(b.base.0, a.base.0 + a.size);
        assert_eq!(c.size, 16384);
        assert_eq!(l.allocated(), 8192 + 8192 + 16384);
        assert_eq!(l.get("b"), Some(b));
        assert_eq!(l.get("nope"), None);
    }

    #[test]
    fn record_addressing_wraps() {
        let r = Region {
            base: Addr(0x10000),
            size: 8192,
        };
        assert_eq!(r.record(0, 128).0, 0x10000);
        assert_eq!(r.record(2, 128).0, 0x10100);
        // Index past the end wraps (generators can over-index safely).
        assert_eq!(r.at(8192).0, 0x10000);
        assert_eq!(r.lines(), 128);
    }
}
