//! Geometry configuration for the cache hierarchy.

use piranha_types::LINE_BYTES;

/// Geometry of one first-level cache.
///
/// Defaults to the paper's 64 KB two-way design (§2.1); the sensitivity
/// experiment in §4 also uses 32 KB direct-mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl L1Config {
    /// The paper's baseline L1: 64 KB, 2-way (Table 1).
    pub fn paper_default() -> Self {
        L1Config {
            size_bytes: 64 * 1024,
            ways: 2,
        }
    }

    /// The pessimistic L1 from the §4 sensitivity study: 32 KB, 1-way.
    pub fn pessimistic() -> Self {
        L1Config {
            size_bytes: 32 * 1024,
            ways: 1,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity not a
    /// whole number of ways of lines).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "L1 must have at least one way");
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets * self.ways == lines as usize,
            "L1 geometry {}B/{} ways does not tile into sets",
            self.size_bytes,
            self.ways
        );
        sets
    }
}

impl Default for L1Config {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Geometry of one L2 bank.
///
/// The paper's L2 is 1 MB split into eight banks, 8-way set-associative
/// (§2.3); the OOO baseline uses a 1.5 MB 6-way unified L2 (Table 1),
/// which we model as a single bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2BankConfig {
    /// Capacity of this bank in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl L2BankConfig {
    /// One of Piranha's eight banks: 128 KB, 8-way.
    pub fn paper_default() -> Self {
        L2BankConfig {
            size_bytes: 128 * 1024,
            ways: 8,
        }
    }

    /// The OOO baseline's unified L2 modelled as one bank: 1.5 MB, 6-way.
    pub fn ooo_unified() -> Self {
        L2BankConfig {
            size_bytes: 1536 * 1024,
            ways: 6,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not tile (see [`L1Config::sets`]).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "L2 bank must have at least one way");
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets * self.ways == lines as usize,
            "L2 geometry {}B/{} ways does not tile into sets",
            self.size_bytes,
            self.ways
        );
        sets
    }
}

impl Default for L2BankConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let c = L1Config::paper_default();
        assert_eq!(c.sets(), 512); // 64KB / 64B / 2 ways
    }

    #[test]
    fn pessimistic_l1_geometry() {
        let c = L1Config::pessimistic();
        assert_eq!(c.sets(), 512); // 32KB / 64B / 1 way
    }

    #[test]
    fn paper_l2_bank_geometry() {
        let c = L2BankConfig::paper_default();
        assert_eq!(c.sets(), 256); // 128KB / 64B / 8 ways
    }

    #[test]
    fn ooo_l2_geometry() {
        let c = L2BankConfig::ooo_unified();
        assert_eq!(c.sets(), 4096); // 1.5MB / 64B / 6 ways
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn bad_geometry_panics() {
        // 7 lines do not tile into 2-way sets.
        L1Config {
            size_bytes: 7 * 64,
            ways: 2,
        }
        .sets();
    }
}
