//! Duplicate L1 tag/state directory kept at each L2 controller.
//!
//! "To simplify intra-chip coherence and avoid the use of snooping at L1
//! caches, we keep a duplicate copy of the L1 tags and state at the L2
//! controllers" (paper §2.3), extended "to include the notion of
//! ownership": the owner of a line is the L2 (when it has a valid copy),
//! an L1 in the exclusive state, or one of the L1s (typically the last
//! requester) when there are multiple sharers. Ownership decides which L1
//! victim write-backs must carry data.
//!
//! This module models the duplicate tags, the L2's own tag/state for the
//! line, and the *partial directory interpretation* the paper describes —
//! whether a line is cached by remote nodes ([`ExtState`]) — as one
//! consolidated per-line record, which is behaviourally equivalent to the
//! separate hardware structures and much easier to audit.

use piranha_types::FastMap;

use piranha_types::{CacheKind, CpuId, LineAddr};

use crate::mesi::Mesi;

/// Maximum L1 caches per chip: 8 CPUs × (iL1 + dL1).
pub const MAX_SLOTS: usize = 16;

/// Identifies one L1 cache on the chip: `cpu * 2 + kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot(pub u8);

impl Slot {
    /// The slot for a given CPU's cache of the given kind.
    pub fn new(cpu: CpuId, kind: CacheKind) -> Self {
        Slot(cpu.0 * 2 + kind.index() as u8)
    }

    /// The CPU this slot belongs to.
    pub fn cpu(self) -> CpuId {
        CpuId(self.0 / 2)
    }

    /// Which of the CPU's two L1s this is.
    pub fn kind(self) -> CacheKind {
        if self.0.is_multiple_of(2) {
            CacheKind::Instruction
        } else {
            CacheKind::Data
        }
    }

    /// Index into per-slot arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for Slot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.cpu(), self.kind())
    }
}

/// The node-level external state of a cached line — the "partial
/// interpretation of the directory information" (paper §2.3) that lets
/// the L2 controller avoid the protocol engines for most local requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtState {
    /// Home is this node and no remote node caches the line.
    HomeOnly,
    /// Home is this node and at least one remote node holds a shared copy
    /// (a local exclusive request must invalidate them via the home
    /// engine).
    HomeRemoteShared,
    /// Home is a remote node; this node holds only shared rights (a local
    /// exclusive request must upgrade through the home).
    HeldShared,
    /// Home is a remote node; this node holds exclusive ownership and may
    /// serve any local request on-chip.
    HeldExclusive,
}

impl ExtState {
    /// Whether a local exclusive request can be satisfied without any
    /// inter-node transaction *given the line is on-chip*.
    pub fn exclusive_ok_on_chip(self) -> bool {
        matches!(self, ExtState::HomeOnly | ExtState::HeldExclusive)
    }

    /// Whether this node is the line's home.
    pub fn home_local(self) -> bool {
        matches!(self, ExtState::HomeOnly | ExtState::HomeRemoteShared)
    }
}

/// Who owns an on-chip line (and therefore whose eviction carries data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The L2 bank holds the valid (authoritative on-chip) copy.
    L2,
    /// The given L1 is the owner.
    L1(Slot),
}

/// Consolidated per-line on-chip state at the owning L2 controller.
#[derive(Debug, Clone)]
pub struct DupEntry {
    l1: [Mesi; MAX_SLOTS],
    /// Current owner.
    pub owner: Owner,
    /// External (inter-node) state.
    pub ext: ExtState,
    /// Whether the L2 bank itself holds a valid copy.
    pub in_l2: bool,
    /// Whether the L2 copy is dirty with respect to memory.
    pub l2_dirty: bool,
    /// Data version of the L2 copy (meaningful when `in_l2`).
    pub l2_version: u64,
    /// Whether the node's data differs from memory/home even though no
    /// copy is in Modified state — set when a dirty owner is downgraded
    /// by a read forward, so that the *owner's* later eviction still
    /// writes back (the paper's "even clean lines ... may cause a
    /// write-back").
    pub node_dirty: bool,
}

impl DupEntry {
    fn new(ext: ExtState) -> Self {
        DupEntry {
            l1: [Mesi::Invalid; MAX_SLOTS],
            owner: Owner::L2,
            ext,
            in_l2: false,
            l2_dirty: false,
            l2_version: 0,
            node_dirty: false,
        }
    }

    /// The recorded L1 state for `slot`.
    pub fn l1_state(&self, slot: Slot) -> Mesi {
        self.l1[slot.index()]
    }

    /// Slots currently holding any copy.
    pub fn holders(&self) -> impl Iterator<Item = Slot> + '_ {
        self.l1
            .iter()
            .enumerate()
            .filter(|(_, m)| m.readable())
            .map(|(i, _)| Slot(i as u8))
    }

    /// The slot holding the line in E or M, if any.
    pub fn exclusive_holder(&self) -> Option<Slot> {
        self.l1
            .iter()
            .position(|m| m.writable())
            .map(|i| Slot(i as u8))
    }

    /// Number of L1 copies.
    pub fn holder_count(&self) -> usize {
        self.l1.iter().filter(|m| m.readable()).count()
    }

    /// Whether any copy (L1 or L2) exists on-chip.
    pub fn any_copy(&self) -> bool {
        self.in_l2 || self.holder_count() > 0
    }

    /// The version held by the current owner.
    ///
    /// # Panics
    ///
    /// Panics if the owner is an L1 — L1 versions live in the real L1
    /// arrays; callers must fetch them there. Only valid for L2 owner.
    pub fn l2_owner_version(&self) -> u64 {
        assert_eq!(
            self.owner,
            Owner::L2,
            "owner is an L1; read its version from the L1"
        );
        self.l2_version
    }
}

/// The duplicate-tag directory for one L2 bank: exact per-line knowledge
/// of "the on-chip cached copies for the subset of lines that map to it"
/// (paper §2.3).
#[derive(Debug, Default)]
pub struct DupTags {
    lines: FastMap<LineAddr, DupEntry>,
}

impl DupTags {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a line.
    pub fn get(&self, line: LineAddr) -> Option<&DupEntry> {
        self.lines.get(&line)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut DupEntry> {
        self.lines.get_mut(&line)
    }

    /// Record that `slot` now holds `line` in `state`, creating the entry
    /// (with external state `ext`) if this is the first on-chip copy.
    pub fn set_l1(&mut self, line: LineAddr, slot: Slot, state: Mesi, ext: ExtState) {
        let e = self.lines.entry(line).or_insert_with(|| {
            let mut e = DupEntry::new(ext);
            e.owner = Owner::L1(slot);
            e
        });
        e.l1[slot.index()] = state;
        if state.writable() {
            e.owner = Owner::L1(slot);
        }
    }

    /// Record that `slot` no longer holds `line`. Ownership falls back to
    /// the L2 copy if valid, else to any remaining sharer; the entry is
    /// removed when the last on-chip copy disappears. Returns the updated
    /// entry if it still exists.
    pub fn clear_l1(&mut self, line: LineAddr, slot: Slot) -> Option<&DupEntry> {
        let e = self.lines.get_mut(&line)?;
        e.l1[slot.index()] = Mesi::Invalid;
        if e.owner == Owner::L1(slot) {
            if e.in_l2 {
                e.owner = Owner::L2;
            } else {
                let next = e.holders().next();
                if let Some(s) = next {
                    e.owner = Owner::L1(s);
                }
            }
        }
        if !e.any_copy() {
            self.lines.remove(&line);
            return None;
        }
        self.lines.get(&line)
    }

    /// Record that the L2 now holds a valid copy and becomes owner.
    pub fn set_l2(&mut self, line: LineAddr, dirty: bool, version: u64, ext: ExtState) {
        let e = self.lines.entry(line).or_insert_with(|| DupEntry::new(ext));
        e.in_l2 = true;
        e.l2_dirty = dirty;
        e.l2_version = version;
        e.owner = Owner::L2;
    }

    /// Record that the L2 copy is gone (eviction or exclusive grant to an
    /// L1). Ownership passes to `new_owner` if given, else to any
    /// remaining L1 sharer. Returns whether the entry still exists.
    pub fn clear_l2(&mut self, line: LineAddr, new_owner: Option<Slot>) -> bool {
        let Some(e) = self.lines.get_mut(&line) else {
            return false;
        };
        e.in_l2 = false;
        e.l2_dirty = false;
        if e.owner == Owner::L2 {
            if let Some(s) = new_owner.or_else(|| e.holders().next()) {
                e.owner = Owner::L1(s);
            }
        }
        if !e.any_copy() {
            self.lines.remove(&line);
            return false;
        }
        true
    }

    /// Remove a line entirely (all copies invalidated). Returns the entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<DupEntry> {
        self.lines.remove(&line)
    }

    /// Number of tracked lines (for tests and stats).
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// All tracked lines (for invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &DupEntry)> {
        self.lines.iter().map(|(l, e)| (*l, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(100);

    fn islot(cpu: u8) -> Slot {
        Slot::new(CpuId(cpu), CacheKind::Instruction)
    }
    fn dslot(cpu: u8) -> Slot {
        Slot::new(CpuId(cpu), CacheKind::Data)
    }

    #[test]
    fn slot_round_trip() {
        for cpu in 0..8 {
            for kind in CacheKind::BOTH {
                let s = Slot::new(CpuId(cpu), kind);
                assert_eq!(s.cpu(), CpuId(cpu));
                assert_eq!(s.kind(), kind);
                assert!(s.index() < MAX_SLOTS);
            }
        }
        assert_eq!(dslot(3).to_string(), "cpu3/dL1");
    }

    #[test]
    fn first_l1_copy_becomes_owner() {
        let mut d = DupTags::new();
        d.set_l1(L, dslot(0), Mesi::Exclusive, ExtState::HomeOnly);
        let e = d.get(L).unwrap();
        assert_eq!(e.owner, Owner::L1(dslot(0)));
        assert_eq!(e.exclusive_holder(), Some(dslot(0)));
        assert_eq!(e.holder_count(), 1);
        assert!(!e.in_l2);
    }

    #[test]
    fn ownership_falls_back_on_clear() {
        let mut d = DupTags::new();
        d.set_l1(L, dslot(0), Mesi::Shared, ExtState::HomeOnly);
        d.set_l1(L, dslot(1), Mesi::Shared, ExtState::HomeOnly);
        // Owner is the first sharer; clearing it falls back to the other.
        assert_eq!(d.get(L).unwrap().owner, Owner::L1(dslot(0)));
        let e = d.clear_l1(L, dslot(0)).unwrap();
        assert_eq!(e.owner, Owner::L1(dslot(1)));
        // Last copy gone: entry removed.
        assert!(d.clear_l1(L, dslot(1)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn l2_copy_takes_ownership_and_releases_it() {
        let mut d = DupTags::new();
        d.set_l1(L, dslot(2), Mesi::Shared, ExtState::HomeOnly);
        d.set_l2(L, true, 7, ExtState::HomeOnly);
        let e = d.get(L).unwrap();
        assert_eq!(e.owner, Owner::L2);
        assert!(e.in_l2 && e.l2_dirty);
        assert_eq!(e.l2_owner_version(), 7);
        // Granting the line exclusively to an L1 clears the L2 copy.
        assert!(d.clear_l2(L, Some(dslot(2))));
        assert_eq!(d.get(L).unwrap().owner, Owner::L1(dslot(2)));
    }

    #[test]
    fn clear_l2_with_no_l1s_removes_entry() {
        let mut d = DupTags::new();
        d.set_l2(L, false, 0, ExtState::HeldShared);
        assert!(!d.clear_l2(L, None));
        assert!(d.get(L).is_none());
    }

    #[test]
    fn writable_l1_state_takes_ownership() {
        let mut d = DupTags::new();
        d.set_l2(L, false, 1, ExtState::HomeOnly);
        d.set_l1(L, islot(4), Mesi::Shared, ExtState::HomeOnly);
        assert_eq!(d.get(L).unwrap().owner, Owner::L2);
        d.set_l1(L, dslot(4), Mesi::Modified, ExtState::HomeOnly);
        assert_eq!(d.get(L).unwrap().owner, Owner::L1(dslot(4)));
    }

    #[test]
    fn holders_enumerates_copies() {
        let mut d = DupTags::new();
        d.set_l1(L, islot(0), Mesi::Shared, ExtState::HomeOnly);
        d.set_l1(L, islot(5), Mesi::Shared, ExtState::HomeOnly);
        let h: Vec<Slot> = d.get(L).unwrap().holders().collect();
        assert_eq!(h, vec![islot(0), islot(5)]);
    }

    #[test]
    fn ext_state_predicates() {
        assert!(ExtState::HomeOnly.exclusive_ok_on_chip());
        assert!(ExtState::HeldExclusive.exclusive_ok_on_chip());
        assert!(!ExtState::HomeRemoteShared.exclusive_ok_on_chip());
        assert!(!ExtState::HeldShared.exclusive_ok_on_chip());
        assert!(ExtState::HomeOnly.home_local());
        assert!(ExtState::HomeRemoteShared.home_local());
        assert!(!ExtState::HeldShared.home_local());
        assert!(!ExtState::HeldExclusive.home_local());
    }

    #[test]
    fn remove_returns_entry() {
        let mut d = DupTags::new();
        d.set_l1(L, dslot(1), Mesi::Modified, ExtState::HeldExclusive);
        let e = d.remove(L).unwrap();
        assert_eq!(e.ext, ExtState::HeldExclusive);
        assert!(d.remove(L).is_none());
    }

    #[test]
    fn iter_and_len() {
        let mut d = DupTags::new();
        d.set_l1(LineAddr(1), dslot(0), Mesi::Shared, ExtState::HomeOnly);
        d.set_l1(LineAddr(2), dslot(0), Mesi::Shared, ExtState::HomeOnly);
        assert_eq!(d.len(), 2);
        assert_eq!(d.iter().count(), 2);
    }
}
