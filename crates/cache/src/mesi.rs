//! The four-state MESI line states used by the first-level caches.
//!
//! The paper keeps "a 2-bit state field per cache line, corresponding to
//! the four states in a typical MESI protocol" (§2.1).

/// MESI coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mesi {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only copy; it is clean, and may be
    /// written without a coherence transaction (silently becoming
    /// [`Mesi::Modified`]).
    Exclusive,
    /// Shared: one of possibly several clean copies.
    Shared,
    /// Invalid: not present.
    Invalid,
}

impl Mesi {
    /// Whether a store may proceed without a coherence transaction.
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }

    /// Whether a load may be served from this copy.
    pub fn readable(self) -> bool {
        !matches!(self, Mesi::Invalid)
    }

    /// Whether this copy differs from memory.
    pub fn dirty(self) -> bool {
        matches!(self, Mesi::Modified)
    }
}

impl core::fmt::Display for Mesi {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let c = match self {
            Mesi::Modified => 'M',
            Mesi::Exclusive => 'E',
            Mesi::Shared => 'S',
            Mesi::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Mesi::Modified.writable() && Mesi::Modified.readable() && Mesi::Modified.dirty());
        assert!(Mesi::Exclusive.writable() && Mesi::Exclusive.readable());
        assert!(!Mesi::Exclusive.dirty());
        assert!(!Mesi::Shared.writable() && Mesi::Shared.readable() && !Mesi::Shared.dirty());
        assert!(!Mesi::Invalid.writable() && !Mesi::Invalid.readable() && !Mesi::Invalid.dirty());
    }

    #[test]
    fn display() {
        assert_eq!(Mesi::Modified.to_string(), "M");
        assert_eq!(Mesi::Invalid.to_string(), "I");
    }
}
