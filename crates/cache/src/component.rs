//! The cache-complex component adapter.
//!
//! One node's L1 set, interleaved L2 banks, and the bank occupancy
//! servers, behind the kernel's [`Component`] interface. The complex is
//! pure coherence-state logic: a [`CacheEvent`] names a bank and the
//! [`BankEvent`] to run through it, and every resulting [`BankAction`]
//! comes back out the port at the event's own time — latency (bank
//! occupancy, ICS transfers, memory reads) is charged by the wiring.

use piranha_kernel::{Component, Port, Server};
use piranha_types::{Duration, SimTime};

use crate::{BankAction, BankEvent, DupTags, L1Set, L2Bank};

/// An event for the cache complex: run `ev` through bank `bank`.
#[derive(Debug, Clone)]
pub struct CacheEvent {
    /// Target L2 bank index within this node.
    pub bank: usize,
    /// The protocol event to process.
    pub ev: BankEvent,
}

/// One node's cache hierarchy: L1 instruction/data pairs plus the
/// node-interleaved L2 banks and their occupancy servers.
#[derive(Debug)]
pub struct CacheComplex {
    l1s: L1Set,
    banks: Vec<L2Bank>,
    bank_srv: Vec<Server>,
}

impl CacheComplex {
    /// Assemble a complex from a pre-built L1 set and L2 banks.
    pub fn new(l1s: L1Set, banks: Vec<L2Bank>) -> Self {
        let bank_srv = (0..banks.len()).map(|_| Server::new()).collect();
        CacheComplex {
            l1s,
            banks,
            bank_srv,
        }
    }

    /// Number of L2 banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The duplicate-tag directory of bank `bank`.
    pub fn dup(&self, bank: usize) -> &DupTags {
        self.banks[bank].dup()
    }

    /// Bank `bank` itself (coherence checks, tests).
    pub fn bank(&self, bank: usize) -> &L2Bank {
        &self.banks[bank]
    }

    /// The node's L1 set.
    pub fn l1s(&self) -> &L1Set {
        &self.l1s
    }

    /// Mutable access to the L1 set (the CPU cluster advances against
    /// it; the RAS persist barrier scans it).
    pub fn l1s_mut(&mut self) -> &mut L1Set {
        &mut self.l1s
    }

    /// Acquire bank `bank`'s occupancy server for `dur` starting no
    /// earlier than `at`; returns the service start time.
    pub fn acquire(&mut self, bank: usize, at: SimTime, dur: Duration) -> SimTime {
        self.bank_srv[bank].acquire(at, dur)
    }

    /// Total lookups served across the node's banks.
    pub fn lookups(&self) -> u64 {
        self.bank_srv.iter().map(|s| s.jobs()).sum()
    }
}

impl Component for CacheComplex {
    type Event = CacheEvent;
    type Action = BankAction;
    type Ctx<'a> = ();

    fn handle(&mut self, now: SimTime, event: CacheEvent, _ctx: (), out: &mut Port<BankAction>) {
        for act in self.banks[event.bank].handle(event.ev, &mut self.l1s) {
            out.emit(now, act);
        }
    }
}
