//! Translation lookaside buffers (paper §2.1: "the L1 cache modules
//! include tag compare logic, instruction and data TLBs (256 entries,
//! 4-way associative), and a store buffer").
//!
//! The simulator's addresses are physical, so the TLB models *reach*
//! rather than translation: accesses outside the currently-mapped pages
//! charge a miss penalty (a PALcode-style software fill on Alpha). This
//! matters for OLTP, whose multi-megabyte footprints exceed the 2 MB
//! reach of 256 × 8 KB entries.

use piranha_types::Addr;

/// TLB geometry and fill cost.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Total entries (256 in the paper).
    pub entries: usize,
    /// Associativity (4-way in the paper).
    pub ways: usize,
    /// Page size in bytes (8 KB, the Alpha base page).
    pub page_bytes: u64,
    /// Cycles charged for a miss (software PTE fill).
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// The paper's TLB: 256 entries, 4-way, 8 KB pages.
    pub fn paper_default() -> Self {
        TlbConfig {
            entries: 256,
            ways: 4,
            page_bytes: 8192,
            miss_penalty: 20,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A set-associative TLB with LRU replacement.
///
/// # Examples
///
/// ```
/// use piranha_cache::{Tlb, TlbConfig};
/// use piranha_types::Addr;
///
/// let mut tlb = Tlb::new(TlbConfig::paper_default());
/// assert!(!tlb.access(Addr(0x4000)), "cold miss");
/// assert!(tlb.access(Addr(0x5FFF)), "same 8 KB page hits");
/// ```
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<Vec<(u64, u64)>>, // (page, stamp)
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// An empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not tile into sets.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways),
            "TLB geometry must tile"
        );
        let sets = cfg.entries / cfg.ways;
        Tlb {
            cfg,
            sets: vec![Vec::new(); sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up (and on miss, fill) the mapping for `addr`; returns
    /// whether it hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        let page = addr.0 / self.cfg.page_bytes;
        let si = (page % self.sets.len() as u64) as usize;
        self.tick += 1;
        let set = &mut self.sets[si];
        if let Some(e) = set.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() >= self.cfg.ways {
            let (lru, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, e)| (i, *e))
                .expect("set non-empty");
            set.remove(lru);
        }
        set.push((page, self.tick));
        false
    }

    /// The currently-mapped page numbers, sorted — the TLB's occupancy
    /// irrespective of recency stamps, for warming-fidelity checks.
    pub fn resident_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .sets
            .iter()
            .flat_map(|s| s.iter().map(|(p, _)| *p))
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Miss penalty in CPU cycles.
    pub fn miss_penalty(&self) -> u64 {
        self.cfg.miss_penalty
    }

    /// Hit rate so far (1.0 if untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Mapping reach in bytes (entries × page size).
    pub fn reach_bytes(&self) -> u64 {
        self.cfg.entries as u64 * self.cfg.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reach_is_2mb() {
        let t = Tlb::new(TlbConfig::paper_default());
        assert_eq!(t.reach_bytes(), 2 << 20);
    }

    #[test]
    fn hit_within_page_miss_across() {
        let mut t = Tlb::new(TlbConfig::paper_default());
        assert!(!t.access(Addr(0)));
        assert!(t.access(Addr(8191)));
        assert!(!t.access(Addr(8192)));
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn working_set_within_reach_stays_resident() {
        let mut t = Tlb::new(TlbConfig::paper_default());
        // 128 pages (1 MB) — half the reach.
        for round in 0..4 {
            for p in 0..128u64 {
                let hit = t.access(Addr(p * 8192));
                if round > 0 {
                    assert!(hit, "page {p} should stay mapped");
                }
            }
        }
        assert!(t.hit_rate() > 0.7);
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let mut t = Tlb::new(TlbConfig::paper_default());
        // 1024 pages (8 MB) cycled: 4x the reach, LRU-hostile.
        for _ in 0..3 {
            for p in 0..1024u64 {
                t.access(Addr(p * 8192));
            }
        }
        assert!(
            t.hit_rate() < 0.1,
            "cyclic over-reach thrashes: {}",
            t.hit_rate()
        );
    }

    #[test]
    fn lru_within_set() {
        // 2 entries, 2 ways: one set.
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            ways: 2,
            page_bytes: 8192,
            miss_penalty: 20,
        });
        t.access(Addr(0));
        t.access(Addr(8192));
        t.access(Addr(0)); // refresh page 0
        t.access(Addr(16384)); // evicts page 1 (LRU)
        assert!(t.access(Addr(0)));
        assert!(!t.access(Addr(8192)));
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn bad_geometry_panics() {
        Tlb::new(TlbConfig {
            entries: 10,
            ways: 4,
            page_bytes: 8192,
            miss_penalty: 1,
        });
    }
}
