//! The first-level cache: 64 KB, 2-way, blocking, MESI (paper §2.1).
//!
//! Piranha uses "virtually the same design" for the instruction and data
//! caches, keeping even the iL1 hardware-coherent; this type therefore
//! serves both roles. Lines carry a *version* standing in for their data
//! (see the crate docs).

use piranha_types::LineAddr;

use crate::config::L1Config;
use crate::mesi::Mesi;

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The replaced line.
    pub line: LineAddr,
    /// Its state at eviction.
    pub state: Mesi,
    /// Its data version.
    pub version: u64,
}

/// Result of attempting a store against the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The line was writable (M, or E silently upgraded to M); the store
    /// retired locally.
    Hit,
    /// The line is present in Shared state; an upgrade transaction is
    /// required before the store can commit.
    NeedUpgrade,
    /// The line is absent; a read-exclusive transaction is required.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    state: Mesi,
    version: u64,
    /// Monotone counter for LRU ordering within the set.
    stamp: u64,
}

/// A first-level cache (either iL1 or dL1).
///
/// # Examples
///
/// ```
/// use piranha_cache::{L1Cache, L1Config, Mesi, StoreOutcome};
/// use piranha_types::LineAddr;
///
/// let mut l1 = L1Cache::new(L1Config::paper_default());
/// let line = LineAddr(0x40);
/// assert!(!l1.access_read(line));          // cold miss
/// l1.fill(line, Mesi::Exclusive, 7);
/// assert!(l1.access_read(line));           // now a hit
/// assert_eq!(l1.store(line, 8), StoreOutcome::Hit); // E upgrades silently
/// assert_eq!(l1.state(line), Mesi::Modified);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    cfg: L1Config,
    sets: Vec<Vec<Option<Entry>>>,
    tick: u64,
}

impl L1Cache {
    /// An empty cache with the given geometry.
    pub fn new(cfg: L1Config) -> Self {
        let sets = cfg.sets();
        L1Cache {
            cfg,
            sets: vec![vec![None; cfg.ways]; sets],
            tick: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 % self.sets.len() as u64) as usize
    }

    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        let si = self.set_index(line);
        self.sets[si]
            .iter()
            .position(|e| e.is_some_and(|e| e.tag == line.0))
            .map(|wi| (si, wi))
    }

    fn touch(&mut self, si: usize, wi: usize) {
        self.tick += 1;
        if let Some(e) = &mut self.sets[si][wi] {
            e.stamp = self.tick;
        }
    }

    /// The MESI state of `line` ([`Mesi::Invalid`] if absent).
    pub fn state(&self, line: LineAddr) -> Mesi {
        self.find(line)
            .map_or(Mesi::Invalid, |(si, wi)| self.sets[si][wi].unwrap().state)
    }

    /// The data version of `line`, if present.
    pub fn version(&self, line: LineAddr) -> Option<u64> {
        self.find(line)
            .map(|(si, wi)| self.sets[si][wi].unwrap().version)
    }

    /// Attempt a read (load or instruction fetch). Returns whether it hit;
    /// a hit refreshes LRU state.
    pub fn access_read(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some((si, wi)) => {
                self.touch(si, wi);
                true
            }
            None => false,
        }
    }

    /// Attempt a store. On a writable copy the store commits immediately,
    /// stamping `version` (an E copy silently becomes M, as MESI allows).
    pub fn store(&mut self, line: LineAddr, version: u64) -> StoreOutcome {
        match self.find(line) {
            Some((si, wi)) => {
                let state = self.sets[si][wi].unwrap().state;
                if state.writable() {
                    let e = self.sets[si][wi].as_mut().unwrap();
                    e.state = Mesi::Modified;
                    e.version = version;
                    self.touch(si, wi);
                    StoreOutcome::Hit
                } else {
                    StoreOutcome::NeedUpgrade
                }
            }
            None => StoreOutcome::Miss,
        }
    }

    /// Install `line` with the granted state, evicting (and returning) the
    /// LRU victim if the set was full.
    ///
    /// # Panics
    ///
    /// Panics if `line` is already present (the L1 is blocking: at most
    /// one outstanding miss per line) or if `state` is Invalid.
    pub fn fill(&mut self, line: LineAddr, state: Mesi, version: u64) -> Option<Victim> {
        assert!(state.readable(), "cannot fill a line as Invalid");
        assert!(
            self.find(line).is_none(),
            "fill of already-present line {line}"
        );
        let si = self.set_index(line);
        self.tick += 1;
        let entry = Entry {
            tag: line.0,
            state,
            version,
            stamp: self.tick,
        };
        // Prefer an invalid way.
        if let Some(wi) = self.sets[si].iter().position(Option::is_none) {
            self.sets[si][wi] = Some(entry);
            return None;
        }
        // Evict the LRU way.
        let (wi, _) = self.sets[si]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.unwrap().stamp)
            .expect("set has ways");
        let old = self.sets[si][wi].replace(entry).unwrap();
        Some(Victim {
            line: LineAddr(old.tag),
            state: old.state,
            version: old.version,
        })
    }

    /// Grant an upgrade: S → M for a pending store, stamping `version`.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present in Shared state (upgrade races
    /// where the copy was invalidated must be resolved by the L2 granting
    /// a full fill instead).
    pub fn upgrade(&mut self, line: LineAddr, version: u64) {
        let (si, wi) = self.find(line).expect("upgrade of absent line");
        let e = self.sets[si][wi].as_mut().unwrap();
        assert_eq!(e.state, Mesi::Shared, "upgrade from non-Shared state");
        e.state = Mesi::Modified;
        e.version = version;
        self.touch(si, wi);
    }

    /// Invalidate `line` (coherence action), returning its state and
    /// version if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(Mesi, u64)> {
        let (si, wi) = self.find(line)?;
        let e = self.sets[si][wi].take().unwrap();
        Some((e.state, e.version))
    }

    /// Downgrade `line` to Shared (servicing a read forward), returning
    /// `(was_dirty, version)` if present.
    pub fn downgrade(&mut self, line: LineAddr) -> Option<(bool, u64)> {
        let (si, wi) = self.find(line)?;
        let e = self.sets[si][wi].as_mut().unwrap();
        let dirty = e.state.dirty();
        let v = e.version;
        e.state = Mesi::Shared;
        Some((dirty, v))
    }

    /// Iterate over all resident lines as `(line, state, version)`; used
    /// by invariant checks in tests.
    pub fn resident(&self) -> impl Iterator<Item = (LineAddr, Mesi, u64)> + '_ {
        self.sets
            .iter()
            .flatten()
            .flatten()
            .map(|e| (LineAddr(e.tag), e.state, e.version))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().flatten().count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache's geometry.
    pub fn config(&self) -> L1Config {
        self.cfg
    }
}

/// All first-level caches of one chip, indexed by [`Slot`]: CPU *i*'s iL1
/// is slot `2i`, its dL1 slot `2i + 1`.
///
/// The L2 bank state machines operate directly on this set when applying
/// coherence actions (fills, invalidations, downgrades), mirroring how the
/// real L2 controllers command the L1s over the intra-chip switch.
#[derive(Debug)]
pub struct L1Set {
    caches: Vec<L1Cache>,
}

use crate::dup::Slot;

impl L1Set {
    /// Create `cpus * 2` caches with the given geometry.
    pub fn new(cpus: usize, cfg: L1Config) -> Self {
        L1Set {
            caches: (0..cpus * 2).map(|_| L1Cache::new(cfg)).collect(),
        }
    }

    /// The cache at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the number of caches.
    pub fn get(&self, slot: Slot) -> &L1Cache {
        &self.caches[slot.index()]
    }

    /// Mutable access to the cache at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the number of caches.
    pub fn get_mut(&mut self, slot: Slot) -> &mut L1Cache {
        &mut self.caches[slot.index()]
    }

    /// Number of caches (2 × CPUs).
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// Whether the set is empty (zero CPUs).
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// Iterate over `(slot, cache)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &L1Cache)> {
        self.caches
            .iter()
            .enumerate()
            .map(|(i, c)| (Slot(i as u8), c))
    }

    /// Simultaneous mutable access to one CPU's iL1 and dL1 (used by the
    /// CPU timing models, which probe both caches while advancing).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the number of CPUs.
    pub fn pair_mut(&mut self, cpu: piranha_types::CpuId) -> (&mut L1Cache, &mut L1Cache) {
        let i = cpu.index() * 2;
        let (a, b) = self.caches.split_at_mut(i + 1);
        (&mut a[i], &mut b[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        // 2 sets x 2 ways for eviction-focused tests.
        L1Cache::new(L1Config {
            size_bytes: 4 * 64,
            ways: 2,
        })
    }

    // Lines that map to set 0 of the tiny cache.
    fn set0(i: u64) -> LineAddr {
        LineAddr(i * 2)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut l1 = L1Cache::new(L1Config::paper_default());
        let line = LineAddr(123);
        assert!(!l1.access_read(line));
        l1.fill(line, Mesi::Shared, 1);
        assert!(l1.access_read(line));
        assert_eq!(l1.state(line), Mesi::Shared);
        assert_eq!(l1.version(line), Some(1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut l1 = tiny();
        let (a, b, c) = (set0(0), set0(1), set0(2));
        l1.fill(a, Mesi::Shared, 0);
        l1.fill(b, Mesi::Shared, 0);
        // Touch `a` so `b` becomes LRU.
        assert!(l1.access_read(a));
        let v = l1.fill(c, Mesi::Shared, 0).expect("set full, must evict");
        assert_eq!(v.line, b);
        assert!(l1.access_read(a));
        assert!(l1.access_read(c));
        assert!(!l1.access_read(b));
    }

    #[test]
    fn fill_prefers_invalid_way() {
        let mut l1 = tiny();
        l1.fill(set0(0), Mesi::Shared, 0);
        l1.fill(set0(1), Mesi::Shared, 0);
        l1.invalidate(set0(0));
        assert!(
            l1.fill(set0(2), Mesi::Shared, 0).is_none(),
            "no eviction needed"
        );
        assert!(l1.access_read(set0(1)));
    }

    #[test]
    fn store_semantics() {
        let mut l1 = tiny();
        let line = set0(0);
        assert_eq!(l1.store(line, 5), StoreOutcome::Miss);
        l1.fill(line, Mesi::Shared, 1);
        assert_eq!(l1.store(line, 5), StoreOutcome::NeedUpgrade);
        assert_eq!(
            l1.state(line),
            Mesi::Shared,
            "failed store must not change state"
        );
        l1.upgrade(line, 5);
        assert_eq!(l1.state(line), Mesi::Modified);
        assert_eq!(l1.version(line), Some(5));
        assert_eq!(l1.store(line, 6), StoreOutcome::Hit);
        assert_eq!(l1.version(line), Some(6));
    }

    #[test]
    fn exclusive_upgrades_silently() {
        let mut l1 = tiny();
        let line = set0(0);
        l1.fill(line, Mesi::Exclusive, 1);
        assert_eq!(l1.store(line, 2), StoreOutcome::Hit);
        assert_eq!(l1.state(line), Mesi::Modified);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut l1 = tiny();
        let line = set0(0);
        l1.fill(line, Mesi::Modified, 9);
        assert_eq!(l1.downgrade(line), Some((true, 9)));
        assert_eq!(l1.state(line), Mesi::Shared);
        assert_eq!(l1.downgrade(line), Some((false, 9)));
        assert_eq!(l1.invalidate(line), Some((Mesi::Shared, 9)));
        assert_eq!(l1.state(line), Mesi::Invalid);
        assert_eq!(l1.invalidate(line), None);
        assert_eq!(l1.downgrade(line), None);
    }

    #[test]
    fn victim_carries_state_and_version() {
        let mut l1 = tiny();
        l1.fill(set0(0), Mesi::Modified, 42);
        l1.fill(set0(1), Mesi::Shared, 1);
        l1.access_read(set0(1));
        l1.access_read(set0(1));
        // set0(0) is LRU despite being dirty.
        let v = l1.fill(set0(2), Mesi::Shared, 0).unwrap();
        assert_eq!(
            v,
            Victim {
                line: set0(0),
                state: Mesi::Modified,
                version: 42
            }
        );
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_fill_panics() {
        let mut l1 = tiny();
        l1.fill(set0(0), Mesi::Shared, 0);
        l1.fill(set0(0), Mesi::Shared, 0);
    }

    #[test]
    #[should_panic(expected = "non-Shared")]
    fn upgrade_from_exclusive_panics() {
        let mut l1 = tiny();
        l1.fill(set0(0), Mesi::Exclusive, 0);
        l1.upgrade(set0(0), 1);
    }

    #[test]
    fn resident_iterates_all() {
        let mut l1 = tiny();
        l1.fill(LineAddr(0), Mesi::Shared, 1);
        l1.fill(LineAddr(1), Mesi::Modified, 2);
        let mut got: Vec<_> = l1.resident().collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (LineAddr(0), Mesi::Shared, 1),
                (LineAddr(1), Mesi::Modified, 2)
            ]
        );
        assert_eq!(l1.len(), 2);
        assert!(!l1.is_empty());
    }

    #[test]
    fn paper_config_capacity() {
        let mut l1 = L1Cache::new(L1Config::paper_default());
        // Fill exactly 64KB worth of distinct lines: no evictions.
        for i in 0..1024 {
            assert!(l1.fill(LineAddr(i), Mesi::Shared, 0).is_none());
        }
        assert_eq!(l1.len(), 1024);
        // One more line in an occupied set must evict.
        assert!(l1.fill(LineAddr(1024), Mesi::Shared, 0).is_some());
    }
}
