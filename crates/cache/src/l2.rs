//! One bank of the shared, non-inclusive second-level cache (paper §2.3).
//!
//! The L2 controller is the intra-chip coherence point: on every access it
//! checks the duplicate L1 tags and its own tags in parallel (modelled by
//! [`DupTags`]) and then either (a) services the request directly, (b)
//! forwards it to a local owner L1, (c) forwards it to one of the protocol
//! engines, or (d) obtains the data from memory — exactly the four cases
//! the paper enumerates.
//!
//! Distinctive behaviours reproduced here:
//!
//! * **No inclusion**: L1 misses that also miss in the L2 fill straight
//!   from memory *without allocating in the L2*; the L2 is a victim cache
//!   filled only by L1 replacements.
//! * **Ownership-based write-backs**: only the owner's eviction carries
//!   data into the L2 — even for lines in Shared state (a previously
//!   dirty line downgraded by a read forward stays dirty at node level
//!   via `node_dirty`), while non-owner evictions are tag-only drops.
//! * **Clean-exclusive**: a read miss with no other sharers is granted an
//!   Exclusive copy so later stores need no upgrade transaction.
//! * **Eager exclusive replies**: a local exclusive request whose only
//!   obstacle is remote *sharers* is granted immediately while the home
//!   engine invalidates the remote copies in the background (§2.5.3).
//! * **Pending entries**: each controller blocks conflicting requests to
//!   a line with an outstanding transaction and replays them in order when
//!   it completes.
//!
//! The bank applies coherence state changes to the real L1s ([`L1Set`])
//! synchronously — justified by the transactional, ordered intra-chip
//! switch, which is also what lets Piranha drop acknowledgements for
//! on-chip invalidations — and returns [`BankAction`]s that carry the
//! *timing* consequences (ICS transfers, memory accesses, protocol-engine
//! work) for the chip simulator to schedule.

use piranha_types::FastMap;
use std::collections::VecDeque;

use piranha_types::{FillSource, LineAddr, RemoteSummary, ReqType};

use crate::config::L2BankConfig;
use crate::dup::{DupTags, ExtState, Owner, Slot};
use crate::l1::L1Set;
use crate::mesi::Mesi;

/// An input to the bank state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankEvent {
    /// An L1 miss arriving over the ICS.
    Miss {
        /// The requesting L1.
        slot: Slot,
        /// The coherence request implied by the access.
        req: ReqType,
        /// The requested line.
        line: LineAddr,
        /// Whether this node is the line's home.
        home_local: bool,
        /// For store-type requests, the version the pending store will
        /// write (pre-allocated by the chip's global version counter).
        store_version: Option<u64>,
    },
    /// An L1 eviction notification (sent with the fill that displaced it).
    Victim {
        /// The evicting L1.
        slot: Slot,
        /// The displaced line.
        line: LineAddr,
        /// Its state at eviction.
        state: Mesi,
        /// Its data version.
        version: u64,
    },
    /// Local memory returned data (and the directory summary read from
    /// the line's ECC bits) for an earlier [`BankAction::ReadMem`].
    MemData {
        /// The line.
        line: LineAddr,
        /// Memory's data version.
        version: u64,
        /// Remote caching summary from the directory.
        remote: RemoteSummary,
    },
    /// A protocol engine delivered the fill for an earlier
    /// [`BankAction::RemoteReq`] or [`BankAction::HomeRecall`].
    RemoteFill {
        /// The line.
        line: LineAddr,
        /// Granted state.
        grant: Mesi,
        /// Data version, or `None` for a data-less upgrade acknowledgement.
        version: Option<u64>,
        /// Where the fill came from (for stall attribution).
        source: FillSource,
    },
    /// A protocol engine needs the line's data and a state change: either
    /// the home engine exporting to a remote requester, or the remote
    /// engine servicing a forwarded request.
    Export {
        /// The line.
        line: LineAddr,
        /// Whether the remote requester needs exclusivity (all on-chip
        /// copies are invalidated) or a shared copy (owner downgraded).
        excl: bool,
    },
    /// An invalidation from the inter-node protocol (e.g. a CMI hop):
    /// destroy all on-chip copies. Never queued behind pending
    /// transactions — that is what makes the upgrade race resolvable.
    InvalAll {
        /// The line.
        line: LineAddr,
    },
}

/// A timing/externally-visible consequence of a bank event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankAction {
    /// The requesting L1 has been granted the line (state already
    /// installed); the chip should wake the CPU after the reply latency
    /// implied by `source`.
    Grant {
        /// The requester.
        slot: Slot,
        /// The line.
        line: LineAddr,
        /// Installed MESI state.
        state: Mesi,
        /// Data version installed (for stores, the store's version).
        version: u64,
        /// Service point, for Figure 5/6 attribution.
        source: FillSource,
        /// `true` if this grant answered an upgrade in place (no data
        /// moved).
        upgraded: bool,
    },
    /// An on-chip copy was invalidated (state already applied); the chip
    /// charges one ICS transfer.
    Inval {
        /// The L1 that lost its copy.
        slot: Slot,
        /// The line.
        line: LineAddr,
    },
    /// An on-chip exclusive copy was downgraded to Shared.
    Downgrade {
        /// The L1 affected.
        slot: Slot,
        /// The line.
        line: LineAddr,
    },
    /// An L1 fill displaced a victim that maps to a *different* bank; the
    /// chip must deliver it there as a [`BankEvent::Victim`].
    VictimDisplaced {
        /// The evicting L1.
        slot: Slot,
        /// The displaced line.
        line: LineAddr,
        /// State at eviction.
        state: Mesi,
        /// Data version.
        version: u64,
    },
    /// Read the line (data + directory) from this bank's memory
    /// controller; reply with [`BankEvent::MemData`].
    ReadMem {
        /// The line.
        line: LineAddr,
    },
    /// Write the line back to local memory.
    WriteMem {
        /// The line.
        line: LineAddr,
        /// Version being written.
        version: u64,
    },
    /// Hand a miss on a remote-homed line to the remote engine; it will
    /// eventually deliver [`BankEvent::RemoteFill`].
    RemoteReq {
        /// Requesting L1 (for the eventual grant).
        slot: Slot,
        /// The line.
        line: LineAddr,
        /// Request type.
        req: ReqType,
    },
    /// Send a dirty victim of a remote-homed line to the remote engine as
    /// an inter-node write-back.
    RemoteWb {
        /// The line.
        line: LineAddr,
        /// Version written back.
        version: u64,
    },
    /// Ask the home engine to invalidate all remote sharers of this
    /// locally-homed line (fire-and-forget: the local grant was eager).
    HomeInvalRemote {
        /// The line.
        line: LineAddr,
    },
    /// Ask the home engine to recall the line from its remote exclusive
    /// owner; it will eventually deliver [`BankEvent::RemoteFill`].
    HomeRecall {
        /// Requesting L1.
        slot: Slot,
        /// The line.
        line: LineAddr,
        /// Request type.
        req: ReqType,
    },
    /// Reply to an [`BankEvent::Export`]: the line's current data version
    /// and whether it was dirty at node level (the engine must then
    /// freshen memory / forward dirty data).
    ExportReply {
        /// The line.
        line: LineAddr,
        /// Data version.
        version: u64,
        /// Whether the node's copy was dirty with respect to memory.
        dirty: bool,
        /// Whether any copy existed on-chip (drives the home engine's
        /// clean-exclusive decision).
        cached: bool,
    },
}

/// A queued request waiting behind a pending transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissWaiter {
    /// A queued L1 miss.
    Miss {
        /// Requesting L1.
        slot: Slot,
        /// Request type.
        req: ReqType,
        /// Whether this node is home.
        home_local: bool,
        /// Pre-allocated store version for store-type requests.
        store_version: Option<u64>,
    },
    /// A queued export from a protocol engine.
    Export {
        /// Whether the exporting request needs exclusivity.
        excl: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendKind {
    LocalMiss {
        slot: Slot,
        req: ReqType,
        home_local: bool,
        store_version: Option<u64>,
    },
    Export {
        excl: bool,
    },
}

#[derive(Debug)]
struct Pending {
    kind: PendKind,
    waiters: VecDeque<MissWaiter>,
}

/// Least-recently-loaded tag array for the bank's own storage. Stamps are
/// set at allocation and *not* refreshed by hits, which is the paper's
/// "round-robin (or least-recently-loaded) replacement policy".
#[derive(Debug)]
struct L2Array {
    sets: Vec<Vec<Option<(u64, u64)>>>, // (tag, load_stamp)
    tick: u64,
}

impl L2Array {
    fn new(cfg: L2BankConfig) -> Self {
        L2Array {
            sets: vec![vec![None; cfg.ways]; cfg.sets()],
            tick: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        ((line.0 / 8) % self.sets.len() as u64) as usize
    }

    fn contains(&self, line: LineAddr) -> bool {
        let si = self.set_index(line);
        self.sets[si]
            .iter()
            .any(|e| e.is_some_and(|(t, _)| t == line.0))
    }

    /// Allocate `line`, returning the evicted line if the set was full.
    /// Lines for which `avoid` returns true (pending transactions) are
    /// skipped when choosing a victim if possible.
    fn allocate(&mut self, line: LineAddr, avoid: impl Fn(LineAddr) -> bool) -> Option<LineAddr> {
        debug_assert!(!self.contains(line), "L2 allocate of resident line");
        let si = self.set_index(line);
        self.tick += 1;
        if let Some(wi) = self.sets[si].iter().position(Option::is_none) {
            self.sets[si][wi] = Some((line.0, self.tick));
            return None;
        }
        let pick = self.sets[si]
            .iter()
            .enumerate()
            .filter(|(_, e)| !avoid(LineAddr(e.unwrap().0)))
            .min_by_key(|(_, e)| e.unwrap().1)
            .or_else(|| {
                self.sets[si]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.unwrap().1)
            });
        let (wi, _) = pick.expect("set has ways");
        let old = self.sets[si][wi].replace((line.0, self.tick)).unwrap();
        Some(LineAddr(old.0))
    }

    fn remove(&mut self, line: LineAddr) {
        let si = self.set_index(line);
        if let Some(w) = self.sets[si]
            .iter_mut()
            .find(|e| e.is_some_and(|(t, _)| t == line.0))
        {
            *w = None;
        }
    }
}

/// One bank of the shared L2, together with its duplicate-L1-tag
/// directory and pending-transaction table.
///
/// # Examples
///
/// ```
/// use piranha_cache::{BankAction, BankEvent, L1Config, L1Set, L2Bank, L2BankConfig, Slot};
/// use piranha_types::{LineAddr, ReqType};
///
/// let mut bank = L2Bank::new(L2BankConfig::paper_default(), 0, 1);
/// let mut l1s = L1Set::new(8, L1Config::paper_default());
/// // A cold read miss on a locally-homed line goes to memory.
/// let acts = bank.handle(
///     BankEvent::Miss {
///         slot: Slot(1),
///         req: ReqType::Read,
///         line: LineAddr(64),
///         home_local: true,
///         store_version: None,
///     },
///     &mut l1s,
/// );
/// assert_eq!(acts, vec![BankAction::ReadMem { line: LineAddr(64) }]);
/// ```
#[derive(Debug)]
pub struct L2Bank {
    dup: DupTags,
    array: L2Array,
    pending: FastMap<LineAddr, Pending>,
    bank_id: u64,
    bank_count: u64,
}

impl L2Bank {
    /// An empty bank. `bank_id`/`bank_count` define which lines this bank
    /// owns: those with `line % bank_count == bank_id` (the paper's
    /// low-order-bit interleaving).
    ///
    /// # Panics
    ///
    /// Panics if `bank_id >= bank_count` or `bank_count == 0`.
    pub fn new(cfg: L2BankConfig, bank_id: u64, bank_count: u64) -> Self {
        assert!(
            bank_count > 0 && bank_id < bank_count,
            "invalid bank interleave"
        );
        L2Bank {
            dup: DupTags::new(),
            array: L2Array::new(cfg),
            pending: FastMap::default(),
            bank_id,
            bank_count,
        }
    }

    /// Whether this bank owns `line` under the interleaving.
    pub fn owns(&self, line: LineAddr) -> bool {
        line.0 % self.bank_count == self.bank_id
    }

    /// The duplicate-tag directory (for invariant checks in tests).
    pub fn dup(&self) -> &DupTags {
        &self.dup
    }

    /// Whether the bank currently has a pending transaction on `line`.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.pending.contains_key(&line)
    }

    /// Whether the bank's own storage holds `line` (for tests).
    pub fn in_array(&self, line: LineAddr) -> bool {
        self.array.contains(line)
    }

    /// Every line resident in the bank's own storage, sorted — the
    /// array's occupancy irrespective of load stamps, for
    /// warming-fidelity checks.
    pub fn resident_lines(&self) -> Vec<LineAddr> {
        let mut lines: Vec<LineAddr> = self
            .array
            .sets
            .iter()
            .flat_map(|s| s.iter().flatten().map(|&(t, _)| LineAddr(t)))
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Feed one event through the bank, applying coherence state changes
    /// to `l1s` and returning the timing actions.
    ///
    /// # Panics
    ///
    /// Panics if the event concerns a line this bank does not own, or on
    /// internal protocol invariant violations (which indicate bugs, not
    /// recoverable conditions).
    pub fn handle(&mut self, ev: BankEvent, l1s: &mut L1Set) -> Vec<BankAction> {
        let mut out = Vec::new();
        match ev {
            BankEvent::Miss {
                slot,
                req,
                line,
                home_local,
                store_version,
            } => {
                assert!(self.owns(line), "miss for line {line} routed to wrong bank");
                if let Some(p) = self.pending.get_mut(&line) {
                    p.waiters.push_back(MissWaiter::Miss {
                        slot,
                        req,
                        home_local,
                        store_version,
                    });
                } else {
                    self.start_miss(slot, req, line, home_local, store_version, l1s, &mut out);
                }
            }
            BankEvent::Victim {
                slot,
                line,
                state,
                version,
            } => {
                assert!(
                    self.owns(line),
                    "victim for line {line} routed to wrong bank"
                );
                self.victim(slot, line, state, version, &mut out);
            }
            BankEvent::MemData {
                line,
                version,
                remote,
            } => {
                self.mem_data(line, version, remote, l1s, &mut out);
            }
            BankEvent::RemoteFill {
                line,
                grant,
                version,
                source,
            } => {
                self.remote_fill(line, grant, version, source, l1s, &mut out);
            }
            BankEvent::Export { line, excl } => {
                assert!(
                    self.owns(line),
                    "export for line {line} routed to wrong bank"
                );
                if let Some(p) = self.pending.get_mut(&line) {
                    p.waiters.push_back(MissWaiter::Export { excl });
                } else {
                    self.start_export(line, excl, l1s, &mut out);
                }
            }
            BankEvent::InvalAll { line } => {
                self.inval_all(line, l1s, &mut out);
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn start_miss(
        &mut self,
        slot: Slot,
        req: ReqType,
        line: LineAddr,
        home_local: bool,
        store_version: Option<u64>,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        if self.dup.get(line).is_some() {
            if req == ReqType::Read {
                self.serve_read_on_chip(slot, line, l1s, out);
            } else {
                self.serve_excl(slot, req, line, home_local, store_version, l1s, out);
            }
            return;
        }
        // No on-chip copy at all.
        let eff_req = if req == ReqType::Upgrade {
            ReqType::ReadEx
        } else {
            req
        };
        if home_local {
            out.push(BankAction::ReadMem { line });
        } else {
            out.push(BankAction::RemoteReq {
                slot,
                line,
                req: eff_req,
            });
        }
        self.pending.insert(
            line,
            Pending {
                kind: PendKind::LocalMiss {
                    slot,
                    req: eff_req,
                    home_local,
                    store_version,
                },
                waiters: VecDeque::new(),
            },
        );
    }

    fn serve_read_on_chip(
        &mut self,
        slot: Slot,
        line: LineAddr,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let e = self.dup.get(line).expect("caller checked");
        let ext = e.ext;
        match e.owner {
            Owner::L2 => {
                let version = e.l2_version;
                let lone = e.holder_count() == 0 && ext.exclusive_ok_on_chip();
                if lone {
                    // Clean-exclusive: hand the only copy to the L1 so a
                    // later store upgrades silently; the L2 copy is
                    // dropped (no duplicates).
                    let dirty_carry = e.l2_dirty;
                    self.array.remove(line);
                    self.dup.clear_l2(line, None);
                    self.install(slot, line, Mesi::Exclusive, version, ext, l1s, out);
                    let en = self.dup.get_mut(line).unwrap();
                    en.owner = Owner::L1(slot);
                    en.node_dirty = dirty_carry;
                    out.push(BankAction::Grant {
                        slot,
                        line,
                        state: Mesi::Exclusive,
                        version,
                        source: FillSource::L2Hit,
                        upgraded: false,
                    });
                } else {
                    self.install(slot, line, Mesi::Shared, version, ext, l1s, out);
                    out.push(BankAction::Grant {
                        slot,
                        line,
                        state: Mesi::Shared,
                        version,
                        source: FillSource::L2Hit,
                        upgraded: false,
                    });
                }
            }
            Owner::L1(owner) => {
                // Forward to the on-chip owner ("L2 Fwd"): the owner
                // supplies data and downgrades; ownership moves to the
                // requester (the last requester, per the paper).
                assert_ne!(owner, slot, "requester missed, cannot own the line");
                let (was_dirty, version) = l1s
                    .get_mut(owner)
                    .downgrade(line)
                    .expect("dup tags said owner holds the line");
                if was_dirty {
                    self.dup.get_mut(line).unwrap().node_dirty = true;
                }
                self.dup.set_l1(line, owner, Mesi::Shared, ext);
                out.push(BankAction::Downgrade { slot: owner, line });
                self.install(slot, line, Mesi::Shared, version, ext, l1s, out);
                self.dup.get_mut(line).unwrap().owner = Owner::L1(slot);
                out.push(BankAction::Grant {
                    slot,
                    line,
                    state: Mesi::Shared,
                    version,
                    source: FillSource::L2Fwd,
                    upgraded: false,
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_excl(
        &mut self,
        slot: Slot,
        req: ReqType,
        line: LineAddr,
        home_local: bool,
        store_version: Option<u64>,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let ext = self.dup.get(line).expect("caller checked").ext;
        match ext {
            ExtState::HomeOnly | ExtState::HeldExclusive => {
                self.grant_excl_on_chip(slot, line, store_version, l1s, out);
            }
            ExtState::HomeRemoteShared => {
                // Remote copies are only sharers: grant eagerly and let
                // the home engine invalidate them in the background
                // (eager exclusive reply, §2.5.3).
                out.push(BankAction::HomeInvalRemote { line });
                self.dup.get_mut(line).unwrap().ext = ExtState::HomeOnly;
                self.grant_excl_on_chip(slot, line, store_version, l1s, out);
            }
            ExtState::HeldShared => {
                // We only hold shared rights: upgrade through home. Local
                // copies stay readable while we wait.
                out.push(BankAction::RemoteReq {
                    slot,
                    line,
                    req: ReqType::Upgrade,
                });
                self.pending.insert(
                    line,
                    Pending {
                        kind: PendKind::LocalMiss {
                            slot,
                            req,
                            home_local,
                            store_version,
                        },
                        waiters: VecDeque::new(),
                    },
                );
            }
        }
    }

    /// Grant exclusivity using only on-chip state (all external rights
    /// already secured). Commits the pending store.
    fn grant_excl_on_chip(
        &mut self,
        slot: Slot,
        line: LineAddr,
        store_version: Option<u64>,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let sv = store_version.expect("exclusive-type requests carry a store version");
        let e = self.dup.get(line).expect("on-chip copy exists");
        let ext = e.ext;
        let owner0 = e.owner;
        let in_l2 = e.in_l2;
        let requester_holds = e.l1_state(slot).readable();
        let holders: Vec<Slot> = e.holders().collect();
        let mut source = FillSource::L2Hit;
        for h in holders {
            if h == slot {
                continue;
            }
            let _ = l1s
                .get_mut(h)
                .invalidate(line)
                .expect("dup tags said holder has the line");
            if owner0 == Owner::L1(h) {
                source = FillSource::L2Fwd;
            }
            self.dup.clear_l1(line, h);
            out.push(BankAction::Inval { slot: h, line });
        }
        if in_l2 {
            self.array.remove(line);
            self.dup.clear_l2(line, None);
        }
        if requester_holds {
            // Upgrade in place: no data moves; commit the store.
            l1s.get_mut(slot).upgrade(line, sv);
            self.dup.set_l1(line, slot, Mesi::Modified, ext);
            let en = self.dup.get_mut(line).unwrap();
            en.owner = Owner::L1(slot);
            en.ext = ext;
            out.push(BankAction::Grant {
                slot,
                line,
                state: Mesi::Modified,
                version: sv,
                source: FillSource::L2Hit,
                upgraded: true,
            });
        } else {
            // Fill with data (from the L2 copy or the invalidated owner)
            // and commit the store on top.
            self.install(slot, line, Mesi::Modified, sv, ext, l1s, out);
            let en = self.dup.get_mut(line).unwrap();
            en.owner = Owner::L1(slot);
            en.ext = ext;
            out.push(BankAction::Grant {
                slot,
                line,
                state: Mesi::Modified,
                version: sv,
                source,
                upgraded: false,
            });
        }
    }

    /// Install a line into an L1, updating the duplicate tags and routing
    /// any displaced victim: same-bank victims are processed inline,
    /// cross-bank victims surface as [`BankAction::VictimDisplaced`].
    #[allow(clippy::too_many_arguments)]
    fn install(
        &mut self,
        slot: Slot,
        line: LineAddr,
        state: Mesi,
        version: u64,
        ext: ExtState,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let victim = l1s.get_mut(slot).fill(line, state, version);
        self.dup.set_l1(line, slot, state, ext);
        if let Some(v) = victim {
            if self.owns(v.line) {
                self.victim(slot, v.line, v.state, v.version, out);
            } else {
                out.push(BankAction::VictimDisplaced {
                    slot,
                    line: v.line,
                    state: v.state,
                    version: v.version,
                });
            }
        }
    }

    /// Process an L1 eviction: owner write-backs allocate in the L2
    /// (victim-cache fill), non-owner evictions are tag-only.
    fn victim(
        &mut self,
        slot: Slot,
        line: LineAddr,
        state: Mesi,
        version: u64,
        out: &mut Vec<BankAction>,
    ) {
        let Some(e) = self.dup.get(line) else {
            // The copy was already invalidated by a racing coherence
            // action; nothing to do.
            return;
        };
        if e.l1_state(slot) == Mesi::Invalid {
            // Already invalidated at the dup tags; stale notification.
            return;
        }
        let was_owner = e.owner == Owner::L1(slot);
        let dirty = state.dirty() || e.node_dirty;
        let ext = e.ext;
        self.dup.clear_l1(line, slot);
        if !was_owner {
            return;
        }
        // Owner eviction: write the data into the L2 (even if clean —
        // the L2 is the victim cache).
        assert!(!self.array.contains(line), "owner L1 implies no L2 copy");
        let pending = &self.pending;
        if let Some(victim_line) = self.array.allocate(line, |l| pending.contains_key(&l)) {
            self.evict_l2_line(victim_line, out);
        }
        self.dup.set_l2(line, dirty, version, ext);
        if let Some(en) = self.dup.get_mut(line) {
            en.node_dirty = false; // dirtiness now recorded on the L2 copy
        }
    }

    /// Evict a line from the L2 array (capacity): dirty data is written
    /// home; clean data is dropped silently.
    fn evict_l2_line(&mut self, line: LineAddr, out: &mut Vec<BankAction>) {
        let e = self
            .dup
            .get(line)
            .expect("L2-resident line has a dup entry");
        assert!(e.in_l2, "array and dup tags disagree");
        let (dirty, version, ext) = (e.l2_dirty, e.l2_version, e.ext);
        self.array.remove(line);
        let survives = self.dup.clear_l2(line, None);
        if dirty {
            if ext.home_local() {
                out.push(BankAction::WriteMem { line, version });
            } else {
                out.push(BankAction::RemoteWb { line, version });
            }
        } else if ext == ExtState::HeldExclusive {
            // Even a *clean* exclusive line leaving the chip must write
            // back: the home's directory points at this node, and the
            // no-NAK protocol guarantees forwarded requests can always be
            // serviced — so exclusivity is only relinquished through an
            // acknowledged write-back (paper §2.5.3).
            out.push(BankAction::RemoteWb { line, version });
        }
        // Memory (or home) is now fresh; surviving sharers are clean.
        if survives && dirty {
            if let Some(en) = self.dup.get_mut(line) {
                en.node_dirty = false;
            }
        }
    }

    fn mem_data(
        &mut self,
        line: LineAddr,
        version: u64,
        remote: RemoteSummary,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let p = self
            .pending
            .get(&line)
            .expect("MemData without pending transaction");
        match p.kind {
            PendKind::LocalMiss {
                slot,
                req,
                home_local,
                store_version,
            } => {
                debug_assert!(home_local, "memory reads only happen for local homes");
                match (req, remote) {
                    (_, RemoteSummary::Exclusive) => {
                        // Memory is stale; recall through the home engine
                        // and stay pending until the RemoteFill arrives.
                        out.push(BankAction::HomeRecall { slot, line, req });
                    }
                    (ReqType::Read, RemoteSummary::None) => {
                        self.fill_from_mem(
                            slot,
                            line,
                            Mesi::Exclusive,
                            version,
                            ExtState::HomeOnly,
                            l1s,
                            out,
                        );
                        self.complete(line, l1s, out);
                    }
                    (ReqType::Read, RemoteSummary::Shared) => {
                        self.fill_from_mem(
                            slot,
                            line,
                            Mesi::Shared,
                            version,
                            ExtState::HomeRemoteShared,
                            l1s,
                            out,
                        );
                        self.complete(line, l1s, out);
                    }
                    (_, RemoteSummary::None) => {
                        let sv = store_version.expect("store request carries a version");
                        self.fill_from_mem(
                            slot,
                            line,
                            Mesi::Modified,
                            sv,
                            ExtState::HomeOnly,
                            l1s,
                            out,
                        );
                        self.complete(line, l1s, out);
                    }
                    (_, RemoteSummary::Shared) => {
                        // Exclusive request with remote sharers: eager
                        // grant, background invalidation (memory data is
                        // valid, sharers are clean).
                        let sv = store_version.expect("store request carries a version");
                        out.push(BankAction::HomeInvalRemote { line });
                        self.fill_from_mem(
                            slot,
                            line,
                            Mesi::Modified,
                            sv,
                            ExtState::HomeOnly,
                            l1s,
                            out,
                        );
                        self.complete(line, l1s, out);
                    }
                }
            }
            PendKind::Export { excl: _ } => {
                out.push(BankAction::ExportReply {
                    line,
                    version,
                    dirty: false,
                    cached: false,
                });
                self.complete(line, l1s, out);
            }
        }
    }

    /// Fill an L1 directly from memory — *without* allocating in the L2
    /// (the paper's non-inclusive fill policy).
    #[allow(clippy::too_many_arguments)]
    fn fill_from_mem(
        &mut self,
        slot: Slot,
        line: LineAddr,
        state: Mesi,
        version: u64,
        ext: ExtState,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        self.install(slot, line, state, version, ext, l1s, out);
        let en = self.dup.get_mut(line).unwrap();
        en.owner = Owner::L1(slot);
        out.push(BankAction::Grant {
            slot,
            line,
            state,
            version,
            source: FillSource::LocalMem,
            upgraded: false,
        });
    }

    fn remote_fill(
        &mut self,
        line: LineAddr,
        grant: Mesi,
        version: Option<u64>,
        source: FillSource,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let p = self
            .pending
            .get(&line)
            .expect("RemoteFill without pending transaction");
        let PendKind::LocalMiss {
            slot,
            req: _,
            home_local,
            store_version,
        } = p.kind
        else {
            panic!("RemoteFill for an export transaction");
        };
        let ext = if grant.writable() {
            if home_local {
                ExtState::HomeOnly
            } else {
                ExtState::HeldExclusive
            }
        } else if home_local {
            ExtState::HomeRemoteShared
        } else {
            ExtState::HeldShared
        };
        let requester_holds = self
            .dup
            .get(line)
            .map(|e| e.l1_state(slot).readable())
            .unwrap_or(false);
        if requester_holds {
            // Upgrade completion: promote in place; invalidate any other
            // local holders (exclusivity is now node-wide ours).
            assert!(grant.writable(), "upgrade reply must grant exclusivity");
            let sv = store_version.expect("upgrade was a store");
            let holders: Vec<Slot> = self.dup.get(line).unwrap().holders().collect();
            for h in holders {
                if h == slot {
                    continue;
                }
                l1s.get_mut(h).invalidate(line);
                self.dup.clear_l1(line, h);
                out.push(BankAction::Inval { slot: h, line });
            }
            if self.dup.get(line).unwrap().in_l2 {
                self.array.remove(line);
                self.dup.clear_l2(line, None);
            }
            l1s.get_mut(slot).upgrade(line, sv);
            self.dup.set_l1(line, slot, Mesi::Modified, ext);
            let en = self.dup.get_mut(line).unwrap();
            en.owner = Owner::L1(slot);
            en.ext = ext;
            out.push(BankAction::Grant {
                slot,
                line,
                state: Mesi::Modified,
                version: sv,
                source,
                upgraded: true,
            });
        } else {
            // The requester's own L1 may have silently evicted its Shared
            // copy while a data-less upgrade acknowledgement was in
            // flight; the data is then still on-chip with the owner
            // (silent drops are non-owner drops), so serve it from there.
            let version = version
                .or_else(|| self.node_version(line, l1s))
                .expect("protocol must supply data when the node lost its copy (no-NAK guarantee)");
            // On-chip copies (if any) must be gone for an exclusive grant.
            if grant.writable() {
                self.purge_on_chip(line, l1s, out);
            }
            let (state, v) = if let Some(sv) = store_version {
                (Mesi::Modified, sv)
            } else {
                (grant, version)
            };
            self.install(slot, line, state, v, ext, l1s, out);
            let en = self.dup.get_mut(line).unwrap();
            en.owner = Owner::L1(slot);
            en.ext = ext;
            out.push(BankAction::Grant {
                slot,
                line,
                state,
                version: v,
                source,
                upgraded: false,
            });
        }
        self.complete(line, l1s, out);
    }

    /// The current on-chip data version of `line`, from its owner.
    fn node_version(&self, line: LineAddr, l1s: &L1Set) -> Option<u64> {
        let e = self.dup.get(line)?;
        match e.owner {
            Owner::L2 => Some(e.l2_version),
            Owner::L1(o) => l1s.get(o).version(line),
        }
    }

    /// Remove every on-chip copy of `line` (helper for exclusive fills
    /// and inter-node invalidations).
    fn purge_on_chip(&mut self, line: LineAddr, l1s: &mut L1Set, out: &mut Vec<BankAction>) {
        let Some(e) = self.dup.get(line) else { return };
        let holders: Vec<Slot> = e.holders().collect();
        let in_l2 = e.in_l2;
        for h in holders {
            l1s.get_mut(h).invalidate(line);
            out.push(BankAction::Inval { slot: h, line });
        }
        if in_l2 {
            self.array.remove(line);
        }
        self.dup.remove(line);
    }

    fn start_export(
        &mut self,
        line: LineAddr,
        excl: bool,
        l1s: &mut L1Set,
        out: &mut Vec<BankAction>,
    ) {
        let Some(e) = self.dup.get(line) else {
            // Nothing on-chip: data comes from memory.
            out.push(BankAction::ReadMem { line });
            self.pending.insert(
                line,
                Pending {
                    kind: PendKind::Export { excl },
                    waiters: VecDeque::new(),
                },
            );
            return;
        };
        let (version, dirty) = match e.owner {
            Owner::L2 => (e.l2_version, e.l2_dirty || e.node_dirty),
            Owner::L1(o) => {
                let v = l1s
                    .get(o)
                    .version(line)
                    .expect("dup tags said owner holds it");
                let st = l1s.get(o).state(line);
                (v, st.dirty() || e.node_dirty)
            }
        };
        if excl {
            self.purge_on_chip(line, l1s, out);
        } else {
            // Shared export: downgrade any exclusive holder; memory gets
            // freshened by the engine if we report dirty.
            if let Some(o) = e.exclusive_holder() {
                let ext = e.ext;
                l1s.get_mut(o).downgrade(line);
                self.dup.set_l1(line, o, Mesi::Shared, ext);
                out.push(BankAction::Downgrade { slot: o, line });
            }
            let en = self.dup.get_mut(line).unwrap();
            en.node_dirty = false;
            en.l2_dirty = false;
            en.ext = if en.ext.home_local() {
                ExtState::HomeRemoteShared
            } else {
                ExtState::HeldShared
            };
        }
        out.push(BankAction::ExportReply {
            line,
            version,
            dirty,
            cached: true,
        });
    }

    fn inval_all(&mut self, line: LineAddr, l1s: &mut L1Set, out: &mut Vec<BankAction>) {
        self.purge_on_chip(line, l1s, out);
    }

    /// Complete the pending transaction on `line` and replay queued
    /// waiters in arrival order.
    fn complete(&mut self, line: LineAddr, l1s: &mut L1Set, out: &mut Vec<BankAction>) {
        let Some(p) = self.pending.remove(&line) else {
            return;
        };
        let mut waiters = p.waiters;
        while let Some(w) = waiters.pop_front() {
            match w {
                MissWaiter::Miss {
                    slot,
                    req,
                    home_local,
                    store_version,
                } => {
                    self.start_miss(slot, req, line, home_local, store_version, l1s, out);
                }
                MissWaiter::Export { excl } => {
                    self.start_export(line, excl, l1s, out);
                }
            }
            if let Some(np) = self.pending.get_mut(&line) {
                // A new transaction started; the rest keep waiting.
                np.waiters = waiters;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_types::{CacheKind, CpuId};

    use crate::config::L1Config;

    const HOME: bool = true;
    const REMOTE: bool = false;

    fn setup() -> (L2Bank, L1Set) {
        (
            L2Bank::new(L2BankConfig::paper_default(), 0, 1),
            L1Set::new(8, L1Config::paper_default()),
        )
    }

    fn d(cpu: u8) -> Slot {
        Slot::new(CpuId(cpu), CacheKind::Data)
    }

    fn read(slot: Slot, line: u64, home: bool) -> BankEvent {
        BankEvent::Miss {
            slot,
            req: ReqType::Read,
            line: LineAddr(line),
            home_local: home,
            store_version: None,
        }
    }

    fn readex(slot: Slot, line: u64, home: bool, sv: u64) -> BankEvent {
        BankEvent::Miss {
            slot,
            req: ReqType::ReadEx,
            line: LineAddr(line),
            home_local: home,
            store_version: Some(sv),
        }
    }

    fn upgrade(slot: Slot, line: u64, home: bool, sv: u64) -> BankEvent {
        BankEvent::Miss {
            slot,
            req: ReqType::Upgrade,
            line: LineAddr(line),
            home_local: home,
            store_version: Some(sv),
        }
    }

    fn mem_data(line: u64, version: u64, remote: RemoteSummary) -> BankEvent {
        BankEvent::MemData {
            line: LineAddr(line),
            version,
            remote,
        }
    }

    /// Cold read fills from memory, no L2 allocation, clean-exclusive.
    #[test]
    fn cold_read_fills_exclusive_bypassing_l2() {
        let (mut bank, mut l1s) = setup();
        let a = bank.handle(read(d(0), 100, HOME), &mut l1s);
        assert_eq!(
            a,
            vec![BankAction::ReadMem {
                line: LineAddr(100)
            }]
        );
        assert!(bank.is_pending(LineAddr(100)));
        let a = bank.handle(mem_data(100, 5, RemoteSummary::None), &mut l1s);
        assert!(matches!(
            a[0],
            BankAction::Grant {
                state: Mesi::Exclusive,
                version: 5,
                source: FillSource::LocalMem,
                ..
            }
        ));
        assert!(
            !bank.in_array(LineAddr(100)),
            "non-inclusive: no L2 allocation on fill"
        );
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Exclusive);
        assert!(!bank.is_pending(LineAddr(100)));
    }

    /// A second reader is forwarded to the on-chip owner (L2 Fwd) and
    /// takes ownership.
    #[test]
    fn second_read_forwards_to_owner_l1() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, HOME), &mut l1s);
        bank.handle(mem_data(100, 5, RemoteSummary::None), &mut l1s);
        let a = bank.handle(read(d(1), 100, HOME), &mut l1s);
        assert!(a.contains(&BankAction::Downgrade {
            slot: d(0),
            line: LineAddr(100)
        }));
        assert!(matches!(
            a.last().unwrap(),
            BankAction::Grant { slot, state: Mesi::Shared, source: FillSource::L2Fwd, .. }
                if *slot == d(1)
        ));
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Shared);
        assert_eq!(l1s.get(d(1)).state(LineAddr(100)), Mesi::Shared);
        let e = bank.dup().get(LineAddr(100)).unwrap();
        assert_eq!(
            e.owner,
            Owner::L1(d(1)),
            "ownership moves to the last requester"
        );
    }

    /// Store to a shared line upgrades in place and invalidates the other
    /// sharer without any memory traffic.
    #[test]
    fn upgrade_invalidates_other_sharers() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, HOME), &mut l1s);
        bank.handle(mem_data(100, 5, RemoteSummary::None), &mut l1s);
        bank.handle(read(d(1), 100, HOME), &mut l1s);
        let a = bank.handle(upgrade(d(1), 100, HOME, 9), &mut l1s);
        assert!(a.contains(&BankAction::Inval {
            slot: d(0),
            line: LineAddr(100)
        }));
        assert!(matches!(
            a.last().unwrap(),
            BankAction::Grant {
                state: Mesi::Modified,
                version: 9,
                upgraded: true,
                ..
            }
        ));
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Invalid);
        assert_eq!(l1s.get(d(1)).state(LineAddr(100)), Mesi::Modified);
        assert_eq!(l1s.get(d(1)).version(LineAddr(100)), Some(9));
    }

    /// ReadEx against a dirty on-chip owner takes data from the owner.
    #[test]
    fn readex_steals_from_dirty_owner() {
        let (mut bank, mut l1s) = setup();
        bank.handle(readex(d(0), 100, HOME, 7), &mut l1s);
        // pending memory read even for ReadEx
        let a = bank.handle(mem_data(100, 0, RemoteSummary::None), &mut l1s);
        assert!(
            matches!(
                a[0],
                BankAction::Grant {
                    state: Mesi::Modified,
                    version: 7,
                    ..
                }
            ),
            "store version stamped on fill: {a:?}"
        );
        // d(0) now holds M with version 7. Another CPU stores.
        let a = bank.handle(readex(d(1), 100, HOME, 8), &mut l1s);
        assert!(a.contains(&BankAction::Inval {
            slot: d(0),
            line: LineAddr(100)
        }));
        let g = a
            .iter()
            .find_map(|x| match x {
                BankAction::Grant {
                    state,
                    version,
                    source,
                    ..
                } => Some((*state, *version, *source)),
                _ => None,
            })
            .unwrap();
        assert_eq!(g, (Mesi::Modified, 8, FillSource::L2Fwd));
        assert_eq!(l1s.get(d(1)).version(LineAddr(100)), Some(8));
    }

    /// Owner eviction writes into the L2 (victim cache); a later read
    /// hits in the L2.
    #[test]
    fn owner_victim_fills_l2_and_later_read_hits() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, HOME), &mut l1s);
        bank.handle(mem_data(100, 5, RemoteSummary::None), &mut l1s);
        // Owner evicts (clean E): still written to L2.
        let a = bank.handle(
            BankEvent::Victim {
                slot: d(0),
                line: LineAddr(100),
                state: Mesi::Exclusive,
                version: 5,
            },
            &mut l1s,
        );
        assert!(
            a.is_empty(),
            "clean write-back into L2 has no external action: {a:?}"
        );
        assert!(bank.in_array(LineAddr(100)));
        let e = bank.dup().get(LineAddr(100)).unwrap();
        assert_eq!(e.owner, Owner::L2);
        assert!(!e.l2_dirty);
        // A later read is an L2 hit (clean-exclusive again).
        let a = bank.handle(read(d(1), 100, HOME), &mut l1s);
        assert!(matches!(
            a.last().unwrap(),
            BankAction::Grant {
                state: Mesi::Exclusive,
                source: FillSource::L2Hit,
                version: 5,
                ..
            }
        ));
        assert!(
            !bank.in_array(LineAddr(100)),
            "L2 copy moves to the L1 (no duplicates)"
        );
    }

    /// Non-owner evictions are tag-only drops.
    #[test]
    fn non_owner_victim_is_silent() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, HOME), &mut l1s);
        bank.handle(mem_data(100, 5, RemoteSummary::None), &mut l1s);
        bank.handle(read(d(1), 100, HOME), &mut l1s); // d(1) now owner
                                                      // d(0) evicts its Shared copy: not the owner → silent.
        let a = bank.handle(
            BankEvent::Victim {
                slot: d(0),
                line: LineAddr(100),
                state: Mesi::Shared,
                version: 5,
            },
            &mut l1s,
        );
        assert!(a.is_empty());
        assert!(!bank.in_array(LineAddr(100)));
        // Owner d(1) evicts: write-back to L2.
        bank.handle(
            BankEvent::Victim {
                slot: d(1),
                line: LineAddr(100),
                state: Mesi::Shared,
                version: 5,
            },
            &mut l1s,
        );
        assert!(bank.in_array(LineAddr(100)));
    }

    /// A dirty line downgraded by a read forward keeps node-level
    /// dirtiness; the owner's eventual eviction writes dirty data to the
    /// L2, whose eviction writes memory.
    #[test]
    fn node_dirty_survives_downgrade_chain() {
        let (mut bank, mut l1s) = setup();
        bank.handle(readex(d(0), 100, HOME, 7), &mut l1s);
        bank.handle(mem_data(100, 0, RemoteSummary::None), &mut l1s); // M v7 at d0
        bank.handle(read(d(1), 100, HOME), &mut l1s); // downgrade d0, d1 owner (S)
        assert!(bank.dup().get(LineAddr(100)).unwrap().node_dirty);
        // Owner d1 evicts its *Shared* copy: must still write back.
        bank.handle(
            BankEvent::Victim {
                slot: d(1),
                line: LineAddr(100),
                state: Mesi::Shared,
                version: 7,
            },
            &mut l1s,
        );
        let e = bank.dup().get(LineAddr(100)).unwrap();
        assert!(e.in_l2 && e.l2_dirty, "L2 copy must be dirty");
        assert!(!e.node_dirty);
        // Evict from L2 via capacity: fill the set with owner write-backs.
        // Directly exercise the eviction helper instead.
        let mut out = Vec::new();
        bank.evict_l2_line(LineAddr(100), &mut out);
        assert_eq!(
            out,
            vec![BankAction::WriteMem {
                line: LineAddr(100),
                version: 7
            }]
        );
    }

    /// Concurrent misses to one line queue behind the pending entry and
    /// replay in order.
    #[test]
    fn pending_blocks_and_replays_waiters() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, HOME), &mut l1s);
        let a = bank.handle(read(d(1), 100, HOME), &mut l1s);
        assert!(a.is_empty(), "second miss must queue: {a:?}");
        let a = bank.handle(mem_data(100, 5, RemoteSummary::None), &mut l1s);
        // First grant to d0 (E from memory), then replay: d1 forwards
        // from d0.
        let grants: Vec<Slot> = a
            .iter()
            .filter_map(|x| match x {
                BankAction::Grant { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![d(0), d(1)]);
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Shared);
        assert_eq!(l1s.get(d(1)).state(LineAddr(100)), Mesi::Shared);
    }

    /// Remote-homed miss goes to the remote engine; the fill installs
    /// with HeldShared/HeldExclusive external state.
    #[test]
    fn remote_miss_roundtrip() {
        let (mut bank, mut l1s) = setup();
        let a = bank.handle(read(d(0), 100, REMOTE), &mut l1s);
        assert_eq!(
            a,
            vec![BankAction::RemoteReq {
                slot: d(0),
                line: LineAddr(100),
                req: ReqType::Read
            }]
        );
        let a = bank.handle(
            BankEvent::RemoteFill {
                line: LineAddr(100),
                grant: Mesi::Shared,
                version: Some(3),
                source: FillSource::RemoteMem,
            },
            &mut l1s,
        );
        assert!(matches!(
            a[0],
            BankAction::Grant {
                source: FillSource::RemoteMem,
                ..
            }
        ));
        assert_eq!(
            bank.dup().get(LineAddr(100)).unwrap().ext,
            ExtState::HeldShared
        );
        // A store on the held-shared copy must upgrade through home.
        let a = bank.handle(upgrade(d(0), 100, REMOTE, 9), &mut l1s);
        assert_eq!(
            a,
            vec![BankAction::RemoteReq {
                slot: d(0),
                line: LineAddr(100),
                req: ReqType::Upgrade
            }]
        );
        // Ack-only reply completes the upgrade in place.
        let a = bank.handle(
            BankEvent::RemoteFill {
                line: LineAddr(100),
                grant: Mesi::Exclusive,
                version: None,
                source: FillSource::RemoteMem,
            },
            &mut l1s,
        );
        assert!(matches!(
            a.last().unwrap(),
            BankAction::Grant {
                state: Mesi::Modified,
                version: 9,
                upgraded: true,
                ..
            }
        ));
        assert_eq!(
            bank.dup().get(LineAddr(100)).unwrap().ext,
            ExtState::HeldExclusive
        );
    }

    /// The upgrade race: an inter-node invalidation lands while our
    /// upgrade is pending; the reply must then carry data.
    #[test]
    fn upgrade_race_resolved_with_data_reply() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, REMOTE), &mut l1s);
        bank.handle(
            BankEvent::RemoteFill {
                line: LineAddr(100),
                grant: Mesi::Shared,
                version: Some(3),
                source: FillSource::RemoteMem,
            },
            &mut l1s,
        );
        bank.handle(upgrade(d(0), 100, REMOTE, 9), &mut l1s);
        // Invalidation wins the race at home and reaches us first.
        let a = bank.handle(
            BankEvent::InvalAll {
                line: LineAddr(100),
            },
            &mut l1s,
        );
        assert!(a.contains(&BankAction::Inval {
            slot: d(0),
            line: LineAddr(100)
        }));
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Invalid);
        assert!(bank.is_pending(LineAddr(100)), "upgrade still outstanding");
        // Home saw we were no longer a sharer and sent a full data reply.
        let a = bank.handle(
            BankEvent::RemoteFill {
                line: LineAddr(100),
                grant: Mesi::Exclusive,
                version: Some(11),
                source: FillSource::RemoteMem,
            },
            &mut l1s,
        );
        assert!(matches!(
            a.last().unwrap(),
            BankAction::Grant {
                state: Mesi::Modified,
                version: 9,
                upgraded: false,
                ..
            }
        ));
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Modified);
    }

    /// Recall path: memory said a remote node holds the line exclusively.
    #[test]
    fn dir_exclusive_triggers_recall() {
        let (mut bank, mut l1s) = setup();
        bank.handle(read(d(0), 100, HOME), &mut l1s);
        let a = bank.handle(mem_data(100, 0, RemoteSummary::Exclusive), &mut l1s);
        assert_eq!(
            a,
            vec![BankAction::HomeRecall {
                slot: d(0),
                line: LineAddr(100),
                req: ReqType::Read
            }]
        );
        assert!(bank.is_pending(LineAddr(100)));
        let a = bank.handle(
            BankEvent::RemoteFill {
                line: LineAddr(100),
                grant: Mesi::Shared,
                version: Some(20),
                source: FillSource::RemoteDirty,
            },
            &mut l1s,
        );
        assert!(matches!(
            a[0],
            BankAction::Grant {
                source: FillSource::RemoteDirty,
                version: 20,
                ..
            }
        ));
        assert_eq!(
            bank.dup().get(LineAddr(100)).unwrap().ext,
            ExtState::HomeRemoteShared,
            "owner retains a shared copy after a read recall"
        );
    }

    /// Eager exclusive grant when the directory shows only remote
    /// sharers.
    #[test]
    fn eager_exclusive_with_remote_sharers() {
        let (mut bank, mut l1s) = setup();
        bank.handle(readex(d(0), 100, HOME, 7), &mut l1s);
        let a = bank.handle(mem_data(100, 4, RemoteSummary::Shared), &mut l1s);
        assert!(a.contains(&BankAction::HomeInvalRemote {
            line: LineAddr(100)
        }));
        assert!(matches!(
            a.last().unwrap(),
            BankAction::Grant {
                state: Mesi::Modified,
                version: 7,
                ..
            }
        ));
        assert_eq!(
            bank.dup().get(LineAddr(100)).unwrap().ext,
            ExtState::HomeOnly
        );
    }

    /// Exclusive export destroys every on-chip copy and reports dirtiness.
    #[test]
    fn exclusive_export_purges_chip() {
        let (mut bank, mut l1s) = setup();
        bank.handle(readex(d(0), 100, HOME, 7), &mut l1s);
        bank.handle(mem_data(100, 0, RemoteSummary::None), &mut l1s);
        bank.handle(read(d(1), 100, HOME), &mut l1s); // two sharers, node dirty
        let a = bank.handle(
            BankEvent::Export {
                line: LineAddr(100),
                excl: true,
            },
            &mut l1s,
        );
        assert!(a.contains(&BankAction::Inval {
            slot: d(0),
            line: LineAddr(100)
        }));
        assert!(a.contains(&BankAction::Inval {
            slot: d(1),
            line: LineAddr(100)
        }));
        assert!(matches!(
            a.last().unwrap(),
            BankAction::ExportReply {
                version: 7,
                dirty: true,
                ..
            }
        ));
        assert!(bank.dup().get(LineAddr(100)).is_none());
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Invalid);
        assert_eq!(l1s.get(d(1)).state(LineAddr(100)), Mesi::Invalid);
    }

    /// Shared export downgrades the exclusive holder and marks the line
    /// remote-shared.
    #[test]
    fn shared_export_downgrades_owner() {
        let (mut bank, mut l1s) = setup();
        bank.handle(readex(d(0), 100, HOME, 7), &mut l1s);
        bank.handle(mem_data(100, 0, RemoteSummary::None), &mut l1s);
        let a = bank.handle(
            BankEvent::Export {
                line: LineAddr(100),
                excl: false,
            },
            &mut l1s,
        );
        assert!(a.contains(&BankAction::Downgrade {
            slot: d(0),
            line: LineAddr(100)
        }));
        assert!(matches!(
            a.last().unwrap(),
            BankAction::ExportReply {
                version: 7,
                dirty: true,
                ..
            }
        ));
        assert_eq!(l1s.get(d(0)).state(LineAddr(100)), Mesi::Shared);
        assert_eq!(
            bank.dup().get(LineAddr(100)).unwrap().ext,
            ExtState::HomeRemoteShared
        );
    }

    /// Export with nothing on-chip reads memory.
    #[test]
    fn export_from_memory() {
        let (mut bank, mut l1s) = setup();
        let a = bank.handle(
            BankEvent::Export {
                line: LineAddr(100),
                excl: false,
            },
            &mut l1s,
        );
        assert_eq!(
            a,
            vec![BankAction::ReadMem {
                line: LineAddr(100)
            }]
        );
        let a = bank.handle(mem_data(100, 6, RemoteSummary::None), &mut l1s);
        assert_eq!(
            a,
            vec![BankAction::ExportReply {
                line: LineAddr(100),
                version: 6,
                dirty: false,
                cached: false
            }]
        );
    }

    /// Dirty victims of remote-homed lines produce inter-node
    /// write-backs on L2 eviction.
    #[test]
    fn remote_dirty_l2_eviction_writes_back_to_home() {
        let (mut bank, mut l1s) = setup();
        bank.handle(readex(d(0), 100, REMOTE, 7), &mut l1s);
        bank.handle(
            BankEvent::RemoteFill {
                line: LineAddr(100),
                grant: Mesi::Exclusive,
                version: Some(1),
                source: FillSource::RemoteMem,
            },
            &mut l1s,
        );
        bank.handle(
            BankEvent::Victim {
                slot: d(0),
                line: LineAddr(100),
                state: Mesi::Modified,
                version: 7,
            },
            &mut l1s,
        );
        let mut out = Vec::new();
        bank.evict_l2_line(LineAddr(100), &mut out);
        assert_eq!(
            out,
            vec![BankAction::RemoteWb {
                line: LineAddr(100),
                version: 7
            }]
        );
        assert!(bank.dup().get(LineAddr(100)).is_none());
    }

    /// Misses must be routed by interleave.
    #[test]
    #[should_panic(expected = "wrong bank")]
    fn wrong_bank_panics() {
        let mut bank = L2Bank::new(L2BankConfig::paper_default(), 0, 8);
        let mut l1s = L1Set::new(8, L1Config::paper_default());
        bank.handle(read(d(0), 1, HOME), &mut l1s); // line 1 belongs to bank 1
    }

    /// The interleave function matches the paper: low line-address bits.
    #[test]
    fn interleave_by_low_bits() {
        let bank3 = L2Bank::new(L2BankConfig::paper_default(), 3, 8);
        assert!(bank3.owns(LineAddr(3)));
        assert!(bank3.owns(LineAddr(11)));
        assert!(!bank3.owns(LineAddr(4)));
    }
}
