//! The Piranha on-chip cache hierarchy.
//!
//! Implements the paper's two cache levels as *pure state machines*: they
//! track tags, MESI state, ownership, and duplicate-tag directories, and
//! report what should happen (`fill this L1`, `forward to that owner L1`,
//! `read memory`, `ask a protocol engine`) as data, leaving timing to the
//! chip simulator in the `piranha` crate. This keeps the trickiest logic
//! in the system — the non-inclusive shared L2 of paper §2.3 — directly
//! unit-testable.
//!
//! * [`L1Cache`] — 64 KB 2-way blocking first-level cache with MESI
//!   states (§2.1); the same design serves as iL1 and dL1, which is what
//!   lets Piranha keep the instruction cache hardware-coherent.
//! * [`L2Bank`] — one of eight interleaved banks of the 1 MB shared L2
//!   (§2.3): 8-way, round-robin (least-recently-loaded) replacement,
//!   **no inclusion** (the L2 is a victim cache filled only by L1
//!   replacements), duplicate L1 tag/state with an ownership bit deciding
//!   which L1 victim write-backs carry data, and the intra-chip coherence
//!   protocol.
//!
//! Instead of modelling byte payloads, every line carries a monotonically
//! increasing **version** stamped by each store; a protocol bug that would
//! deliver stale data in hardware delivers a stale version here, which the
//! integration and property tests detect.

#![warn(missing_docs)]

pub mod component;
pub mod config;
pub mod dup;
pub mod l1;
pub mod l2;
pub mod mesi;
pub mod tlb;

pub use component::{CacheComplex, CacheEvent};
pub use config::{L1Config, L2BankConfig};
pub use dup::{DupEntry, DupTags, ExtState, Owner, Slot};
pub use l1::{L1Cache, L1Set, StoreOutcome, Victim};
pub use l2::{BankAction, BankEvent, L2Bank, MissWaiter};
pub use mesi::Mesi;
pub use tlb::{Tlb, TlbConfig};
