//! Conservative parallel-in-space execution with deterministic quantum
//! barriers (the parti-gem5 / ScaleSimulator recipe adapted to Piranha).
//!
//! The model: a simulation is split into *lanes* (one simulated node —
//! chip plus its memory/protocol/router adapters — per lane). Every lane
//! advances independently through the events of one *quantum* — the
//! window `[t_min, t_min + quantum)` where `quantum` is the minimum
//! cross-lane delivery latency — and then all lanes meet at a barrier.
//! Cross-lane events generated inside the quantum are buffered in each
//! lane's [`Outbox`] and merged at the barrier in a deterministic order
//! keyed by `(time, source lane, intra-quantum seq)`. Because no buffered
//! event can be due before the barrier (the quantum is a conservative
//! lookahead bound), the parallel schedule is *race-free by
//! construction*: every lane sees exactly the event order a serial
//! execution of the same engine would produce, so fingerprints are
//! bit-identical for any worker count, including one.
//!
//! The crate is deliberately ignorant of what a lane *is*: the system
//! crate supplies the lane type and the advance/control closures;
//! everything here is scheduling glue — a spin barrier, the outbox
//! buffers, the deterministic merge, and the round driver
//! [`parallel_rounds`].

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use piranha_types::SimTime;

/// A hybrid spin/block barrier for tightly coupled quantum loops.
///
/// Quantum barriers fire every few tens of simulated nanoseconds — many
/// thousands of times per wall-clock second — so rendezvous latency is
/// on the critical path. When the host has a core per party, waiters
/// spin briefly on the generation word (the common case: lanes finish a
/// quantum within microseconds of each other) before blocking. On an
/// *oversubscribed* host spinning is skipped entirely and waiters go
/// straight to a [`Condvar`]: a spinning or `yield_now`-ing waiter on a
/// shared core steals exactly the timeslices the straggler needs (CFS
/// `sched_yield` readily reschedules the yielder), turning every
/// rendezvous into milliseconds — a real sleep keeps the penalty at a
/// futex round-trip instead.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    /// Spin iterations before blocking; 0 when oversubscribed.
    spin: u32,
    /// Arrival count of the current generation, guarded for the condvar.
    count: Mutex<usize>,
    cv: Condvar,
    generation: AtomicU64,
}

impl SpinBarrier {
    /// A barrier releasing once `parties` threads have called
    /// [`wait`](SpinBarrier::wait).
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SpinBarrier {
            parties,
            spin: if parties <= cores { 1 << 12 } else { 0 },
            count: Mutex::new(0),
            cv: Condvar::new(),
            generation: AtomicU64::new(0),
        }
    }

    /// Block until all parties have arrived.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        {
            let mut count = self.count.lock().unwrap();
            *count += 1;
            if *count == self.parties {
                // Last arriver resets the count for the next round, then
                // releases everyone: the generation advances under the
                // lock (so a blocked waiter cannot miss it) and spinners
                // see the atomic store without touching the lock.
                *count = 0;
                self.generation.fetch_add(1, Ordering::Release);
                drop(count);
                self.cv.notify_all();
                return;
            }
        }
        for _ in 0..self.spin {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut count = self.count.lock().unwrap();
        while self.generation.load(Ordering::Acquire) == gen {
            count = self.cv.wait(count).unwrap();
        }
    }
}

/// A cross-lane event buffered inside a quantum: send time plus the
/// intra-quantum sequence number that makes the barrier merge total.
#[derive(Debug, Clone)]
pub struct Outbound<T> {
    /// When the source lane emitted the event.
    pub time: SimTime,
    /// Position in the source lane's send order (monotone per lane).
    pub seq: u64,
    /// The buffered payload.
    pub payload: T,
}

/// Per-lane buffer of cross-lane events awaiting the next barrier.
///
/// Events are pushed in the source lane's execution order, which is
/// nondecreasing in time, so each outbox is already sorted by
/// `(time, seq)`; the barrier merge only interleaves sources.
#[derive(Debug)]
pub struct Outbox<T> {
    entries: Vec<Outbound<T>>,
    next_seq: u64,
}

impl<T> Default for Outbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Outbox<T> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Buffer `payload`, emitted at `time`, stamping the next sequence
    /// number. The sequence space is per-lane and never resets, so an
    /// entry's `(time, source, seq)` key is unique for a whole run.
    pub fn push(&mut self, time: SimTime, payload: T) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.time <= time),
            "outbox pushes must be nondecreasing in time"
        );
        self.entries.push(Outbound {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Take every buffered event, leaving the outbox empty (sequence
    /// numbering continues where it left off).
    pub fn drain(&mut self) -> Vec<Outbound<T>> {
        std::mem::take(&mut self.entries)
    }
}

/// A buffered event tagged with its source lane, ready for delivery.
#[derive(Debug, Clone)]
pub struct Merged<T> {
    /// When the source lane emitted the event.
    pub time: SimTime,
    /// The lane that emitted it.
    pub source: usize,
    /// The source lane's intra-quantum sequence number.
    pub seq: u64,
    /// The payload to deliver.
    pub payload: T,
}

/// Merge per-source outbox drains into the canonical barrier order:
/// ascending `(time, source, seq)`. This single total order is what makes
/// a parallel quantum bit-identical to a serial one — the interleaving of
/// cross-lane traffic is a pure function of the simulation, never of
/// thread scheduling.
pub fn merge_outboxes<T>(
    per_source: impl IntoIterator<Item = (usize, Vec<Outbound<T>>)>,
) -> Vec<Merged<T>> {
    let mut merged: Vec<Merged<T>> = per_source
        .into_iter()
        .flat_map(|(source, entries)| {
            entries.into_iter().map(move |e| Merged {
                time: e.time,
                source,
                seq: e.seq,
                payload: e.payload,
            })
        })
        .collect();
    // (source, seq) is unique, so the key is total and an unstable sort
    // is deterministic.
    merged.sort_unstable_by_key(|m| (m.time, m.source, m.seq));
    merged
}

/// How many sweep-level threads a harness should use when each run may
/// itself spawn `per_run` lane workers: the two levels multiply, so they
/// share one budget rather than both claiming all of it.
pub fn sweep_share(total_threads: usize, per_run: usize) -> usize {
    (total_threads / per_run.max(1)).max(1)
}

/// Drive lanes through quantum rounds until `control` stops the run.
///
/// Each round: `control` runs on the coordinating thread with exclusive
/// access to every lane (merge the previous round's outboxes, check stop
/// conditions, pick the next horizon); if it returns a horizon, every
/// lane is advanced to it — in parallel across `workers` threads when
/// `workers > 1`, inline otherwise — and the cycle repeats. Returning
/// `None` ends the run *after* the previous round's traffic has been
/// merged, so no buffered event is ever lost.
///
/// Lanes are distributed to workers round-robin by index; each lane is
/// touched by exactly one worker per round, and the barrier pair
/// (`start`/`done`) orders every worker's lane mutations before the next
/// `control` call. The worker count therefore cannot change *what* a
/// lane computes, only *when* — determinism is structural.
///
/// # Panics
///
/// Propagates panics from `advance` (a lane assertion failing on a
/// worker thread resurfaces on the coordinator).
pub fn parallel_rounds<L: Send>(
    workers: usize,
    cells: &mut [Mutex<L>],
    advance: impl Fn(&mut L, SimTime) + Sync,
    mut control: impl FnMut(&[Mutex<L>]) -> Option<SimTime>,
) {
    let workers = workers.min(cells.len()).max(1);
    if workers == 1 {
        while let Some(horizon) = control(cells) {
            for cell in cells.iter_mut() {
                advance(cell.get_mut().unwrap(), horizon);
            }
        }
        return;
    }
    let start = SpinBarrier::new(workers + 1);
    let done = SpinBarrier::new(workers + 1);
    let horizon_ps = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let panicked = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..workers {
            let (start, done) = (&start, &done);
            let (horizon_ps, stop, panicked) = (&horizon_ps, &stop, &panicked);
            let (advance, cells) = (&advance, &*cells);
            s.spawn(move || loop {
                start.wait();
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let horizon = SimTime(horizon_ps.load(Ordering::Acquire));
                // Keep hitting the `done` barrier even if a lane
                // panics, or the coordinator would wait forever.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    for cell in cells.iter().skip(w).step_by(workers) {
                        advance(&mut cell.lock().unwrap(), horizon);
                    }
                }));
                if outcome.is_err() {
                    panicked.store(true, Ordering::Release);
                }
                done.wait();
            });
        }
        loop {
            let next = if panicked.load(Ordering::Acquire) {
                None
            } else {
                control(cells)
            };
            match next {
                Some(horizon) => {
                    horizon_ps.store(horizon.as_ps(), Ordering::Release);
                    start.wait();
                    done.wait();
                }
                None => {
                    stop.store(true, Ordering::Release);
                    start.wait();
                    break;
                }
            }
        }
    });
    assert!(
        !panicked.load(Ordering::Acquire),
        "a lane worker panicked during a quantum"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy lane: consumes "events" (just times) up to the horizon and
    /// records the order.
    struct Toy {
        pending: Vec<u64>,
        log: Vec<u64>,
    }

    #[test]
    fn spin_barrier_synchronizes() {
        let b = SpinBarrier::new(4);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                });
            }
            b.wait();
            assert_eq!(hits.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn outbox_merge_is_keyed_by_time_source_seq() {
        let mut a = Outbox::new();
        let mut b = Outbox::new();
        a.push(SimTime(30), "a0");
        a.push(SimTime(30), "a1");
        b.push(SimTime(10), "b0");
        b.push(SimTime(30), "b1");
        let merged = merge_outboxes([(1usize, a.drain()), (0usize, b.drain())]);
        let order: Vec<&str> = merged.iter().map(|m| m.payload).collect();
        // time first, then source, then per-source seq.
        assert_eq!(order, ["b0", "b1", "a0", "a1"]);
        // Seq numbering continues across drains.
        a.push(SimTime(40), "a2");
        assert_eq!(a.drain()[0].seq, 2);
    }

    #[test]
    fn sweep_share_divides_the_budget() {
        assert_eq!(sweep_share(8, 2), 4);
        assert_eq!(sweep_share(8, 1), 8);
        assert_eq!(sweep_share(2, 8), 1);
        assert_eq!(sweep_share(8, 0), 8);
    }

    fn drive(workers: usize) -> Vec<Vec<u64>> {
        let mut cells: Vec<Mutex<Toy>> = (0..5)
            .map(|i| {
                Mutex::new(Toy {
                    pending: (0..20).map(|k| (k * 7 + i as u64) % 50).collect(),
                    log: Vec::new(),
                })
            })
            .collect();
        let mut horizon = 0u64;
        parallel_rounds(
            workers,
            &mut cells,
            |lane, h| {
                let mut due: Vec<u64> = lane
                    .pending
                    .iter()
                    .copied()
                    .filter(|&t| t < h.as_ps())
                    .collect();
                due.sort_unstable();
                lane.pending.retain(|&t| t >= h.as_ps());
                lane.log.extend(due);
            },
            |cells| {
                let busy = cells.iter().any(|c| !c.lock().unwrap().pending.is_empty());
                if !busy {
                    return None;
                }
                horizon += 13;
                Some(SimTime(horizon))
            },
        );
        cells
            .into_iter()
            .map(|c| c.into_inner().unwrap().log)
            .collect()
    }

    #[test]
    fn worker_count_does_not_change_lane_outcomes() {
        let serial = drive(1);
        for workers in [2, 3, 8] {
            assert_eq!(drive(workers), serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            let mut cells = vec![Mutex::new(0u32), Mutex::new(1u32)];
            let mut rounds = 0;
            parallel_rounds(
                2,
                &mut cells,
                |lane, _| {
                    if *lane == 1 {
                        panic!("boom");
                    }
                },
                |_| {
                    rounds += 1;
                    (rounds <= 2).then_some(SimTime(1))
                },
            );
        });
        assert!(caught.is_err(), "the lane panic must resurface");
    }
}
