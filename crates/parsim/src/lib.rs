//! Conservative parallel-in-space execution with deterministic window
//! barriers (the parti-gem5 / ScaleSimulator recipe adapted to Piranha).
//!
//! The model: a simulation is split into *lanes* (one simulated node —
//! chip plus its memory/protocol/router adapters — per lane). Every lane
//! advances independently through the events of one *window* — the span
//! `[t_min, t_min + quantum)` where `quantum` is the minimum cross-lane
//! delivery latency — and then the lanes synchronize. Cross-lane events
//! generated inside the window are buffered in each lane's [`Outbox`]
//! and merged at the barrier in a deterministic order keyed by `(time,
//! source lane, intra-window seq)`. Because no buffered event can be due
//! before the barrier (the quantum is a conservative lookahead bound),
//! the parallel schedule is *race-free by construction*: every lane sees
//! exactly the event order a serial execution of the same engine would
//! produce, so fingerprints are bit-identical for any worker count,
//! including one.
//!
//! # The train protocol
//!
//! Windows are tens of simulated nanoseconds, so a multi-chip run
//! executes hundreds of thousands of them; making each one cheap is
//! what decides whether `--parallel` beats serial. [`run_windows`]
//! therefore separates the two costs a window can incur:
//!
//! * **Per window** (every ~5 µs of wall-clock): a lock-free gate
//!   handoff — the sequencer publishes the next horizon on an atomic,
//!   workers pick it up, advance their lanes, and bump a completion
//!   counter. No mutex, no condvar in the common case, and the
//!   sequencer thread doubles as worker 0 so the control closure never
//!   migrates off the calling thread.
//! * **Per round** (every [`TRAIN_WINDOWS`] windows): a full
//!   [`SpinBarrier`] rendezvous where stall time is flushed to the
//!   optional probe callback. Rounds are the engine's unit of *real*
//!   synchronization, reported as `EngineStats::rounds`.
//!
//! The control closure receives the lanes as a plain `&mut [L]` — at a
//! barrier every worker is provably parked, so the coordinator drains
//! outboxes and injects arrivals with ordinary exclusive access, no
//! per-lane locking.
//!
//! The crate is deliberately ignorant of what a lane *is*: the system
//! crate supplies the lane type and the advance/control closures;
//! everything here is scheduling glue — the gates, the outbox buffers,
//! the deterministic merge, and the window driver.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use piranha_types::SimTime;

/// Windows executed between two full barrier rendezvous ("one train").
/// Within a train, consecutive windows hand off through lock-free
/// gates; the blocking rendezvous — and the probe flush — happens only
/// at train boundaries, dividing the engine's synchronization rounds by
/// this factor.
pub const TRAIN_WINDOWS: u64 = 8;

/// Execution counters of one [`run_windows`] drive, identical for every
/// worker count (they describe the simulation's window structure, not
/// the thread schedule).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Barrier rendezvous executed: `windows.div_ceil(TRAIN_WINDOWS)`.
    /// This is the engine's real synchronization count — the number the
    /// fixed-quantum engine paid *per window*.
    pub rounds: u64,
    /// Logical windows executed (one horizon publication each).
    pub windows: u64,
    /// Control passes that found no cross-lane traffic to merge
    /// (maintained by the control closure).
    pub empty_windows: u64,
    /// Cross-lane events merged at barriers (maintained by the control
    /// closure).
    pub merged_events: u64,
}

/// A hybrid spin/block barrier for tightly coupled window loops.
///
/// Train rendezvous fire every few hundred simulated nanoseconds — many
/// thousands of times per wall-clock second — so rendezvous latency is
/// on the critical path. When the host has a core per party, waiters
/// spin briefly on the generation word (the common case: lanes finish a
/// train within microseconds of each other) before blocking. On an
/// *oversubscribed* host spinning is skipped entirely and waiters go
/// straight to a [`Condvar`]: a spinning or `yield_now`-ing waiter on a
/// shared core steals exactly the timeslices the straggler needs (CFS
/// `sched_yield` readily reschedules the yielder), turning every
/// rendezvous into milliseconds — a real sleep keeps the penalty at a
/// futex round-trip instead.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    /// Spin iterations before blocking; 0 when oversubscribed.
    spin: u32,
    /// Arrival count of the current generation, guarded for the condvar.
    count: Mutex<usize>,
    cv: Condvar,
    generation: AtomicU64,
}

impl SpinBarrier {
    /// A barrier releasing once `parties` threads have called
    /// [`wait`](SpinBarrier::wait).
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SpinBarrier {
            parties,
            spin: if parties <= cores { 1 << 12 } else { 0 },
            count: Mutex::new(0),
            cv: Condvar::new(),
            generation: AtomicU64::new(0),
        }
    }

    /// Block until all parties have arrived.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        {
            let mut count = self.count.lock().unwrap();
            *count += 1;
            if *count == self.parties {
                // Last arriver resets the count for the next round, then
                // releases everyone: the generation advances under the
                // lock (so a blocked waiter cannot miss it) and spinners
                // see the atomic store without touching the lock.
                *count = 0;
                self.generation.fetch_add(1, Ordering::Release);
                drop(count);
                self.cv.notify_all();
                return;
            }
        }
        for _ in 0..self.spin {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut count = self.count.lock().unwrap();
        while self.generation.load(Ordering::Acquire) == gen {
            count = self.cv.wait(count).unwrap();
        }
    }
}

/// A monotone epoch gate: one side publishes increasing values, the
/// other waits for the value to reach a threshold. This is the
/// per-window synchronization primitive of the train protocol — the
/// fast path is a single `SeqCst` load, the slow path a bounded spin,
/// and only a waiter that outlasts the spin (or any waiter on an
/// oversubscribed host) touches the mutex/condvar pair. The publisher
/// takes the lock only when a sleeper has registered, so an in-phase
/// train advances with zero lock traffic.
///
/// Lost-wakeup freedom is a `SeqCst` exchange argument: the publisher
/// stores the value *then* loads the sleeper count; a waiter increments
/// the sleeper count *then* re-checks the value (under the lock). If
/// the waiter missed the value, its load preceded the store in the
/// total order, so its increment preceded the publisher's sleeper load
/// — the publisher sees it and notifies.
#[derive(Debug)]
struct Gate {
    value: AtomicU64,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// Spin iterations before sleeping; 0 when oversubscribed.
    spin: u32,
}

impl Gate {
    fn new(spin: u32) -> Self {
        Gate {
            value: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            spin,
        }
    }

    fn wake_sleepers(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this wakeup against a waiter that
            // registered but has not reached `cv.wait` yet: it holds the
            // lock while re-checking the value, so it either sees the
            // new value or is parked when the notify lands.
            let _guard = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Publish a new (strictly larger) value.
    fn publish(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst);
        self.wake_sleepers();
    }

    /// Add `n` to the value (concurrent counting from many threads).
    fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
        self.wake_sleepers();
    }

    fn wait_min_slow(&self, v: u64) {
        for _ in 0..self.spin {
            if self.value.load(Ordering::SeqCst) >= v {
                return;
            }
            std::hint::spin_loop();
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().unwrap();
        while self.value.load(Ordering::SeqCst) < v {
            guard = self.cv.wait(guard).unwrap();
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wait until the value reaches `v`, accumulating any wall-clock
    /// spent waiting (beyond the instant fast path) into `stall_ns`.
    fn wait_min(&self, v: u64, stall_ns: &AtomicU64) {
        if self.value.load(Ordering::SeqCst) >= v {
            return;
        }
        let t0 = Instant::now();
        self.wait_min_slow(v);
        stall_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A raw lane-slice handle shared across the round protocol's threads.
///
/// Soundness rests on the protocol, not the type: the issue/done gates
/// and the train barrier hand each lane to exactly one thread per
/// window, with a happens-before edge (the gates' `SeqCst` traffic)
/// between consecutive owners, so every temporary `&mut` derived below
/// is exclusive for its lifetime. All access goes through this one raw
/// pointer — the caller's original `&mut [L]` is not touched again
/// until the drive returns.
struct LaneSlice<L> {
    base: *mut L,
    len: usize,
}

unsafe impl<L: Send> Send for LaneSlice<L> {}
unsafe impl<L: Send> Sync for LaneSlice<L> {}

impl<L> LaneSlice<L> {
    /// Exclusive access to lane `i`.
    ///
    /// # Safety
    ///
    /// The round protocol must guarantee no other thread accesses lane
    /// `i` for the returned borrow's lifetime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn lane(&self, i: usize) -> &mut L {
        debug_assert!(i < self.len);
        &mut *self.base.add(i)
    }

    /// Exclusive access to every lane at once (coordinator only, with
    /// all workers parked).
    ///
    /// # Safety
    ///
    /// The round protocol must guarantee no other thread accesses any
    /// lane for the returned borrow's lifetime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn all(&self) -> &mut [L] {
        std::slice::from_raw_parts_mut(self.base, self.len)
    }
}

/// A cross-lane event buffered inside a window: send time plus the
/// intra-window sequence number that makes the barrier merge total.
#[derive(Debug, Clone)]
pub struct Outbound<T> {
    /// When the source lane emitted the event.
    pub time: SimTime,
    /// Position in the source lane's send order (monotone per lane).
    pub seq: u64,
    /// The buffered payload.
    pub payload: T,
}

/// Per-lane buffer of cross-lane events awaiting the next barrier.
///
/// Events are pushed in the source lane's execution order, which is
/// nondecreasing in time, so each outbox is already sorted by
/// `(time, seq)`; the barrier merge only interleaves sources.
#[derive(Debug)]
pub struct Outbox<T> {
    entries: Vec<Outbound<T>>,
    next_seq: u64,
}

impl<T> Default for Outbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Outbox<T> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Buffer `payload`, emitted at `time`, stamping the next sequence
    /// number. The sequence space is per-lane and never resets, so an
    /// entry's `(time, source, seq)` key is unique for a whole run.
    pub fn push(&mut self, time: SimTime, payload: T) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.time <= time),
            "outbox pushes must be nondecreasing in time"
        );
        self.entries.push(Outbound {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Take every buffered event, leaving the outbox empty (sequence
    /// numbering continues where it left off).
    pub fn drain(&mut self) -> Vec<Outbound<T>> {
        std::mem::take(&mut self.entries)
    }

    /// Drain every buffered event into `out` as [`Merged`] entries
    /// tagged with `source`, leaving the outbox empty but keeping its
    /// allocation. The allocation-free sibling of
    /// [`drain`](Outbox::drain) + [`merge_outboxes`] for the hot barrier
    /// path: the caller reuses one merge buffer across windows and sorts
    /// it once with [`sort_merged`].
    pub fn drain_into(&mut self, source: usize, out: &mut Vec<Merged<T>>) {
        out.extend(self.entries.drain(..).map(|e| Merged {
            time: e.time,
            source,
            seq: e.seq,
            payload: e.payload,
        }));
    }
}

/// A buffered event tagged with its source lane, ready for delivery.
#[derive(Debug, Clone)]
pub struct Merged<T> {
    /// When the source lane emitted the event.
    pub time: SimTime,
    /// The lane that emitted it.
    pub source: usize,
    /// The source lane's intra-window sequence number.
    pub seq: u64,
    /// The payload to deliver.
    pub payload: T,
}

/// Sort a merge buffer into the canonical barrier order: ascending
/// `(time, source, seq)`. This single total order is what makes a
/// parallel window bit-identical to a serial one — the interleaving of
/// cross-lane traffic is a pure function of the simulation, never of
/// thread scheduling. `(source, seq)` is unique, so the key is total
/// and the unstable sort is deterministic.
pub fn sort_merged<T>(buf: &mut [Merged<T>]) {
    buf.sort_unstable_by_key(|m| (m.time, m.source, m.seq));
}

/// Merge per-source outbox drains into the canonical barrier order
/// (allocating convenience over [`Outbox::drain_into`] +
/// [`sort_merged`]).
pub fn merge_outboxes<T>(
    per_source: impl IntoIterator<Item = (usize, Vec<Outbound<T>>)>,
) -> Vec<Merged<T>> {
    let mut merged: Vec<Merged<T>> = per_source
        .into_iter()
        .flat_map(|(source, entries)| {
            entries.into_iter().map(move |e| Merged {
                time: e.time,
                source,
                seq: e.seq,
                payload: e.payload,
            })
        })
        .collect();
    sort_merged(&mut merged);
    merged
}

/// How many sweep-level threads a harness should use when each run may
/// itself spawn `per_run` lane workers: the two levels multiply, so they
/// share one budget rather than both claiming all of it.
pub fn sweep_share(total_threads: usize, per_run: usize) -> usize {
    (total_threads / per_run.max(1)).max(1)
}

/// Stash the first panic payload; later panics are dropped (the first
/// is the one that matters, and it is the one re-raised).
fn stash_panic(slot: &Mutex<Option<Box<dyn Any + Send>>>, payload: Box<dyn Any + Send>) {
    let mut guard = slot.lock().unwrap();
    guard.get_or_insert(payload);
}

/// Drive lanes through barrier windows until `control` stops the run,
/// returning the execution counters.
///
/// Each window: `control` runs on the calling thread with exclusive
/// `&mut` access to every lane (merge the previous window's outboxes,
/// check stop conditions, pick the next horizon); if it returns a
/// horizon, every lane is advanced to it — across `workers` threads
/// when `workers > 1` (the caller doubles as worker 0), inline
/// otherwise — and the cycle repeats. Returning `None` ends the run
/// *after* the previous window's traffic has been merged, so no
/// buffered event is ever lost.
///
/// Lanes are distributed to workers round-robin by index; each lane is
/// touched by exactly one worker per window, and the gate pair orders
/// every worker's lane mutations before the next `control` call. The
/// worker count therefore cannot change *what* a lane computes, only
/// *when* — determinism is structural, and the returned [`EngineStats`]
/// are identical for every worker count.
///
/// `stall_probe`, when present, is called at every train rendezvous (and
/// once at shutdown) with `(worker index, gate-wait nanoseconds since
/// the last flush)` for each worker — the raw material for per-lane
/// barrier-stall histograms. Worker `w` owns lanes `w, w + workers, …`.
///
/// # Panics
///
/// Re-raises the first panic from `advance` (on any worker) or from
/// `control`; either way every worker thread is released and joined
/// first, so a panicking simulation cannot leak parked threads.
pub fn run_windows<L: Send>(
    workers: usize,
    lanes: &mut [L],
    advance: impl Fn(&mut L, SimTime) + Sync,
    mut control: impl FnMut(&mut [L], &mut EngineStats) -> Option<SimTime>,
    mut stall_probe: Option<&mut dyn FnMut(usize, u64)>,
) -> EngineStats {
    let workers = workers.clamp(1, lanes.len().max(1));
    let mut stats = EngineStats::default();
    if workers == 1 {
        while let Some(horizon) = control(lanes, &mut stats) {
            for lane in lanes.iter_mut() {
                advance(lane, horizon);
            }
            stats.windows += 1;
            if stats.windows.is_multiple_of(TRAIN_WINDOWS) {
                stats.rounds += 1;
            }
        }
        if !stats.windows.is_multiple_of(TRAIN_WINDOWS) {
            stats.rounds += 1;
        }
        return stats;
    }

    let slice = LaneSlice {
        base: lanes.as_mut_ptr(),
        len: lanes.len(),
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let spin = if workers <= cores { 1 << 12 } else { 0 };
    // `issue` counts windows published (window k is live once the value
    // passes k); `done` counts per-worker window completions (after
    // window k, it reads `workers * (k + 1)`).
    let issue = Gate::new(spin);
    let done = Gate::new(spin);
    let horizon_ps = AtomicU64::new(0);
    let stop = AtomicU64::new(0);
    let train = SpinBarrier::new(workers);
    let stalls: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|s| {
        for w in 1..workers {
            let (issue, done, train) = (&issue, &done, &train);
            let (horizon_ps, stop, stalls) = (&horizon_ps, &stop, &stalls);
            let (advance, slice, panic_slot) = (&advance, &slice, &panic_slot);
            s.spawn(move || {
                let mut next: u64 = 0;
                loop {
                    issue.wait_min(next + 1, &stalls[w]);
                    if stop.load(Ordering::SeqCst) != 0 {
                        return;
                    }
                    let horizon = SimTime(horizon_ps.load(Ordering::SeqCst));
                    // Keep participating in the gate/barrier protocol
                    // even if a lane panics, or the sequencer and the
                    // other workers would wait forever; the payload is
                    // re-raised on the caller once everyone is joined.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        for i in (w..slice.len).step_by(workers) {
                            // SAFETY: lane i belongs to worker w for
                            // this window (round-robin ownership); the
                            // issue/done gates order this against every
                            // other thread's access.
                            advance(unsafe { slice.lane(i) }, horizon);
                        }
                    }));
                    if let Err(payload) = outcome {
                        stash_panic(panic_slot, payload);
                    }
                    done.add(1);
                    next += 1;
                    if next.is_multiple_of(TRAIN_WINDOWS) {
                        train.wait();
                    }
                }
            });
        }

        // The sequencer, doubling as worker 0.
        let mut window: u64 = 0;
        let flush_stalls = |probe: &mut Option<&mut dyn FnMut(usize, u64)>| {
            if let Some(cb) = probe.as_deref_mut() {
                for (w, stall) in stalls.iter().enumerate() {
                    cb(w, stall.swap(0, Ordering::Relaxed));
                }
            }
        };
        loop {
            let next = if panic_slot.lock().unwrap().is_some() {
                None
            } else {
                match catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: every worker is parked (all issued windows
                    // are done-counted and the last train barrier, if
                    // due, has been crossed), so the coordinator holds
                    // the only access until the next `issue.publish`.
                    control(unsafe { slice.all() }, &mut stats)
                })) {
                    Ok(next) => next,
                    Err(payload) => {
                        stash_panic(&panic_slot, payload);
                        None
                    }
                }
            };
            let Some(horizon) = next else {
                break;
            };
            horizon_ps.store(horizon.as_ps(), Ordering::SeqCst);
            issue.publish(window + 1);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for i in (0..slice.len).step_by(workers) {
                    // SAFETY: lane i belongs to worker 0 for this window.
                    advance(unsafe { slice.lane(i) }, horizon);
                }
            }));
            if let Err(payload) = outcome {
                stash_panic(&panic_slot, payload);
            }
            done.add(1);
            window += 1;
            stats.windows += 1;
            done.wait_min(workers as u64 * window, &stalls[0]);
            if window.is_multiple_of(TRAIN_WINDOWS) {
                train.wait();
                stats.rounds += 1;
                flush_stalls(&mut stall_probe);
            }
        }
        // Shutdown: release every worker parked on the next issue. The
        // stop flag is stored before the publish, so a worker that wakes
        // on this value observes it (SeqCst total order).
        stop.store(1, Ordering::SeqCst);
        issue.publish(window + 1);
        if !window.is_multiple_of(TRAIN_WINDOWS) {
            stats.rounds += 1;
        }
        flush_stalls(&mut stall_probe);
    });

    if let Some(payload) = panic_slot.into_inner().unwrap() {
        resume_unwind(payload);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy lane: consumes "events" (just times) up to the horizon and
    /// records the order.
    struct Toy {
        pending: Vec<u64>,
        log: Vec<u64>,
    }

    #[test]
    fn spin_barrier_synchronizes() {
        let b = SpinBarrier::new(4);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                });
            }
            b.wait();
            assert_eq!(hits.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn gate_wakes_blocked_waiters() {
        // spin = 0 forces the condvar slow path, covering the
        // lost-wakeup-freedom argument rather than the spin loop.
        let g = Gate::new(0);
        let stall = AtomicU64::new(0);
        std::thread::scope(|s| {
            let t = s.spawn(|| {
                g.wait_min(3, &stall);
                g.value.load(Ordering::SeqCst)
            });
            for v in 1..=3 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                g.publish(v);
            }
            assert!(t.join().unwrap() >= 3);
        });
        assert!(stall.load(Ordering::Relaxed) > 0, "slow path was timed");
    }

    #[test]
    fn outbox_merge_is_keyed_by_time_source_seq() {
        let mut a = Outbox::new();
        let mut b = Outbox::new();
        a.push(SimTime(30), "a0");
        a.push(SimTime(30), "a1");
        b.push(SimTime(10), "b0");
        b.push(SimTime(30), "b1");
        let merged = merge_outboxes([(1usize, a.drain()), (0usize, b.drain())]);
        let order: Vec<&str> = merged.iter().map(|m| m.payload).collect();
        // time first, then source, then per-source seq.
        assert_eq!(order, ["b0", "b1", "a0", "a1"]);
        // Seq numbering continues across drains.
        a.push(SimTime(40), "a2");
        assert_eq!(a.drain()[0].seq, 2);
    }

    #[test]
    fn drain_into_matches_the_allocating_merge() {
        let mut boxes = [Outbox::new(), Outbox::new()];
        boxes[1].push(SimTime(30), 10u32);
        boxes[0].push(SimTime(10), 20);
        boxes[0].push(SimTime(30), 30);
        let mut cloned = [Outbox::new(), Outbox::new()];
        for (c, b) in cloned.iter_mut().zip(&boxes) {
            for e in &b.entries {
                c.push(e.time, e.payload);
            }
        }
        let want = merge_outboxes(
            cloned
                .into_iter()
                .enumerate()
                .map(|(i, mut b)| (i, b.drain())),
        );
        let mut got = Vec::new();
        for (i, b) in boxes.iter_mut().enumerate() {
            b.drain_into(i, &mut got);
        }
        sort_merged(&mut got);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                (g.time, g.source, g.seq, g.payload),
                (w.time, w.source, w.seq, w.payload)
            );
        }
        assert!(boxes.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn sweep_share_divides_the_budget() {
        assert_eq!(sweep_share(8, 2), 4);
        assert_eq!(sweep_share(8, 1), 8);
        assert_eq!(sweep_share(2, 8), 1);
        assert_eq!(sweep_share(8, 0), 8);
    }

    fn drive(workers: usize) -> (Vec<Vec<u64>>, EngineStats) {
        let mut lanes: Vec<Toy> = (0..5)
            .map(|i| Toy {
                pending: (0..20).map(|k| (k * 7 + i as u64) % 50).collect(),
                log: Vec::new(),
            })
            .collect();
        let mut horizon = 0u64;
        let stats = run_windows(
            workers,
            &mut lanes,
            |lane, h| {
                let mut due: Vec<u64> = lane
                    .pending
                    .iter()
                    .copied()
                    .filter(|&t| t < h.as_ps())
                    .collect();
                due.sort_unstable();
                lane.pending.retain(|&t| t >= h.as_ps());
                lane.log.extend(due);
            },
            |lanes, _| {
                let busy = lanes.iter().any(|l| !l.pending.is_empty());
                if !busy {
                    return None;
                }
                horizon += 13;
                Some(SimTime(horizon))
            },
            None,
        );
        (lanes.into_iter().map(|l| l.log).collect(), stats)
    }

    #[test]
    fn worker_count_changes_neither_outcomes_nor_stats() {
        let (serial, serial_stats) = drive(1);
        assert_eq!(serial_stats.windows, 4, "50/13 = 4 windows drain the toys");
        assert_eq!(serial_stats.rounds, 1, "4 windows fit in one train");
        for workers in [2, 3, 8] {
            let (log, stats) = drive(workers);
            assert_eq!(log, serial, "{workers} workers diverged");
            assert_eq!(stats, serial_stats, "{workers} workers changed stats");
        }
    }

    #[test]
    fn rounds_are_train_rendezvous_counts() {
        for workers in [1usize, 2] {
            let mut lanes = vec![0u64, 0u64];
            let mut issued = 0u64;
            let stats = run_windows(
                workers,
                &mut lanes,
                |lane, h| *lane = (*lane).max(h.as_ps()),
                |_, _| {
                    issued += 1;
                    (issued <= 20).then_some(SimTime(issued))
                },
                None,
            );
            assert_eq!(stats.windows, 20);
            assert_eq!(
                stats.rounds,
                20u64.div_ceil(TRAIN_WINDOWS),
                "rounds = ceil(windows / {TRAIN_WINDOWS}) at {workers} workers"
            );
        }
    }

    /// Two lanes whose events sit millions of picoseconds apart must
    /// drain in O(events) windows, not O(gap/quantum): the control
    /// closure bases each window on the earliest *pending* event, so an
    /// idle stretch is skipped in a single hop.
    #[test]
    fn idle_gaps_cost_windows_proportional_to_events_not_time() {
        let quantum = 20_000u64; // 20 ns in ps
        let times = [0u64, 50_000_000, 100_000_000]; // 50 ms gaps
        let mut lanes: Vec<Toy> = (0..2)
            .map(|_| Toy {
                pending: times.to_vec(),
                log: Vec::new(),
            })
            .collect();
        let stats = run_windows(
            2,
            &mut lanes,
            |lane, h| {
                let due: Vec<u64> = lane
                    .pending
                    .iter()
                    .copied()
                    .filter(|&t| t < h.as_ps())
                    .collect();
                lane.pending.retain(|&t| t >= h.as_ps());
                lane.log.extend(due);
            },
            |lanes, _| {
                let base = lanes.iter().filter_map(|l| l.pending.iter().min()).min()?;
                Some(SimTime(base + quantum))
            },
            None,
        );
        assert!(lanes.iter().all(|l| l.log == times));
        assert_eq!(
            stats.windows,
            times.len() as u64,
            "one window per event burst, independent of the gap width"
        );
        assert!(stats.rounds <= 1, "three windows fit in one train");
    }

    #[test]
    fn stall_probe_reports_every_worker() {
        let mut lanes = vec![(); 4];
        let mut issued = 0u64;
        let mut seen = std::collections::HashSet::new();
        let mut probe = |w: usize, _ns: u64| {
            seen.insert(w);
        };
        run_windows(
            4,
            &mut lanes,
            |_, _| std::thread::yield_now(),
            |_, _| {
                issued += 1;
                (issued <= TRAIN_WINDOWS + 1).then_some(SimTime(issued))
            },
            Some(&mut probe),
        );
        assert_eq!(seen, (0..4).collect(), "every worker flushed at least once");
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            let mut lanes = vec![0u32, 1u32];
            let mut rounds = 0;
            run_windows(
                2,
                &mut lanes,
                |lane, _| {
                    if *lane == 1 {
                        panic!("boom");
                    }
                },
                |_, _| {
                    rounds += 1;
                    (rounds <= 2).then_some(SimTime(1))
                },
                None,
            );
        });
        let payload = caught.expect_err("the lane panic must resurface");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"boom"),
            "the original payload is re-raised"
        );
    }

    #[test]
    fn control_panics_release_workers_and_propagate() {
        // A panic in the coordinator used to leave workers parked at the
        // start barrier forever; the shutdown path must release and join
        // them before re-raising.
        let caught = std::panic::catch_unwind(|| {
            let mut lanes = vec![0u32; 4];
            let mut calls = 0;
            run_windows(
                2,
                &mut lanes,
                |_, _| {},
                |_, _| {
                    calls += 1;
                    if calls == 3 {
                        panic!("control blew up");
                    }
                    Some(SimTime(calls))
                },
                None,
            );
        });
        let payload = caught.expect_err("the control panic must resurface");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"control blew up"));
    }
}
