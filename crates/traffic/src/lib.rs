//! Open-loop traffic for the Piranha simulator.
//!
//! Every workload in the original tree is *closed-loop*: a core finishes
//! one transaction and immediately begins the next, so the machine always
//! runs at 100% utilization and transaction latency equals service time.
//! Real datacenter load is *open-loop* — requests arrive on their own
//! schedule whether or not the server is ready — which is what produces
//! the classic hockey-stick: tail latency flat at low load, super-linear
//! once offered load approaches the saturation knee.
//!
//! This crate supplies that layer:
//!
//! * [`ArrivalProcess`] — deterministic, seeded inter-arrival generators:
//!   [`PoissonArrivals`] (exponential gaps) and [`LogNormalArrivals`]
//!   (heavier-tailed bursts), optionally modulated by a [`DiurnalCurve`]
//!   load multiplier.
//! * [`TrafficPlane`] — per-core bounded run queues with drop/defer
//!   accounting, consulted by the machine at dispatch exactly like the
//!   fault plane. Every generated arrival is classified exactly once as
//!   accepted, dropped, or deferred, so
//!   `accepted + dropped + deferred == generated` holds structurally.
//! * [`OpenLoopStream`] — wraps a closed-loop [`InstrStream`] and parks
//!   it at every transaction boundary; the plane decides when the next
//!   transaction is admitted, stamping birth and commit cycles so the
//!   machine can populate `traffic.txn_latency_ns` histograms.
//!
//! Determinism: all plane state is per-node and consulted only at
//! node-local dispatch points, so runs are bit-identical at any
//! `--parallel` worker count; a disabled plane ([`TrafficConfig`] with
//! rate 0) never touches a PRNG and never wraps a stream, leaving golden
//! fingerprints byte-for-byte unchanged.

#![warn(missing_docs)]

mod plane;
mod process;
mod stream;

pub use plane::{Admission, TrafficLedger, TrafficPlane, TrafficSummary};
pub use process::{ArrivalKind, ArrivalProcess, DiurnalCurve, LogNormalArrivals, PoissonArrivals};
pub use stream::OpenLoopStream;

use piranha_cpu::InstrStream;

/// What to do with an arrival that finds its core's run queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Shed the transaction (counted in `dropped`; it never executes).
    #[default]
    Drop,
    /// Park it on an unbounded overflow queue (counted in `deferred`;
    /// it executes later and its queueing delay lands in the tail).
    Defer,
}

/// Configuration of the open-loop traffic layer.
///
/// The zero-rate default disables the whole subsystem: no stream is
/// wrapped, no PRNG is seeded, and the machine's behaviour (and golden
/// fingerprints) are bit-identical to a build without this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Offered load in transactions per million CPU cycles, per core.
    /// `0.0` disables traffic mode.
    pub rate_tpmc: f64,
    /// Shape of the inter-arrival distribution.
    pub process: ArrivalKind,
    /// Optional diurnal (sinusoidal) modulation of the offered rate.
    pub curve: Option<DiurnalCurve>,
    /// Optional log-normal service-time pad: extra think/IO cycles
    /// charged at admission, log-normally distributed with this mean.
    /// `0.0` disables the pad.
    pub service_pad_cycles: f64,
    /// Sigma of the log-normal service pad (ignored when the pad is 0).
    pub service_pad_sigma: f64,
    /// Bounded run-queue depth per core.
    pub queue_depth: usize,
    /// What happens to arrivals past the depth limit.
    pub overflow: OverflowPolicy,
    /// Traffic-layer seed, mixed with the machine seed per node.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            rate_tpmc: 0.0,
            process: ArrivalKind::Poisson,
            curve: None,
            service_pad_cycles: 0.0,
            service_pad_sigma: 1.0,
            queue_depth: 16,
            overflow: OverflowPolicy::Drop,
            seed: 0x007A_FF1C,
        }
    }
}

impl TrafficConfig {
    /// A Poisson open-loop load at `rate` transactions per million
    /// cycles per core, defaults elsewhere.
    pub fn poisson(rate: f64) -> Self {
        TrafficConfig {
            rate_tpmc: rate,
            ..Self::default()
        }
    }

    /// Whether the traffic layer does anything at all.
    pub fn enabled(&self) -> bool {
        self.rate_tpmc > 0.0
    }

    /// Mean inter-arrival gap in cycles implied by the offered rate.
    pub fn mean_gap_cycles(&self) -> f64 {
        if self.rate_tpmc <= 0.0 {
            f64::INFINITY
        } else {
            1_000_000.0 / self.rate_tpmc
        }
    }
}

/// Wrap each processing-node stream in an [`OpenLoopStream`] when the
/// config enables traffic; pass streams through untouched otherwise.
pub fn wrap_streams(
    cfg: &TrafficConfig,
    streams: Vec<Box<dyn InstrStream>>,
) -> Vec<Box<dyn InstrStream>> {
    if !cfg.enabled() {
        return streams;
    }
    streams
        .into_iter()
        .map(|s| Box::new(OpenLoopStream::new(s)) as Box<dyn InstrStream>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let cfg = TrafficConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.mean_gap_cycles(), f64::INFINITY);
    }

    #[test]
    fn rate_implies_mean_gap() {
        let cfg = TrafficConfig::poisson(100.0);
        assert!(cfg.enabled());
        assert!((cfg.mean_gap_cycles() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_streams_is_identity_when_disabled() {
        let s: Vec<Box<dyn InstrStream>> = vec![Box::new(|| None)];
        let out = wrap_streams(&TrafficConfig::default(), s);
        assert_eq!(out.len(), 1);
        // An unwrapped stream keeps the default (non-parking) behaviour.
        assert!(!out[0].parked());
    }
}
