//! The per-node traffic plane: arrival generation, bounded run queues,
//! and the birth→commit latency ledger.

use std::collections::VecDeque;

use piranha_kernel::{Histogram, Prng};
use piranha_types::time::Clock;

use crate::process::ArrivalProcess;
use crate::{OverflowPolicy, TrafficConfig};

/// What the plane tells the dispatcher when a parked core asks for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A transaction is admitted now; charge this many extra idle cycles
    /// of service pad before its first instruction.
    Admit {
        /// Log-normal service-time pad, in cycles (0 when unconfigured).
        extra_idle: u32,
    },
    /// Nothing is runnable; re-poll at this cycle (the next arrival).
    WaitUntil(u64),
}

/// Conservation ledger of one plane (or the whole machine, summed).
/// Every generated arrival is classified exactly once, so
/// `accepted + dropped + deferred == generated` is structural.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    /// Arrivals produced by the arrival process.
    pub generated: u64,
    /// Arrivals that found run-queue space.
    pub accepted: u64,
    /// Arrivals shed at a full queue (`OverflowPolicy::Drop`).
    pub dropped: u64,
    /// Arrivals parked on the overflow queue (`OverflowPolicy::Defer`).
    pub deferred: u64,
    /// Transactions that ran to commit.
    pub completed: u64,
}

impl TrafficLedger {
    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &TrafficLedger) {
        self.generated += other.generated;
        self.accepted += other.accepted;
        self.dropped += other.dropped;
        self.deferred += other.deferred;
        self.completed += other.completed;
    }

    /// Fraction of generated arrivals that were shed (0 if none
    /// generated).
    pub fn drop_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.dropped as f64 / self.generated as f64
        }
    }

    /// The structural conservation invariant.
    pub fn conserved(&self) -> bool {
        self.accepted + self.dropped + self.deferred == self.generated
    }
}

/// Whole-run traffic results: the merged ledger and the merged
/// birth→commit latency histogram (nanoseconds). Deliberately *not*
/// part of `RunResult::fingerprint()`: with traffic off it is `None`
/// and nothing changes; with traffic on, latency estimates are derived
/// observations like the sample estimate, not architectural state.
#[derive(Debug, Clone)]
pub struct TrafficSummary {
    /// Machine-wide conservation ledger.
    pub ledger: TrafficLedger,
    /// Merged transaction latency histogram, nanoseconds.
    pub latency: Histogram,
}

impl TrafficSummary {
    /// Median transaction latency, ns.
    pub fn p50_ns(&self) -> u64 {
        self.latency.p50_ns()
    }

    /// 95th-percentile transaction latency, ns.
    pub fn p95_ns(&self) -> u64 {
        self.latency.p95_ns()
    }

    /// 99th-percentile transaction latency, ns.
    pub fn p99_ns(&self) -> u64 {
        self.latency.p99_ns()
    }

    /// Fraction of offered transactions shed.
    pub fn drop_rate(&self) -> f64 {
        self.ledger.drop_rate()
    }
}

/// Per-core open-loop state.
struct CoreLane {
    arrival_rng: Prng,
    service_rng: Prng,
    process: Box<dyn ArrivalProcess + Send>,
    /// Cycle of the next not-yet-classified arrival.
    next_arrival: u64,
    /// Bounded run queue of birth cycles.
    queue: VecDeque<u64>,
    /// Unbounded overflow queue (Defer policy only).
    overflow: VecDeque<u64>,
    /// Birth cycle of the transaction currently in service.
    in_service: Option<u64>,
    ledger: TrafficLedger,
    latency: Histogram,
}

/// One node's traffic plane: per-core arrival processes and run queues,
/// consulted by the dispatcher when an open-loop stream parks. Mirrors
/// the fault plane's seeding discipline — node 0 uses the machine seed
/// directly, other nodes decorrelate by index — so schedules are
/// independent of lane-to-worker assignment.
pub struct TrafficPlane {
    cfg: TrafficConfig,
    clock: Clock,
    enabled: bool,
    cores: Vec<CoreLane>,
}

impl std::fmt::Debug for TrafficPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficPlane")
            .field("enabled", &self.enabled)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

impl TrafficPlane {
    /// A disabled plane (no PRNG is ever seeded or drawn).
    pub fn disabled() -> Self {
        TrafficPlane {
            cfg: TrafficConfig::default(),
            clock: Clock::from_mhz(500),
            enabled: false,
            cores: Vec::new(),
        }
    }

    /// The plane for node `node` of a machine: per-core PRNG streams
    /// derived from `cfg.seed ^ machine_seed`, decorrelated across nodes
    /// exactly like `FaultPlane::for_node`.
    pub fn for_node(
        cfg: TrafficConfig,
        machine_seed: u64,
        node: usize,
        n_cpus: usize,
        clock: Clock,
    ) -> Self {
        if !cfg.enabled() {
            return Self::disabled();
        }
        let node_mix = (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let root = Prng::seed_from_u64(cfg.seed ^ machine_seed ^ node_mix ^ 0x7AFF_1C0A);
        let cores = (0..n_cpus)
            .map(|c| CoreLane {
                arrival_rng: root.derive(0x0A00 + c as u64),
                service_rng: root.derive(0x5E00 + c as u64),
                process: cfg.process.build(),
                next_arrival: 0,
                queue: VecDeque::new(),
                overflow: VecDeque::new(),
                in_service: None,
                ledger: TrafficLedger::default(),
                latency: Histogram::new(),
            })
            .collect();
        TrafficPlane {
            cfg,
            clock,
            enabled: true,
            cores,
        }
    }

    /// Whether this plane generates any traffic.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The configuration this plane was built from.
    pub fn cfg(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Generate and classify every arrival up to `now_cycle` on `core`.
    fn ingest(&mut self, core: usize, now_cycle: u64) {
        let base_gap = self.cfg.mean_gap_cycles();
        let lane = &mut self.cores[core];
        if lane.next_arrival == 0 {
            // Lazy first arrival: one gap past cycle 0.
            lane.next_arrival = lane.process.next_gap(
                scaled_gap(base_gap, &self.cfg.curve, 0),
                &mut lane.arrival_rng,
            );
        }
        while lane.next_arrival <= now_cycle {
            let birth = lane.next_arrival;
            lane.ledger.generated += 1;
            if lane.queue.len() < self.cfg.queue_depth {
                lane.ledger.accepted += 1;
                lane.queue.push_back(birth);
            } else {
                match self.cfg.overflow {
                    OverflowPolicy::Drop => lane.ledger.dropped += 1,
                    OverflowPolicy::Defer => {
                        lane.ledger.deferred += 1;
                        lane.overflow.push_back(birth);
                    }
                }
            }
            let gap = lane.process.next_gap(
                scaled_gap(base_gap, &self.cfg.curve, birth),
                &mut lane.arrival_rng,
            );
            lane.next_arrival = birth + gap;
        }
        // Promote deferred arrivals into freed queue slots, oldest first.
        while lane.queue.len() < self.cfg.queue_depth {
            let Some(birth) = lane.overflow.pop_front() else {
                break;
            };
            lane.queue.push_back(birth);
        }
    }

    /// A parked core asks for its next transaction at `now_cycle`.
    ///
    /// Generates every arrival up to now, then either admits the head of
    /// the run queue (stamping it in service) or reports the cycle of
    /// the next arrival so the dispatcher can schedule a re-poll.
    pub fn poll(&mut self, core: usize, now_cycle: u64) -> Admission {
        debug_assert!(self.enabled, "poll on a disabled traffic plane");
        self.ingest(core, now_cycle);
        let pad_mean = self.cfg.service_pad_cycles;
        let pad_sigma = self.cfg.service_pad_sigma;
        let lane = &mut self.cores[core];
        debug_assert!(
            lane.in_service.is_none(),
            "poll while a transaction is in service"
        );
        if let Some(birth) = lane.queue.pop_front() {
            lane.in_service = Some(birth);
            let extra_idle = if pad_mean > 0.0 {
                let mut pad = crate::process::LogNormalArrivals::new(pad_sigma);
                pad.next_gap(pad_mean, &mut lane.service_rng)
                    .min(u32::MAX as u64) as u32
            } else {
                0
            };
            Admission::Admit { extra_idle }
        } else {
            Admission::WaitUntil(lane.next_arrival)
        }
    }

    /// The in-service transaction on `core` committed at `commit_cycle`.
    /// Records its birth→commit latency (ns) and returns it.
    pub fn complete(&mut self, core: usize, commit_cycle: u64) -> Option<u64> {
        let clock = self.clock;
        let lane = &mut self.cores[core];
        let birth = lane.in_service.take()?;
        let lat_cycles = commit_cycle.saturating_sub(birth);
        let lat = clock.cycles_dur(lat_cycles);
        lane.latency.record(lat);
        lane.ledger.completed += 1;
        Some(lat.as_ns())
    }

    /// This plane's merged ledger.
    pub fn ledger(&self) -> TrafficLedger {
        let mut total = TrafficLedger::default();
        for lane in &self.cores {
            total.merge(&lane.ledger);
        }
        total
    }

    /// Per-core ledgers, for probe counters.
    pub fn core_ledgers(&self) -> impl Iterator<Item = TrafficLedger> + '_ {
        self.cores.iter().map(|l| l.ledger)
    }

    /// Merged summary of this plane (ledger + latency histogram).
    pub fn summary(&self) -> TrafficSummary {
        let mut latency = Histogram::new();
        for lane in &self.cores {
            latency.merge(&lane.latency);
        }
        TrafficSummary {
            ledger: self.ledger(),
            latency,
        }
    }
}

/// The instantaneous mean gap: base gap divided by the diurnal
/// multiplier at this cycle (higher multiplier ⇒ shorter gaps).
fn scaled_gap(base_gap: f64, curve: &Option<crate::DiurnalCurve>, cycle: u64) -> f64 {
    match curve {
        Some(c) => base_gap / c.multiplier(cycle),
        None => base_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(cfg: TrafficConfig) -> TrafficPlane {
        TrafficPlane::for_node(cfg, 99, 0, 1, Clock::from_mhz(500))
    }

    /// Drive one core: poll/complete in lock-step for `cycles`, with a
    /// fixed per-txn service time. Returns the plane.
    fn drive(cfg: TrafficConfig, cycles: u64, service: u64) -> TrafficPlane {
        let mut p = plane(cfg);
        let mut now = 0;
        while now < cycles {
            match p.poll(0, now) {
                Admission::Admit { extra_idle } => {
                    now += service + extra_idle as u64;
                    p.complete(0, now);
                }
                Admission::WaitUntil(c) => {
                    assert!(c > now, "re-poll must be in the future");
                    now = c;
                }
            }
        }
        p
    }

    #[test]
    fn disabled_plane_never_draws() {
        let p = TrafficPlane::for_node(TrafficConfig::default(), 1, 0, 8, Clock::from_mhz(500));
        assert!(!p.enabled());
        assert_eq!(p.ledger(), TrafficLedger::default());
    }

    #[test]
    fn underload_completes_everything_admitted() {
        // Service 100 cycles, mean gap 10_000: essentially no queueing.
        let p = drive(TrafficConfig::poisson(100.0), 2_000_000, 100);
        let l = p.ledger();
        assert!(l.generated > 100, "generated {}", l.generated);
        assert!(l.conserved());
        assert_eq!(l.dropped, 0, "underload sheds nothing");
        assert!(l.completed + 1 >= l.accepted, "at most one in flight");
    }

    #[test]
    fn overload_drops_at_bounded_depth() {
        // Service 10_000 cycles, mean gap 1_000: 10x oversubscribed.
        let cfg = TrafficConfig {
            queue_depth: 4,
            ..TrafficConfig::poisson(1000.0)
        };
        let p = drive(cfg, 2_000_000, 10_000);
        let l = p.ledger();
        assert!(l.conserved());
        assert!(l.dropped > 0, "overload must shed");
        assert!(l.drop_rate() > 0.5, "10x overload sheds most arrivals");
    }

    #[test]
    fn defer_policy_keeps_work_instead_of_dropping() {
        let cfg = TrafficConfig {
            queue_depth: 4,
            overflow: OverflowPolicy::Defer,
            ..TrafficConfig::poisson(1000.0)
        };
        let p = drive(cfg, 500_000, 10_000);
        let l = p.ledger();
        assert!(l.conserved());
        assert_eq!(l.dropped, 0);
        assert!(l.deferred > 0, "overflow defers instead");
    }

    #[test]
    fn latency_grows_with_load() {
        let lo = drive(TrafficConfig::poisson(10.0), 4_000_000, 1000).summary();
        let hi = drive(
            TrafficConfig {
                queue_depth: 16,
                ..TrafficConfig::poisson(900.0)
            },
            4_000_000,
            1000,
        )
        .summary();
        assert!(lo.latency.count() > 10);
        assert!(hi.latency.count() > 10);
        assert!(
            hi.p99_ns() > lo.p99_ns(),
            "queueing delay must raise the tail: lo {} hi {}",
            lo.p99_ns(),
            hi.p99_ns()
        );
    }

    #[test]
    fn plane_is_deterministic_per_seed_and_decorrelated_per_node() {
        let cfg = TrafficConfig::poisson(200.0);
        let mut a = TrafficPlane::for_node(cfg.clone(), 7, 0, 1, Clock::from_mhz(500));
        let mut b = TrafficPlane::for_node(cfg.clone(), 7, 0, 1, Clock::from_mhz(500));
        let mut other = TrafficPlane::for_node(cfg, 7, 1, 1, Clock::from_mhz(500));
        let wa = a.poll(0, 1_000_000);
        let wb = b.poll(0, 1_000_000);
        assert_eq!(wa, wb, "same node, same seed, same schedule");
        assert_eq!(a.ledger().generated, b.ledger().generated);
        other.poll(0, 1_000_000);
        assert_ne!(
            a.ledger().generated,
            other.ledger().generated,
            "nodes are decorrelated (same count would be a coincidence \
             at ~200 arrivals; the schedules differ)"
        );
    }

    #[test]
    fn service_pad_charges_extra_idle() {
        let cfg = TrafficConfig {
            service_pad_cycles: 500.0,
            service_pad_sigma: 0.5,
            ..TrafficConfig::poisson(50.0)
        };
        let mut p = plane(cfg);
        let mut pads = Vec::new();
        let mut now = 0u64;
        for _ in 0..50 {
            match p.poll(0, now) {
                Admission::Admit { extra_idle } => {
                    pads.push(extra_idle);
                    now += 100;
                    p.complete(0, now);
                }
                Admission::WaitUntil(c) => now = c,
            }
        }
        assert!(pads.iter().any(|&x| x > 0), "pad draws nonzero idle");
    }

    #[test]
    fn diurnal_curve_modulates_arrival_count() {
        let flat = drive(TrafficConfig::poisson(100.0), 4_000_000, 10).ledger();
        let curved = drive(
            TrafficConfig {
                curve: Some(crate::DiurnalCurve {
                    amplitude: 0.9,
                    period_cycles: 1_000_000,
                }),
                ..TrafficConfig::poisson(100.0)
            },
            4_000_000,
            10,
        )
        .ledger();
        // Whole periods average out to roughly the base rate, but the
        // schedule differs; both conserve.
        assert!(flat.conserved() && curved.conserved());
        let f = flat.generated as f64;
        let c = curved.generated as f64;
        assert!((c / f - 1.0).abs() < 0.35, "flat {f} curved {c}");
    }
}
