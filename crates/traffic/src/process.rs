//! Inter-arrival processes and the diurnal load curve.

use piranha_kernel::Prng;

/// Which inter-arrival distribution to use (config-level selector for
/// the [`ArrivalProcess`] implementations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Exponential inter-arrival gaps (memoryless Poisson arrivals).
    Poisson,
    /// Log-normal inter-arrival gaps with the given sigma: same mean as
    /// the Poisson process but burstier, with a heavier tail.
    LogNormal {
        /// Shape parameter of the log-normal (sigma of the underlying
        /// normal).
        sigma: f64,
    },
}

impl ArrivalKind {
    /// Build the matching generator.
    pub fn build(self) -> Box<dyn ArrivalProcess + Send> {
        match self {
            ArrivalKind::Poisson => Box::new(PoissonArrivals),
            ArrivalKind::LogNormal { sigma } => Box::new(LogNormalArrivals::new(sigma)),
        }
    }
}

/// A deterministic, seeded source of inter-arrival (or service-time)
/// gaps. All randomness comes from the supplied [`Prng`], so two
/// processes driven by identically-seeded PRNGs produce identical
/// schedules.
pub trait ArrivalProcess {
    /// The next gap in cycles, targeting the given mean. Never zero, so
    /// arrival cursors always advance.
    fn next_gap(&mut self, mean_cycles: f64, rng: &mut Prng) -> u64;
}

/// Memoryless arrivals: exponentially distributed gaps.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoissonArrivals;

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, mean_cycles: f64, rng: &mut Prng) -> u64 {
        let u = rng.unit_f64();
        // Inverse-CDF of the exponential; 1-u keeps the log argument in
        // (0, 1].
        let gap = -mean_cycles * (1.0 - u).ln();
        (gap.round() as u64).max(1)
    }
}

/// Bursty arrivals: log-normally distributed gaps. The location
/// parameter is chosen so the distribution's *mean* equals the requested
/// mean (`mu = ln(mean) - sigma^2 / 2`), making Poisson and log-normal
/// sweeps directly comparable at equal offered load.
#[derive(Debug, Clone, Copy)]
pub struct LogNormalArrivals {
    sigma: f64,
}

impl LogNormalArrivals {
    /// A log-normal gap generator with the given shape parameter.
    pub fn new(sigma: f64) -> Self {
        LogNormalArrivals {
            sigma: sigma.max(1e-6),
        }
    }
}

impl ArrivalProcess for LogNormalArrivals {
    fn next_gap(&mut self, mean_cycles: f64, rng: &mut Prng) -> u64 {
        let mu = mean_cycles.ln() - self.sigma * self.sigma / 2.0;
        let z = standard_normal(rng);
        let gap = (mu + self.sigma * z).exp();
        (gap.round() as u64).max(1)
    }
}

/// One standard-normal draw via Box–Muller (two uniform draws per
/// sample; the second variate is discarded to keep the draw count per
/// gap fixed, which keeps schedules stable under reordering of cores).
fn standard_normal(rng: &mut Prng) -> f64 {
    let u1 = (1.0 - rng.unit_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.unit_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A sinusoidal load multiplier: offered rate swings by `amplitude`
/// around its base over one `period_cycles`, modelling the day/night
/// cycle of real serving load (compressed to simulation scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Peak deviation from the base rate, as a fraction (0.5 = ±50%).
    pub amplitude: f64,
    /// Cycles per full sine period.
    pub period_cycles: u64,
}

impl DiurnalCurve {
    /// The rate multiplier at an absolute cycle, floored at 5% so the
    /// arrival cursor always advances.
    pub fn multiplier(&self, cycle: u64) -> f64 {
        let phase = (cycle % self.period_cycles.max(1)) as f64 / self.period_cycles.max(1) as f64;
        (1.0 + self.amplitude * (std::f64::consts::TAU * phase).sin()).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gaps_hit_the_mean() {
        let mut rng = Prng::seed_from_u64(7);
        let mut p = PoissonArrivals;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap(1000.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 25.0,
            "exponential mean ≈ 1000, got {mean}"
        );
    }

    #[test]
    fn lognormal_gaps_hit_the_mean_and_are_burstier() {
        let mut rng = Prng::seed_from_u64(7);
        let mut p = LogNormalArrivals::new(1.0);
        let n = 40_000;
        let gaps: Vec<u64> = (0..n).map(|_| p.next_gap(1000.0, &mut rng)).collect();
        let mean = gaps.iter().sum::<u64>() as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 60.0,
            "log-normal mean ≈ 1000, got {mean}"
        );
        // Heavier tail than exponential: max draw far above the mean.
        let max = *gaps.iter().max().unwrap();
        assert!(max > 5_000, "bursty tail expected, max gap {max}");
    }

    #[test]
    fn gaps_are_deterministic_per_seed() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::LogNormal { sigma: 0.7 }] {
            let mut a = kind.build();
            let mut b = kind.build();
            let mut ra = Prng::seed_from_u64(42);
            let mut rb = Prng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_gap(500.0, &mut ra), b.next_gap(500.0, &mut rb));
            }
        }
    }

    #[test]
    fn gaps_are_never_zero() {
        let mut rng = Prng::seed_from_u64(3);
        let mut p = PoissonArrivals;
        for _ in 0..1000 {
            assert!(p.next_gap(0.001, &mut rng) >= 1);
        }
        let mut l = LogNormalArrivals::new(2.0);
        for _ in 0..1000 {
            assert!(l.next_gap(0.001, &mut rng) >= 1);
        }
    }

    #[test]
    fn diurnal_curve_swings_and_floors() {
        let c = DiurnalCurve {
            amplitude: 0.5,
            period_cycles: 1000,
        };
        assert!((c.multiplier(0) - 1.0).abs() < 1e-9);
        assert!(c.multiplier(250) > 1.45, "peak near quarter period");
        assert!(c.multiplier(750) < 0.55, "trough near three quarters");
        let deep = DiurnalCurve {
            amplitude: 10.0,
            period_cycles: 1000,
        };
        assert!(deep.multiplier(750) >= 0.05, "floored multiplier");
    }
}
