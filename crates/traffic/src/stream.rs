//! The open-loop stream wrapper: parks a closed-loop instruction stream
//! at every transaction boundary so the traffic plane controls when the
//! next transaction begins.

use piranha_cpu::{InstrStream, OpKind, StreamOp};

/// Wraps a closed-loop [`InstrStream`] (OLTP, web) and gates it on
/// open-loop admission.
///
/// The wrapper holds a one-op lookahead buffer. Transaction boundaries
/// are detected by watching the inner stream's
/// [`units_completed`](InstrStream::units_completed) counter: the
/// closed-loop generators bump it when the first op of the *next*
/// transaction is pulled, so the boundary is observed while the current
/// transaction's last op is being handed out — the core never sees an
/// op of transaction *N+1* before the plane admits it.
///
/// Lifecycle per transaction:
///
/// 1. starts **parked**; the core's park check sees
///    [`parked`](InstrStream::parked) and yields instead of fetching,
/// 2. the dispatcher polls the plane, which eventually
///    [`admit`](InstrStream::admit)s (optionally with a service-time
///    pad, delivered as a leading [`OpKind::Idle`] op),
/// 3. ops flow until the lookahead detects the next boundary and the
///    stream re-parks with the boundary *armed*,
/// 4. the core quiesces and calls
///    [`mark_quiescent`](InstrStream::mark_quiescent), stamping the
///    commit cycle, which the dispatcher drains via
///    [`take_completion`](InstrStream::take_completion) and forwards to
///    the plane.
pub struct OpenLoopStream {
    inner: Box<dyn InstrStream>,
    /// One-op lookahead (the op that triggered a boundary, or simply
    /// the next op).
    buf: Option<StreamOp>,
    /// No ops may be handed out until the plane admits.
    parked: bool,
    /// A boundary was detected but its commit cycle is not yet stamped.
    armed: bool,
    /// Stamped commit cycle awaiting collection by the dispatcher.
    completion: Option<u64>,
    /// Service-time pad to emit before the next transaction's first op.
    pending_idle: Option<u32>,
    /// Last observed `units_completed` of the inner stream.
    last_units: u64,
    /// The inner stream returned `None`.
    inner_done: bool,
}

impl OpenLoopStream {
    /// Wrap a closed-loop stream. Starts parked with no boundary armed:
    /// the first admission simply begins transaction 1.
    pub fn new(inner: Box<dyn InstrStream>) -> Self {
        let last_units = inner.units_completed().unwrap_or(0);
        OpenLoopStream {
            inner,
            buf: None,
            parked: true,
            armed: false,
            completion: None,
            pending_idle: None,
            last_units,
            inner_done: false,
        }
    }

    /// Pull the very first op of a transaction run (no boundary
    /// bookkeeping: the units bump observed here means the transaction
    /// *started*, not that one completed).
    fn prime(&mut self) {
        debug_assert!(self.buf.is_none() && !self.inner_done);
        match self.inner.next_op() {
            Some(op) => {
                self.buf = Some(op);
                self.last_units = self.inner.units_completed().unwrap_or(self.last_units);
            }
            None => self.inner_done = true,
        }
    }

    /// Refill the lookahead and detect a transaction boundary: a units
    /// bump means the buffered op belongs to the next transaction, and
    /// inner exhaustion means the final transaction just ended.
    fn prefetch(&mut self) {
        debug_assert!(self.buf.is_none() && !self.inner_done);
        match self.inner.next_op() {
            Some(op) => {
                self.buf = Some(op);
                let units = self.inner.units_completed().unwrap_or(self.last_units);
                if units != self.last_units {
                    self.last_units = units;
                    self.parked = true;
                    self.armed = true;
                }
            }
            None => {
                self.inner_done = true;
                self.parked = true;
                self.armed = true;
            }
        }
    }
}

impl InstrStream for OpenLoopStream {
    fn next_op(&mut self) -> Option<StreamOp> {
        debug_assert!(!self.parked, "next_op on a parked open-loop stream");
        if self.pending_idle.is_some() {
            if self.buf.is_none() && !self.inner_done {
                self.prime();
            }
            let pad = self.pending_idle.take().unwrap_or(0);
            if pad > 0 {
                if let Some(op) = &self.buf {
                    return Some(StreamOp {
                        pc: op.pc,
                        kind: OpKind::Idle { cycles: pad },
                    });
                }
            }
        }
        if self.buf.is_none() {
            if self.inner_done {
                return None;
            }
            self.prime();
        }
        let cur = self.buf.take()?;
        if !self.inner_done && self.buf.is_none() {
            self.prefetch();
        }
        Some(cur)
    }

    fn txns_committed(&self) -> Option<u64> {
        self.inner.txns_committed()
    }

    fn units_completed(&self) -> Option<u64> {
        self.inner.units_completed()
    }

    fn parked(&self) -> bool {
        self.parked
    }

    fn boundary_pending(&self) -> bool {
        self.armed || self.completion.is_some()
    }

    fn exhausted(&self) -> bool {
        self.inner_done && self.buf.is_none()
    }

    fn mark_quiescent(&mut self, cycle: u64) {
        if self.armed {
            self.armed = false;
            self.completion = Some(cycle);
        }
    }

    fn take_completion(&mut self) -> Option<u64> {
        self.completion.take()
    }

    fn admit(&mut self, extra_idle_cycles: u32) {
        debug_assert!(!self.boundary_pending(), "admit with an unclaimed boundary");
        self.parked = false;
        if extra_idle_cycles > 0 {
            self.pending_idle = Some(extra_idle_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_types::Addr;

    /// A closed-loop fake: `per_txn` ALU ops per transaction, `txns`
    /// transactions, bumping `units` when the first op of each new
    /// transaction is pulled (the OltpStream discipline).
    struct FakeTxnStream {
        per_txn: u64,
        txns: u64,
        emitted: u64,
        units: u64,
    }

    impl InstrStream for FakeTxnStream {
        fn next_op(&mut self) -> Option<StreamOp> {
            if self.emitted >= self.per_txn * self.txns {
                return None;
            }
            if self.emitted.is_multiple_of(self.per_txn) {
                self.units += 1;
            }
            self.emitted += 1;
            Some(StreamOp {
                pc: Addr(8 * self.emitted),
                kind: OpKind::Alu {
                    mul: false,
                    dep1: 0,
                    dep2: 0,
                },
            })
        }

        fn txns_committed(&self) -> Option<u64> {
            Some(self.units)
        }
    }

    fn wrap(per_txn: u64, txns: u64) -> OpenLoopStream {
        OpenLoopStream::new(Box::new(FakeTxnStream {
            per_txn,
            txns,
            emitted: 0,
            units: 0,
        }))
    }

    #[test]
    fn starts_parked_without_boundary() {
        let s = wrap(3, 2);
        assert!(s.parked());
        assert!(!s.boundary_pending());
        assert!(!s.exhausted());
    }

    #[test]
    fn txn_flows_then_reparks_at_boundary() {
        let mut s = wrap(3, 2);
        s.admit(0);
        assert!(!s.parked());
        for _ in 0..3 {
            assert!(s.next_op().is_some());
        }
        // Handing out op 3 prefetched op 4 (txn 2's first), arming the
        // boundary and re-parking.
        assert!(s.parked());
        assert!(s.boundary_pending());
        s.mark_quiescent(123);
        assert_eq!(s.take_completion(), Some(123));
        assert!(!s.boundary_pending());
        assert!(s.parked(), "still parked until re-admitted");
    }

    #[test]
    fn final_txn_arms_on_exhaustion() {
        let mut s = wrap(2, 1);
        s.admit(0);
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_some());
        assert!(s.parked() && s.boundary_pending());
        s.mark_quiescent(50);
        assert_eq!(s.take_completion(), Some(50));
        assert!(s.exhausted());
        s.admit(0);
        assert_eq!(s.next_op(), None, "exhausted stream ends cleanly");
    }

    #[test]
    fn mark_quiescent_is_idempotent_per_boundary() {
        let mut s = wrap(1, 2);
        s.admit(0);
        assert!(s.next_op().is_some());
        s.mark_quiescent(10);
        s.mark_quiescent(99);
        assert_eq!(s.take_completion(), Some(10), "first stamp wins");
        assert_eq!(s.take_completion(), None);
    }

    #[test]
    fn service_pad_emits_leading_idle() {
        let mut s = wrap(2, 1);
        s.admit(40);
        let pad = s.next_op().unwrap();
        assert!(matches!(pad.kind, OpKind::Idle { cycles: 40 }));
        assert!(matches!(s.next_op().unwrap().kind, OpKind::Alu { .. }));
    }

    #[test]
    fn all_ops_delivered_across_admissions() {
        let mut s = wrap(4, 3);
        let mut total = 0;
        for txn in 0..3 {
            s.admit(0);
            while !s.parked() {
                if s.next_op().is_some() {
                    total += 1;
                }
            }
            s.mark_quiescent(txn);
            assert_eq!(s.take_completion(), Some(txn));
        }
        assert_eq!(total, 12, "every inner op surfaced exactly once");
        assert!(s.exhausted());
        assert_eq!(s.txns_committed(), Some(3));
    }
}
