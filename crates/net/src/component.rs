//! The interconnect-fabric component adapter.
//!
//! The machine-wide intra-chip/inter-chip network behind the kernel's
//! [`Component`] interface. A [`Depart`] event injects a payload at its
//! source node; the fabric routes it (charging hop and contention
//! latency inside [`Network`]) and emits an [`Arrive`] action stamped
//! with the delivery time, clamped to be no earlier than the send. The
//! wiring applies link-fault hooks (CRC retransmits, router stalls) on
//! the emitted action, at the port boundary — the fabric itself is
//! fault-free, matching the paper's reliable-delivery datapath split.

use piranha_kernel::{Component, Port};
use piranha_types::{Lane, NodeId, SimTime};

use crate::{Network, Packet, PacketKind, Topology};

/// A packet departure: `payload` leaves `from` bound for `to`.
#[derive(Debug, Clone)]
pub struct Depart<P> {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Virtual lane (deadlock-avoidance class).
    pub lane: Lane,
    /// Short (header-only) or long (with data) packet.
    pub kind: PacketKind,
    /// The protocol payload.
    pub payload: P,
}

/// A packet arrival at its destination, emitted at the delivery time.
#[derive(Debug, Clone)]
pub struct Arrive<P> {
    /// The node the packet came from.
    pub from: NodeId,
    /// The node it arrived at.
    pub to: NodeId,
    /// The delivered payload.
    pub payload: P,
}

/// The routed interconnect (paper §2.4/§3.2): one fabric serves the
/// whole machine, so unlike the per-node adapters it is a single
/// machine-wide component.
#[derive(Debug)]
pub struct Fabric<P> {
    net: Network<P>,
}

impl<P> Fabric<P> {
    /// A fabric over `net`.
    pub fn new(net: Network<P>) -> Self {
        Fabric { net }
    }

    /// Re-inject a packet after a link-level retransmit; returns the
    /// new delivery time and the routed packet. Used by the wiring's
    /// fault hooks only.
    pub fn resend(&mut self, now: SimTime, pkt: Packet<P>) -> (SimTime, Packet<P>) {
        self.net.resend(now, pkt)
    }

    /// Packets delivered.
    pub fn delivered(&self) -> u64 {
        self.net.delivered()
    }

    /// Link-level retransmissions.
    pub fn retransmits(&self) -> u64 {
        self.net.retransmits()
    }

    /// Packets deflected by full output queues.
    pub fn deflections(&self) -> u64 {
        self.net.deflections()
    }

    /// Deflections charged to each node's router (indexed by node).
    pub fn node_deflections(&self) -> &[u64] {
        self.net.node_deflections()
    }

    /// Packets refused by a full output port (bounded disciplines).
    pub fn drops(&self) -> u64 {
        self.net.drops()
    }

    /// PFC pause events (credit-based back-pressure stalls).
    pub fn pauses(&self) -> u64 {
        self.net.pauses()
    }

    /// A full occupancy/loss counter snapshot (see
    /// [`crate::FabricStats`]).
    pub fn stats(&self) -> crate::FabricStats {
        self.net.stats()
    }

    /// Mean hops per delivered packet.
    pub fn mean_hops(&self) -> f64 {
        self.net.mean_hops()
    }

    /// The routed topology.
    pub fn topology(&self) -> &Topology {
        self.net.topology()
    }

    /// The conservative lookahead bound of this fabric's links: no
    /// cross-node delivery can complete in less than this (see
    /// [`crate::NetworkConfig::min_delivery_latency`]). The system layer
    /// uses it as the quantum for parallel-in-space execution.
    pub fn min_delivery_latency(&self) -> piranha_types::Duration {
        self.net.config().min_delivery_latency()
    }

    /// Per-pair conservative delivery bounds (see
    /// [`crate::Network::pair_bounds`]): `bounds[src][dst]` = topology
    /// hop distance × the per-hop minimum. Feeds the system layer's
    /// per-pair lookahead matrix at wiring time.
    pub fn pair_bounds(&self) -> Vec<Vec<piranha_types::Duration>> {
        self.net.pair_bounds()
    }

    /// [`Fabric::pair_bounds`] restricted to host (lane) nodes — what
    /// the system layer's lookahead actually needs on topologies with
    /// phantom switch nodes (see [`crate::Network::host_pair_bounds`]).
    pub fn host_pair_bounds(&self) -> Vec<Vec<piranha_types::Duration>> {
        self.net.host_pair_bounds()
    }
}

impl<P> Component for Fabric<P> {
    type Event = Depart<P>;
    type Action = Arrive<P>;
    type Ctx<'a> = ();

    fn handle(&mut self, now: SimTime, event: Depart<P>, _ctx: (), out: &mut Port<Arrive<P>>) {
        let Depart {
            from,
            to,
            lane,
            kind,
            payload,
        } = event;
        let (first, pkt) = self
            .net
            .send(now, Packet::new(from, to, lane, kind, payload));
        out.emit(
            first.max(now),
            Arrive {
                from,
                to,
                payload: pkt.payload,
            },
        );
    }
}
