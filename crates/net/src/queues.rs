//! The per-node input and output queues (paper §2.6.2).
//!
//! The OQ de-couples the router from the node through priority FIFOs: it
//! supports four priority levels, never lets a lower-priority packet
//! block a higher-priority one, and (in the router) transit traffic is
//! preferred over new injections. The IQ has more buffer space (getting
//! packets out of the expensive router quickly), also four priorities,
//! and additionally lets *low*-priority traffic bypass blocked
//! high-priority traffic when the former can proceed — both behaviours
//! are modelled exactly by these queue structures.

use std::collections::VecDeque;

use crate::packet::PRIORITIES;

/// A four-priority output queue: pop always returns the
/// highest-priority non-empty FIFO, so low priority cannot block high.
///
/// # Examples
///
/// ```
/// use piranha_net::OutQueue;
/// let mut q = OutQueue::new(8);
/// q.push(0, "low").unwrap();
/// q.push(3, "urgent").unwrap();
/// assert_eq!(q.pop(), Some("urgent"));
/// assert_eq!(q.pop(), Some("low"));
/// ```
#[derive(Debug)]
pub struct OutQueue<T> {
    fifos: [VecDeque<T>; PRIORITIES],
    capacity: usize,
    enqueued: u64,
    dequeued: u64,
}

impl<T> OutQueue<T> {
    /// A queue holding at most `capacity` packets per priority level.
    pub fn new(capacity: usize) -> Self {
        OutQueue {
            fifos: Default::default(),
            capacity,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Enqueue at `priority`; returns the packet back if that level is
    /// full (the caller must apply back-pressure).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the priority level is at capacity.
    pub fn push(&mut self, priority: u8, item: T) -> Result<(), T> {
        let f = &mut self.fifos[priority as usize % PRIORITIES];
        if f.len() >= self.capacity {
            return Err(item);
        }
        f.push_back(item);
        self.enqueued += 1;
        self.assert_conserved();
        Ok(())
    }

    /// Dequeue the oldest packet of the highest non-empty priority.
    pub fn pop(&mut self) -> Option<T> {
        let got = self.fifos.iter_mut().rev().find_map(VecDeque::pop_front);
        if got.is_some() {
            self.dequeued += 1;
        }
        self.assert_conserved();
        got
    }

    /// The conservation audit, checked at every mutation in debug
    /// builds: lifetime credits (enqueues − dequeues) always equal the
    /// packets physically present, so a dropped or corrupted flit that
    /// re-enters via the retransmit path cannot strand a credit.
    fn assert_conserved(&self) {
        debug_assert_eq!(
            self.enqueued - self.dequeued,
            self.len() as u64,
            "output-queue credit leak"
        );
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.fifos.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packets accepted over the queue's lifetime.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets delivered over the queue's lifetime.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Current occupancy derived from the lifetime counters; always
    /// equal to [`len`](Self::len) (the conservation invariant).
    pub fn occupancy(&self) -> u64 {
        self.enqueued - self.dequeued
    }
}

/// The input queue: four priorities plus the bypass rule — if the head
/// of a higher priority class is *blocked* (its destination module is
/// busy), a lower-priority packet whose destination can proceed is
/// delivered instead.
#[derive(Debug)]
pub struct InQueue<T> {
    fifos: [VecDeque<T>; PRIORITIES],
    capacity: usize,
    enqueued: u64,
    dequeued: u64,
}

impl<T> InQueue<T> {
    /// A queue holding at most `capacity` packets per priority level
    /// (the IQ is sized larger than the OQ in the real design).
    pub fn new(capacity: usize) -> Self {
        InQueue {
            fifos: Default::default(),
            capacity,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Enqueue at `priority`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the priority level is at capacity.
    pub fn push(&mut self, priority: u8, item: T) -> Result<(), T> {
        let f = &mut self.fifos[priority as usize % PRIORITIES];
        if f.len() >= self.capacity {
            return Err(item);
        }
        f.push_back(item);
        self.enqueued += 1;
        self.assert_conserved();
        Ok(())
    }

    /// Deliver the best packet: the highest-priority head whose
    /// destination `can_proceed`; lower-priority packets bypass blocked
    /// higher-priority ones.
    pub fn pop_ready(&mut self, mut can_proceed: impl FnMut(&T) -> bool) -> Option<T> {
        for f in self.fifos.iter_mut().rev() {
            if let Some(head) = f.front() {
                if can_proceed(head) {
                    let got = f.pop_front();
                    self.dequeued += 1;
                    self.assert_conserved();
                    return got;
                }
                // Blocked: fall through to lower priorities (bypass).
            }
        }
        None
    }

    /// The conservation audit (see [`OutQueue`]); a bypassed head must
    /// never be counted as dequeued.
    fn assert_conserved(&self) {
        debug_assert_eq!(
            self.enqueued - self.dequeued,
            self.len() as u64,
            "input-queue credit leak"
        );
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.fifos.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packets accepted over the queue's lifetime.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets delivered over the queue's lifetime.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Current occupancy derived from the lifetime counters; always
    /// equal to [`len`](Self::len) (the conservation invariant).
    pub fn occupancy(&self) -> u64 {
        self.enqueued - self.dequeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_queue_priority_order() {
        let mut q = OutQueue::new(4);
        q.push(1, 'a').unwrap();
        q.push(2, 'b').unwrap();
        q.push(1, 'c').unwrap();
        q.push(0, 'd').unwrap();
        assert_eq!(q.len(), 4);
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!['b', 'a', 'c', 'd']);
        assert!(q.is_empty());
    }

    #[test]
    fn out_queue_back_pressure() {
        let mut q = OutQueue::new(1);
        q.push(0, 1).unwrap();
        assert_eq!(q.push(0, 2), Err(2));
        // Other priorities unaffected.
        q.push(1, 3).unwrap();
    }

    #[test]
    fn in_queue_bypass_of_blocked_high_priority() {
        let mut q = InQueue::new(4);
        q.push(3, "blocked-high").unwrap();
        q.push(0, "ready-low").unwrap();
        // High priority's destination is busy: the low one bypasses.
        let got = q.pop_ready(|t| *t != "blocked-high");
        assert_eq!(got, Some("ready-low"));
        // Once unblocked, high goes first.
        q.push(0, "ready-low-2").unwrap();
        assert_eq!(q.pop_ready(|_| true), Some("blocked-high"));
    }

    #[test]
    fn in_queue_nothing_ready() {
        let mut q = InQueue::new(4);
        q.push(2, 1).unwrap();
        assert_eq!(q.pop_ready(|_| false), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn in_queue_priority_wraps_safely() {
        let mut q = InQueue::new(2);
        // Priority 7 wraps into level 3 rather than panicking.
        q.push(7, 'x').unwrap();
        assert_eq!(q.pop_ready(|_| true), Some('x'));
    }

    /// A tiny deterministic PRNG (splitmix64) for the randomized
    /// conservation checks.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn out_queue_occupancy_is_conserved_under_random_traffic() {
        for seed in 0..4u64 {
            let mut rng = Rng(seed);
            let mut q = OutQueue::new(3);
            let mut accepted = 0u64;
            let mut rejected = 0u64;
            for i in 0..10_000u64 {
                if rng.next() % 100 < 55 {
                    let prio = (rng.next() % 4) as u8;
                    match q.push(prio, i) {
                        Ok(()) => accepted += 1,
                        Err(_) => rejected += 1,
                    }
                } else {
                    q.pop();
                }
                // enqueues − dequeues = occupancy, at every step.
                assert_eq!(q.occupancy(), q.len() as u64, "seed {seed} step {i}");
                assert_eq!(q.enqueued() - q.dequeued(), q.occupancy());
            }
            assert_eq!(q.enqueued(), accepted, "rejected pushes don't count");
            assert!(rejected > 0, "back-pressure exercised (capacity 3)");
            while q.pop().is_some() {}
            assert_eq!(q.occupancy(), 0, "drained queue conserves to zero");
            assert_eq!(q.enqueued(), q.dequeued());
        }
    }

    #[test]
    fn in_queue_occupancy_is_conserved_under_random_traffic() {
        for seed in 0..4u64 {
            let mut rng = Rng(seed);
            let mut q = InQueue::new(3);
            for i in 0..10_000u64 {
                if rng.next() % 100 < 55 {
                    let prio = (rng.next() % 4) as u8;
                    let _ = q.push(prio, i);
                } else {
                    // Randomly-blocked destinations exercise the bypass
                    // path; a blocked head must not count as dequeued.
                    let coin = rng.next();
                    q.pop_ready(|item| !(item ^ coin).is_multiple_of(3));
                }
                assert_eq!(q.occupancy(), q.len() as u64, "seed {seed} step {i}");
            }
            while q.pop_ready(|_| true).is_some() {}
            assert_eq!(q.occupancy(), 0, "drained queue conserves to zero");
            assert_eq!(q.enqueued(), q.dequeued());
        }
    }
}
