//! The topology-independent adaptive router (paper §2.6.1).
//!
//! Based on the S-Connect design: virtual cut-through with a common
//! buffer pool, "hot potato" routing with increasing age and priority
//! when a message is non-optimally routed. Each Piranha processing node
//! has four channels (I/O nodes have two); the paper's links run at
//! 2 Gbit/s per wire for 4 GB/s of data per direction per channel.
//!
//! [`Network`] holds the topology, per-link bandwidth pipes, and
//! shortest-path next-hop tables, and walks a packet hop by hop at
//! injection time: at each node the preferred (shortest-path) output is
//! used unless its queue is backed up beyond a patience threshold, in
//! which case the packet deflects to the least-loaded alternative link
//! and its age/priority rise — old packets stop deflecting, which
//! guarantees delivery.

use piranha_kernel::{Counter, Histogram, Pipe};
use piranha_types::{Duration, NodeId, SimTime};

use crate::packet::Packet;

/// Maximum links per processing node (paper §2.6.1).
pub const MAX_CHANNELS: usize = 4;

/// A system topology: which nodes connect to which.
#[derive(Debug, Clone)]
pub struct Topology {
    /// adjacency[i] = neighbours of node i.
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    /// A topology from an explicit neighbour list.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency is asymmetric, contains self-loops or
    /// out-of-range nodes, or is not connected.
    pub fn custom(adj: Vec<Vec<NodeId>>) -> Self {
        let n = adj.len();
        for (i, nbrs) in adj.iter().enumerate() {
            for &m in nbrs {
                assert!((m.index()) < n, "neighbour {m} out of range");
                assert_ne!(m.index(), i, "self-loop at node {i}");
                assert!(
                    adj[m.index()].contains(&NodeId(i as u16)),
                    "asymmetric link {i} -> {m}"
                );
            }
        }
        let t = Topology { adj };
        assert!(t.is_connected(), "topology must be connected");
        t
    }

    /// A bidirectional ring of `n` nodes (2 channels per node).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least 2 nodes");
        let adj = (0..n)
            .map(|i| {
                let prev = NodeId(((i + n - 1) % n) as u16);
                let next = NodeId(((i + 1) % n) as u16);
                if prev == next {
                    vec![next] // n == 2
                } else {
                    vec![prev, next]
                }
            })
            .collect();
        Topology { adj }
    }

    /// A fully-connected topology (possible gluelessly up to 5 processing
    /// nodes with 4 channels each); used for the paper's 4-chip scaling
    /// study.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > MAX_CHANNELS + 1`.
    pub fn fully_connected(n: usize) -> Self {
        assert!(
            (2..=MAX_CHANNELS + 1).contains(&n),
            "full mesh limited by 4 channels/node"
        );
        let adj = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| NodeId(j as u16))
                    .collect()
            })
            .collect();
        Topology { adj }
    }

    /// A 2-D mesh of `w x h` nodes (≤ 4 channels per node, the paper's
    /// natural large-system topology).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh is a single node.
    pub fn mesh(w: usize, h: usize) -> Self {
        assert!(w * h >= 2, "mesh needs at least 2 nodes");
        let id = |x: usize, y: usize| NodeId((y * w + x) as u16);
        let adj = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                let mut nbrs = Vec::new();
                if x > 0 {
                    nbrs.push(id(x - 1, y));
                }
                if x + 1 < w {
                    nbrs.push(id(x + 1, y));
                }
                if y > 0 {
                    nbrs.push(id(x, y - 1));
                }
                if y + 1 < h {
                    nbrs.push(id(x, y + 1));
                }
                nbrs
            })
            .collect();
        Topology { adj }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Neighbours of `n`.
    pub fn neighbours(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.index()]
    }

    /// Maximum degree (must be ≤ 4 for processing nodes).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn is_connected(&self) -> bool {
        let n = self.adj.len();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for &m in &self.adj[i] {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m.index());
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// All-pairs shortest-path hop counts via BFS: `distances[src][dst]`
    /// = minimum hops from `src` to `dst` (0 on the diagonal). The
    /// topology is connected by construction, so every entry is finite.
    pub fn distances(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut table = vec![vec![0usize; n]; n];
        for src in 0..n {
            let dist = &mut table[src];
            let mut seen = vec![false; n];
            seen[src] = true;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        dist[v.index()] = dist[u] + 1;
                        queue.push_back(v.index());
                    }
                }
            }
        }
        table
    }

    /// All-pairs next-hop table via BFS: `table[src][dst]` = neighbour to
    /// take (self for src == dst).
    fn next_hops(&self) -> Vec<Vec<NodeId>> {
        let n = self.adj.len();
        let mut table = vec![vec![NodeId(0); n]; n];
        for dst in 0..n {
            // BFS backwards from dst.
            let mut dist = vec![usize::MAX; n];
            let mut next = vec![NodeId(dst as u16); n];
            let mut queue = std::collections::VecDeque::new();
            dist[dst] = 0;
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if dist[v.index()] == usize::MAX {
                        dist[v.index()] = dist[u] + 1;
                        // First hop from v toward dst is u.
                        next[v.index()] = NodeId(u as u16);
                        queue.push_back(v.index());
                    }
                }
            }
            for src in 0..n {
                table[src][dst] = next[src];
            }
        }
        table
    }
}

/// Interconnect timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Per-direction data bandwidth of one channel (4 GB/s in the paper).
    pub link_gb_s: u64,
    /// Fixed per-hop latency: router fall-through + wire flight.
    pub hop_latency: Duration,
    /// How long a packet waits for its preferred link before deflecting.
    pub deflect_patience: Duration,
    /// Age at which a packet stops deflecting and insists on the
    /// shortest path (guarantees delivery).
    pub max_deflect_age: u32,
}

impl NetworkConfig {
    /// Paper-derived defaults: 4 GB/s links, ~16 ns per hop.
    pub fn paper_default() -> Self {
        NetworkConfig {
            link_gb_s: 4,
            hop_latency: Duration::from_ns(16),
            deflect_patience: Duration::from_ns(30),
            max_deflect_age: 8,
        }
    }

    /// The minimum latency any cross-node delivery can have: one
    /// shortest-packet wire serialization plus one hop of fall-through —
    /// the first hop of [`Network::send`] with an idle link, which every
    /// routed packet pays at least once. This is the conservative
    /// lookahead bound (per-link quantum) for parallel-in-space
    /// execution: no event a node emits at `t` can be observable at
    /// another node before `t + min_delivery_latency()`. 20 ns with the
    /// paper defaults (16 B at 4 GB/s = 4 ns, + 16 ns hop).
    pub fn min_delivery_latency(&self) -> Duration {
        Pipe::from_gb_per_s(self.link_gb_s).transfer_time(crate::PacketKind::Short.bytes())
            + self.hop_latency
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The inter-node network: topology + link occupancy + routing.
///
/// # Examples
///
/// ```
/// use piranha_net::{Network, NetworkConfig, Packet, PacketKind, Topology};
/// use piranha_types::{Lane, NodeId, SimTime};
///
/// let mut net: Network<&str> =
///     Network::new(Topology::ring(4), NetworkConfig::paper_default());
/// let pkt = Packet::new(NodeId(0), NodeId(2), Lane::Low, PacketKind::Short, "hello");
/// let (arrive, delivered) = net.send(SimTime::ZERO, pkt);
/// assert_eq!(delivered.payload, "hello");
/// assert_eq!(delivered.age, 2, "two ring hops");
/// assert!(arrive.as_ns() >= 32);
/// ```
#[derive(Debug)]
pub struct Network<P> {
    topo: Topology,
    cfg: NetworkConfig,
    next_hop: Vec<Vec<NodeId>>,
    /// links[src][k] = pipe for the k-th neighbour of src.
    links: Vec<Vec<Pipe>>,
    hops: Histogram,
    deflections: Counter,
    delivered: Counter,
    retransmits: Counter,
    /// Every hop-by-hop walk ever performed (first transmissions plus
    /// retransmissions). The credit-conservation invariant is
    /// `delivered + retransmits == walks`: a corrupted or dropped flit
    /// must be re-walked (returning its link credits to the pool via a
    /// fresh acquire), never half-accounted.
    walks: u64,
    _marker: std::marker::PhantomData<P>,
}

impl<P> Network<P> {
    /// Build a network over `topo`.
    pub fn new(topo: Topology, cfg: NetworkConfig) -> Self {
        let next_hop = topo.next_hops();
        let links = topo
            .adj
            .iter()
            .map(|nbrs| {
                nbrs.iter()
                    .map(|_| Pipe::from_gb_per_s(cfg.link_gb_s))
                    .collect()
            })
            .collect();
        Network {
            topo,
            cfg,
            next_hop,
            links,
            hops: Histogram::new(),
            deflections: Counter::new(),
            delivered: Counter::new(),
            retransmits: Counter::new(),
            walks: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// One hop-by-hop traversal (shared by first transmissions and
    /// retransmissions), charging link bandwidth at every hop.
    fn walk(&mut self, now: SimTime, mut pkt: Packet<P>) -> (SimTime, Packet<P>) {
        assert!(pkt.src.index() < self.topo.nodes(), "bad src {}", pkt.src);
        assert!(pkt.dst.index() < self.topo.nodes(), "bad dst {}", pkt.dst);
        self.walks += 1;
        let mut at = pkt.src;
        let mut t = now;
        let bytes = pkt.kind.bytes();
        while at != pkt.dst {
            let preferred = self.next_hop[at.index()][pkt.dst.index()];
            let pref_k = self
                .topo
                .neighbours(at)
                .iter()
                .position(|&n| n == preferred)
                .expect("next-hop table consistent with adjacency");
            let pref_free = self.links[at.index()][pref_k].busy_until();
            let mut chosen = pref_k;
            let mut deflected = false;
            if pref_free > t + self.cfg.deflect_patience && pkt.age < self.cfg.max_deflect_age {
                // Hot potato: take the least-loaded other link if one is
                // meaningfully freer.
                if let Some((k, _)) = self.links[at.index()]
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != pref_k)
                    .min_by_key(|(_, p)| p.busy_until())
                {
                    if self.links[at.index()][k].busy_until() + self.cfg.deflect_patience
                        < pref_free
                    {
                        chosen = k;
                        deflected = true;
                        self.deflections.inc();
                    }
                }
            }
            let next = self.topo.neighbours(at)[chosen];
            let sent = self.links[at.index()][chosen].acquire(t, bytes);
            t = sent + self.cfg.hop_latency;
            pkt.hop(deflected);
            at = next;
        }
        (t, pkt)
    }

    /// The credit-conservation audit: every walk ended as exactly one
    /// delivery or one retransmission — a faulted flit cannot strand
    /// its accounting between the two.
    fn assert_credits_conserved(&self) {
        debug_assert_eq!(
            self.delivered.get() + self.retransmits.get(),
            self.walks,
            "router credit leak: walks neither delivered nor retransmitted"
        );
    }

    /// Inject `pkt` at its source at time `now`; walks it hop by hop
    /// (cut-through, with hot-potato deflection under contention) and
    /// returns its delivery time at the destination.
    ///
    /// # Panics
    ///
    /// Panics if source or destination are out of range.
    pub fn send(&mut self, now: SimTime, pkt: Packet<P>) -> (SimTime, Packet<P>) {
        let (t, pkt) = self.walk(now, pkt);
        self.delivered.inc();
        self.hops.record(Duration::from_ns(pkt.age as u64));
        self.assert_credits_conserved();
        (t, pkt)
    }

    /// Re-walk a packet whose previous transmission was lost or failed
    /// its CRC: charges full link bandwidth again (the wire time of the
    /// bad copy is already sunk) and counts as a retransmission rather
    /// than a delivery.
    ///
    /// # Panics
    ///
    /// Panics if source or destination are out of range.
    pub fn resend(&mut self, now: SimTime, pkt: Packet<P>) -> (SimTime, Packet<P>) {
        let (t, pkt) = self.walk(now, pkt);
        self.retransmits.inc();
        self.assert_credits_conserved();
        (t, pkt)
    }

    /// Number of packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Number of retransmissions (fault-recovery re-walks).
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Number of deflections (non-optimal routing decisions).
    pub fn deflections(&self) -> u64 {
        self.deflections.get()
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean_ns()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The per-pair conservative delivery bounds:
    /// `bounds[src][dst] = shortest_hops(src, dst) × min_delivery_latency`
    /// (zero on the diagonal). This is a true lower bound on any
    /// delivery the network can perform: [`Network::send`] charges at
    /// least one short-packet serialization plus one hop fall-through
    /// per hop taken, longer packets serialize slower, and hot-potato
    /// deflection only ever *lengthens* the path — a deflected packet
    /// still pays every hop it takes, and it can never take fewer hops
    /// than the BFS distance. On a fully connected topology (the
    /// paper's glueless 4-chip configuration) every off-diagonal entry
    /// degenerates to the global quantum
    /// [`NetworkConfig::min_delivery_latency`].
    pub fn pair_bounds(&self) -> Vec<Vec<Duration>> {
        let per_hop = self.cfg.min_delivery_latency();
        self.topo
            .distances()
            .into_iter()
            .map(|row| row.into_iter().map(|h| per_hop.times(h as u64)).collect())
            .collect()
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use piranha_types::Lane;

    fn pkt(src: u16, dst: u16) -> Packet<u32> {
        Packet::new(NodeId(src), NodeId(dst), Lane::Low, PacketKind::Short, 0)
    }

    #[test]
    fn ring_topology_shape() {
        let t = Topology::ring(6);
        assert_eq!(t.nodes(), 6);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.neighbours(NodeId(0)), &[NodeId(5), NodeId(1)]);
    }

    #[test]
    fn two_node_ring_has_single_link() {
        let t = Topology::ring(2);
        assert_eq!(t.neighbours(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn mesh_degrees_within_channel_budget() {
        let t = Topology::mesh(4, 4);
        assert_eq!(t.nodes(), 16);
        assert!(t.max_degree() <= MAX_CHANNELS);
    }

    #[test]
    fn fully_connected_limited_to_five() {
        assert_eq!(Topology::fully_connected(5).max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "4 channels")]
    fn oversized_full_mesh_panics() {
        Topology::fully_connected(6);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_custom_rejected() {
        Topology::custom(vec![vec![NodeId(1)], vec![]]);
    }

    #[test]
    fn shortest_paths_on_ring() {
        let mut net: Network<u32> = Network::new(Topology::ring(8), NetworkConfig::paper_default());
        let (_, p) = net.send(SimTime::ZERO, pkt(0, 3));
        assert_eq!(p.age, 3);
        let (_, p) = net.send(SimTime::ZERO, pkt(0, 6));
        assert_eq!(p.age, 2, "goes the short way round");
    }

    #[test]
    fn direct_link_latency() {
        let cfg = NetworkConfig::paper_default();
        let mut net: Network<u32> = Network::new(Topology::fully_connected(4), cfg);
        let (t, p) = net.send(SimTime::ZERO, pkt(0, 3));
        assert_eq!(p.age, 1);
        // 16 bytes at 4 GB/s = 4ns + 16ns hop = 20ns.
        assert_eq!(t.as_ns(), 20);
    }

    #[test]
    fn min_delivery_latency_is_the_paper_quantum() {
        // The conservative lookahead bound equals the best-case direct
        // delivery above: short serialization (4 ns) + one hop (16 ns).
        let cfg = NetworkConfig::paper_default();
        assert_eq!(cfg.min_delivery_latency(), Duration::from_ns(20));
        // And it really is a lower bound for an idle direct link.
        let mut net: Network<u32> = Network::new(Topology::fully_connected(4), cfg);
        let (t, _) = net.send(SimTime::ZERO, pkt(0, 1));
        assert!(t.since(SimTime::ZERO) >= cfg.min_delivery_latency());
    }

    #[test]
    fn long_packets_cost_more_wire_time() {
        let mut net: Network<u32> =
            Network::new(Topology::fully_connected(2), NetworkConfig::paper_default());
        let long = Packet::new(NodeId(0), NodeId(1), Lane::High, PacketKind::Long, 0);
        let (t, _) = net.send(SimTime::ZERO, long);
        assert_eq!(t.as_ns(), 36, "80 bytes at 4 GB/s + 16ns hop");
    }

    #[test]
    fn contention_deflects_but_delivers() {
        let mut net: Network<u32> =
            Network::new(Topology::mesh(3, 3), NetworkConfig::paper_default());
        // Saturate node 0's preferred link toward node 2 with many
        // packets injected at the same instant.
        let mut deliveries = 0;
        for _ in 0..200 {
            let long = Packet::new(NodeId(0), NodeId(2), Lane::High, PacketKind::Long, 0);
            let (_, p) = net.send(SimTime::ZERO, long);
            assert_eq!(p.dst, NodeId(2));
            deliveries += 1;
        }
        assert_eq!(net.delivered(), deliveries);
        assert!(
            net.deflections() > 0,
            "saturation must trigger hot-potato routing"
        );
    }

    #[test]
    fn resend_counts_retransmits_not_deliveries() {
        let mut net: Network<u32> = Network::new(Topology::ring(4), NetworkConfig::paper_default());
        let (t1, _) = net.send(SimTime::ZERO, pkt(0, 2));
        // Two failed attempts re-walk the same route, then success.
        let (t2, _) = net.resend(t1, pkt(0, 2));
        let (t3, p) = net.resend(t2, pkt(0, 2));
        assert_eq!(p.dst, NodeId(2));
        assert_eq!(net.delivered(), 1);
        assert_eq!(net.retransmits(), 2);
        assert!(t3 > t2 && t2 > t1, "each re-walk charges real wire time");
    }

    #[test]
    fn interleaved_send_resend_conserves_credits() {
        // The debug assertion inside send/resend is the real check; this
        // exercises it under a mixed workload.
        let mut net: Network<u32> =
            Network::new(Topology::mesh(3, 2), NetworkConfig::paper_default());
        let mut t = SimTime::ZERO;
        for i in 0..200u16 {
            let (s, d) = (i % 6, (i * 5 + 1) % 6);
            if s == d {
                continue;
            }
            let (arrive, _) = net.send(t, pkt(s, d));
            if i % 3 == 0 {
                let (again, _) = net.resend(arrive, pkt(s, d));
                t = again;
            } else {
                t = arrive;
            }
        }
        assert!(net.retransmits() > 0 && net.delivered() > net.retransmits());
    }

    #[test]
    fn distances_are_symmetric_shortest_hops() {
        let t = Topology::ring(6);
        let d = t.distances();
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, hops) in row.iter().enumerate() {
                assert_eq!(*hops, d[j][i], "ring distances are symmetric");
            }
        }
        assert_eq!(d[0][3], 3, "opposite side of a 6-ring");
        assert_eq!(d[0][5], 1, "wraps the short way");
    }

    #[test]
    fn pair_bounds_degenerate_to_the_global_quantum_on_table1_config() {
        // The paper's glueless 4-chip configuration is fully connected:
        // every pair is one hop, so the whole lookahead matrix collapses
        // to the single 20 ns quantum the fixed-quantum engine used.
        let net: Network<u32> =
            Network::new(Topology::fully_connected(4), NetworkConfig::paper_default());
        let bounds = net.pair_bounds();
        let q = net.config().min_delivery_latency();
        assert_eq!(q, Duration::from_ns(20));
        for (s, row) in bounds.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if s == d {
                    assert_eq!(b, Duration::ZERO);
                } else {
                    assert_eq!(b, q, "{s}->{d} is a single hop on a full mesh");
                }
            }
        }
    }

    #[test]
    fn pair_bounds_scale_with_topology_distance() {
        let net: Network<u32> = Network::new(Topology::ring(8), NetworkConfig::paper_default());
        let bounds = net.pair_bounds();
        let q = net.config().min_delivery_latency();
        assert_eq!(bounds[0][1], q);
        assert_eq!(bounds[0][4], q.times(4), "4 hops across an 8-ring");
    }

    mod bound_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_topology(shape: usize, a: usize, b: usize) -> Topology {
            match shape {
                0 => Topology::ring(a + b),           // 4..10 nodes
                1 => Topology::fully_connected(a),    // 2..=5 nodes
                _ => Topology::mesh(a - 1, b.max(2)), // (1..5) x (2..5)
            }
        }

        proptest! {
            /// Every delivery the network performs — including under
            /// heavy contention, where hot-potato deflection reroutes
            /// packets along longer paths — takes at least the pair's
            /// computed bound. This is the property the parallel
            /// engine's per-pair `debug_assert` relies on.
            #[test]
            fn every_delivery_respects_its_pair_bound(
                shape in 0usize..3,
                a in 2usize..6,
                b in 2usize..5,
                sends in proptest::collection::vec(
                    (0usize..64, 0usize..64, 0u64..500, proptest::bool::ANY),
                    1..120,
                ),
            ) {
                let topo = arb_topology(shape, a, b);
                let mut net: Network<u32> = Network::new(topo, NetworkConfig::paper_default());
                let bounds = net.pair_bounds();
                let n = bounds.len();
                for (s, d, at, long) in sends {
                    let (s, d) = (s % n, d % n);
                    if s == d {
                        continue;
                    }
                    let kind = if long { PacketKind::Long } else { PacketKind::Short };
                    let t = SimTime::from_ns(at);
                    let p = Packet::new(NodeId(s as u16), NodeId(d as u16), Lane::Low, kind, 0);
                    let (arrive, _) = net.send(t, p);
                    prop_assert!(
                        arrive.since(t) >= bounds[s][d],
                        "{s}->{d} delivered in {:?}, bound {:?}",
                        arrive.since(t),
                        bounds[s][d]
                    );
                }
            }
        }
    }

    #[test]
    fn every_pair_reachable_on_mesh() {
        let mut net: Network<u32> =
            Network::new(Topology::mesh(4, 2), NetworkConfig::paper_default());
        for s in 0..8u16 {
            for d in 0..8u16 {
                if s == d {
                    continue;
                }
                let (t, p) = net.send(SimTime::ZERO, pkt(s, d));
                assert_eq!(p.dst, NodeId(d));
                assert!(t > SimTime::ZERO);
            }
        }
        assert!(net.mean_hops() >= 1.0);
    }
}
