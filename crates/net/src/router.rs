//! The topology-independent adaptive router (paper §2.6.1).
//!
//! Based on the S-Connect design: virtual cut-through with a common
//! buffer pool, "hot potato" routing with increasing age and priority
//! when a message is non-optimally routed. Each Piranha processing node
//! has four channels (I/O nodes have two); the paper's links run at
//! 2 Gbit/s per wire for 4 GB/s of data per direction per channel.
//!
//! [`Network`] holds the topology, per-link bandwidth pipes, and
//! shortest-path next-hop tables, and walks a packet hop by hop at
//! injection time. Two orthogonal policies govern the walk:
//!
//! * [`RoutePolicy`] picks the output port: the default adaptive
//!   hot-potato scheme uses the preferred (shortest-path) output unless
//!   its queue is backed up beyond a patience threshold, in which case
//!   the packet deflects to the least-loaded alternative link and its
//!   age/priority rise — old packets stop deflecting, which guarantees
//!   delivery. The deterministic dimension-order alternative never
//!   deflects.
//! * [`QueueDiscipline`] decides what happens when the chosen output
//!   port's backlog exceeds its buffer capacity: drop-tail (drop, the
//!   sender times out and re-walks), lossy-NACK (drop, an explicit NACK
//!   returns to the sender, which re-walks after exponential backoff —
//!   the link-level CRC/retransmit machinery of [`crate::recovery`]),
//!   or PFC-style credit pause (never drop; the packet stalls until the
//!   port drains below capacity). The default drop-tail capacity is
//!   effectively unbounded, reproducing the paper's lossless fabric
//!   bit-for-bit.
//!
//! Every discipline only ever *adds* latency over the ideal walk, and
//! every policy takes at least the BFS hop count, so the conservative
//! per-pair bounds of [`Network::pair_bounds`] hold under all of them.

use piranha_kernel::{Counter, Histogram, Pipe};
use piranha_types::{Duration, NodeId, SimTime};

use crate::packet::Packet;
use crate::topology::Topology;

/// Maximum links per processing node (paper §2.6.1).
pub const MAX_CHANNELS: usize = 4;

/// How the router picks an output port at each hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// The paper's S-Connect adaptive scheme: shortest path unless the
    /// preferred port is backed up past `deflect_patience`, then
    /// deflect to the least-loaded alternative (age caps deflection).
    AdaptiveHotPotato,
    /// Deterministic dimension-order (X then Y) routing on grid
    /// topologies, falling back to the BFS next-hop table elsewhere;
    /// never deflects. Path length always equals the BFS distance.
    DimensionOrder,
}

impl RoutePolicy {
    /// The flag spelling (stable, lowercase; used in report rows).
    pub fn label(self) -> &'static str {
        match self {
            RoutePolicy::AdaptiveHotPotato => "hotpotato",
            RoutePolicy::DimensionOrder => "dimorder",
        }
    }
}

/// What a switch does when the chosen output port's backlog exceeds its
/// buffer capacity. Capacity is expressed as backlog *time* on the
/// port's wire (bytes queued ÷ link bandwidth): a port whose pipe is
/// busy more than `capacity` past the packet's arrival refuses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Drop the packet silently; the sender's loss timer expires and it
    /// re-walks the packet from the source (counted as a retransmit).
    DropTail {
        /// Maximum tolerated backlog at any output port.
        capacity: Duration,
    },
    /// Drop the packet and return an explicit NACK to the sender over
    /// the hops already taken; the sender re-walks after exponential
    /// backoff — the same CRC/NACK/retransmit machinery the link-fault
    /// recovery path uses ([`Network::resend`]).
    LossyNack {
        /// Maximum tolerated backlog at any output port.
        capacity: Duration,
    },
    /// Credit-based (PFC-style) pause: the packet is never dropped; it
    /// stalls at the switch until the port drains back below capacity.
    Pfc {
        /// Backlog at which the port asserts back-pressure.
        capacity: Duration,
    },
}

/// The default bounded buffer of the congested disciplines: eight
/// long-packet serializations at paper bandwidth (8 × 20 ns).
pub const CONGESTED_CAPACITY_NS: u64 = 160;

impl QueueDiscipline {
    /// The default discipline: drop-tail with an unbounded buffer —
    /// nothing is ever dropped or paused, matching the paper's lossless
    /// fabric (and the golden runs) exactly.
    pub fn unbounded() -> Self {
        // ~13 simulated days of backlog: unreachable by construction
        // (total wire time of a run is orders of magnitude smaller).
        QueueDiscipline::DropTail {
            capacity: Duration::from_ns(1 << 50),
        }
    }

    /// Parse a `--queue=` flag value into a *bounded* discipline with
    /// the [`CONGESTED_CAPACITY_NS`] buffer.
    pub fn parse(s: &str) -> Option<Self> {
        let capacity = Duration::from_ns(CONGESTED_CAPACITY_NS);
        match s.trim().to_ascii_lowercase().as_str() {
            "droptail" | "drop-tail" => Some(QueueDiscipline::DropTail { capacity }),
            "lossy" | "lossynack" | "lossy-nack" => Some(QueueDiscipline::LossyNack { capacity }),
            "pfc" | "pause" => Some(QueueDiscipline::Pfc { capacity }),
            _ => None,
        }
    }

    /// The flag spelling (stable, lowercase; used in report rows).
    pub fn label(self) -> &'static str {
        match self {
            QueueDiscipline::DropTail { .. } => "droptail",
            QueueDiscipline::LossyNack { .. } => "lossy",
            QueueDiscipline::Pfc { .. } => "pfc",
        }
    }

    /// The port buffer capacity.
    pub fn capacity(self) -> Duration {
        match self {
            QueueDiscipline::DropTail { capacity }
            | QueueDiscipline::LossyNack { capacity }
            | QueueDiscipline::Pfc { capacity } => capacity,
        }
    }

    /// Same discipline with a different port capacity.
    pub fn with_capacity(self, capacity: Duration) -> Self {
        match self {
            QueueDiscipline::DropTail { .. } => QueueDiscipline::DropTail { capacity },
            QueueDiscipline::LossyNack { .. } => QueueDiscipline::LossyNack { capacity },
            QueueDiscipline::Pfc { .. } => QueueDiscipline::Pfc { capacity },
        }
    }
}

impl Default for QueueDiscipline {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Interconnect timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Per-direction data bandwidth of one channel (4 GB/s in the paper).
    pub link_gb_s: u64,
    /// Fixed per-hop latency: router fall-through + wire flight.
    pub hop_latency: Duration,
    /// How long a packet waits for its preferred link before deflecting.
    pub deflect_patience: Duration,
    /// Age at which a packet stops deflecting and insists on the
    /// shortest path (guarantees delivery).
    pub max_deflect_age: u32,
    /// Output-port selection policy.
    pub route: RoutePolicy,
    /// Output-port overflow behaviour.
    pub queue: QueueDiscipline,
}

impl NetworkConfig {
    /// Paper-derived defaults: 4 GB/s links, ~16 ns per hop, adaptive
    /// hot-potato routing over lossless (unbounded drop-tail) ports.
    pub fn paper_default() -> Self {
        NetworkConfig {
            link_gb_s: 4,
            hop_latency: Duration::from_ns(16),
            deflect_patience: Duration::from_ns(30),
            max_deflect_age: 8,
            route: RoutePolicy::AdaptiveHotPotato,
            queue: QueueDiscipline::unbounded(),
        }
    }

    /// The minimum latency any cross-node delivery can have: one
    /// shortest-packet wire serialization plus one hop of fall-through —
    /// the first hop of [`Network::send`] with an idle link, which every
    /// routed packet pays at least once. This is the conservative
    /// lookahead bound (per-link quantum) for parallel-in-space
    /// execution: no event a node emits at `t` can be observable at
    /// another node before `t + min_delivery_latency()`. 20 ns with the
    /// paper defaults (16 B at 4 GB/s = 4 ns, + 16 ns hop).
    pub fn min_delivery_latency(&self) -> Duration {
        Pipe::from_gb_per_s(self.link_gb_s).transfer_time(crate::PacketKind::Short.bytes())
            + self.hop_latency
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A snapshot of the fabric's occupancy and loss counters, for probe
/// export and the `fig_scale` congestion sweeps.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Route walks attempted (`delivered + retransmits` — the packet
    /// ledger the scale sweep asserts on every row).
    pub walks: u64,
    /// Re-walks: link-fault retransmissions *and* drop recoveries.
    pub retransmits: u64,
    /// Hot-potato deflections, fabric-wide.
    pub deflections: u64,
    /// Packets refused by a full output port (drop-tail + lossy-NACK).
    pub drops: u64,
    /// PFC pause events (a packet stalled at a full port).
    pub pauses: u64,
    /// Total time packets spent stalled in PFC pauses.
    pub pause_time: Duration,
    /// Mean hops per delivered packet.
    pub mean_hops: f64,
    /// Number of unidirectional links in the fabric.
    pub links: usize,
    /// Total wire (serialization) time charged across all links.
    pub link_busy: Duration,
    /// Wire time of the single busiest link.
    pub max_link_busy: Duration,
    /// Deflections charged to each node's router.
    pub node_deflections: Vec<u64>,
}

impl FabricStats {
    /// Mean link utilization over `elapsed` simulated time (0 when the
    /// fabric has no links or no time has passed).
    pub fn occupancy(&self, elapsed: Duration) -> f64 {
        if self.links == 0 || elapsed == Duration::ZERO {
            return 0.0;
        }
        self.link_busy.as_ps() as f64 / (self.links as f64 * elapsed.as_ps() as f64)
    }
}

/// The inter-node network: topology + link occupancy + routing.
///
/// # Examples
///
/// ```
/// use piranha_net::{Network, NetworkConfig, Packet, PacketKind, Topology};
/// use piranha_types::{Lane, NodeId, SimTime};
///
/// let mut net: Network<&str> =
///     Network::new(Topology::ring(4), NetworkConfig::paper_default());
/// let pkt = Packet::new(NodeId(0), NodeId(2), Lane::Low, PacketKind::Short, "hello");
/// let (arrive, delivered) = net.send(SimTime::ZERO, pkt);
/// assert_eq!(delivered.payload, "hello");
/// assert_eq!(delivered.age, 2, "two ring hops");
/// assert!(arrive.as_ns() >= 32);
/// ```
#[derive(Debug)]
pub struct Network<P> {
    topo: Topology,
    cfg: NetworkConfig,
    next_hop: Vec<Vec<NodeId>>,
    /// links[src][k] = pipe for the k-th neighbour of src.
    links: Vec<Vec<Pipe>>,
    hops: Histogram,
    deflections: Counter,
    node_deflections: Vec<u64>,
    delivered: Counter,
    retransmits: Counter,
    drops: Counter,
    pauses: Counter,
    pause_time: Duration,
    /// Every hop-by-hop walk ever performed (first transmissions plus
    /// retransmissions). The credit-conservation invariant is
    /// `delivered + retransmits == walks`: a corrupted or dropped flit
    /// must be re-walked (returning its link credits to the pool via a
    /// fresh acquire), never half-accounted.
    walks: u64,
    _marker: std::marker::PhantomData<P>,
}

/// One attempt ended at a full port: when, and after how many hops.
struct PortFull {
    t: SimTime,
    hops_taken: u32,
}

impl<P> Network<P> {
    /// Build a network over `topo`.
    pub fn new(topo: Topology, cfg: NetworkConfig) -> Self {
        let next_hop = topo.next_hops();
        let links: Vec<Vec<Pipe>> = topo
            .adj
            .iter()
            .map(|nbrs| {
                nbrs.iter()
                    .map(|_| Pipe::from_gb_per_s(cfg.link_gb_s))
                    .collect()
            })
            .collect();
        let nodes = topo.nodes();
        Network {
            topo,
            cfg,
            next_hop,
            links,
            hops: Histogram::new(),
            deflections: Counter::new(),
            node_deflections: vec![0; nodes],
            delivered: Counter::new(),
            retransmits: Counter::new(),
            drops: Counter::new(),
            pauses: Counter::new(),
            pause_time: Duration::ZERO,
            walks: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// One hop-by-hop traversal attempt, charging link bandwidth at
    /// every hop taken; ends either at the destination or at the first
    /// output port whose discipline refuses the packet.
    fn attempt(&mut self, now: SimTime, pkt: &mut Packet<P>) -> Result<SimTime, PortFull> {
        let mut at = pkt.src;
        let mut t = now;
        let bytes = pkt.kind.bytes();
        let mut hops_taken = 0u32;
        while at != pkt.dst {
            let preferred = match self.cfg.route {
                RoutePolicy::AdaptiveHotPotato => self.next_hop[at.index()][pkt.dst.index()],
                RoutePolicy::DimensionOrder => self
                    .topo
                    .dimension_next(at, pkt.dst)
                    .unwrap_or(self.next_hop[at.index()][pkt.dst.index()]),
            };
            let pref_k = self
                .topo
                .neighbours(at)
                .iter()
                .position(|&n| n == preferred)
                .expect("next-hop table consistent with adjacency");
            let pref_free = self.links[at.index()][pref_k].busy_until();
            let mut chosen = pref_k;
            let mut deflected = false;
            if self.cfg.route == RoutePolicy::AdaptiveHotPotato
                && pref_free > t + self.cfg.deflect_patience
                && pkt.age < self.cfg.max_deflect_age
            {
                // Hot potato: take the least-loaded other link if one is
                // meaningfully freer.
                if let Some((k, _)) = self.links[at.index()]
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != pref_k)
                    .min_by_key(|(_, p)| p.busy_until())
                {
                    if self.links[at.index()][k].busy_until() + self.cfg.deflect_patience
                        < pref_free
                    {
                        chosen = k;
                        deflected = true;
                        self.deflections.inc();
                        self.node_deflections[at.index()] += 1;
                    }
                }
            }
            // Queue-discipline admission at the chosen output port.
            let free = self.links[at.index()][chosen].busy_until();
            let backlog = free.since(t);
            match self.cfg.queue {
                QueueDiscipline::DropTail { capacity }
                | QueueDiscipline::LossyNack { capacity }
                    if backlog > capacity =>
                {
                    return Err(PortFull { t, hops_taken });
                }
                QueueDiscipline::Pfc { capacity } if backlog > capacity => {
                    // Back-pressure: stall here until the port drains to
                    // its credit limit, then transmit normally.
                    let pause = backlog - capacity;
                    self.pauses.inc();
                    self.pause_time += pause;
                    t += pause;
                }
                _ => {}
            }
            let next = self.topo.neighbours(at)[chosen];
            let sent = self.links[at.index()][chosen].acquire(t, bytes);
            t = sent + self.cfg.hop_latency;
            pkt.hop(deflected);
            hops_taken += 1;
            at = next;
        }
        Ok(t)
    }

    /// The recovery latency between a refused attempt and the sender's
    /// re-walk. Strictly positive and growing with consecutive drops,
    /// so retries always make forward progress in time — the refused
    /// port's backlog is measured against a later `t`, and the links
    /// keep draining, which guarantees eventual delivery.
    fn recovery_delay(&self, hops_taken: u32, tries: u32) -> Duration {
        let backoff = 1u64 << tries.min(10) as u64;
        match self.cfg.queue {
            // Silent drop: the sender's end-to-end loss timer (a few
            // minimum round trips), doubling per consecutive loss.
            QueueDiscipline::DropTail { .. } => {
                self.cfg.min_delivery_latency().times(4).times(backoff)
            }
            // Explicit NACK: wire time for the NACK to walk back from
            // the refusing switch, plus exponential backoff.
            QueueDiscipline::LossyNack { .. } => {
                self.cfg.hop_latency.times(hops_taken.max(1) as u64)
                    + self.cfg.deflect_patience.times(backoff)
            }
            // PFC never refuses an attempt.
            QueueDiscipline::Pfc { .. } => self.cfg.hop_latency,
        }
    }

    /// One logical transmission (shared by first transmissions and
    /// fault-path retransmissions): walk attempts until one delivers,
    /// accounting each refused attempt as a drop plus a retransmission.
    fn walk(&mut self, now: SimTime, mut pkt: Packet<P>) -> (SimTime, Packet<P>) {
        assert!(pkt.src.index() < self.topo.nodes(), "bad src {}", pkt.src);
        assert!(pkt.dst.index() < self.topo.nodes(), "bad dst {}", pkt.dst);
        let mut t = now;
        let mut tries = 0u32;
        loop {
            self.walks += 1;
            match self.attempt(t, &mut pkt) {
                Ok(done) => return (done, pkt),
                Err(full) => {
                    tries += 1;
                    self.drops.inc();
                    // The refused attempt is accounted as a
                    // retransmission: its credits are returned and the
                    // re-walk acquires fresh ones.
                    self.retransmits.inc();
                    t = full.t + self.recovery_delay(full.hops_taken, tries);
                }
            }
        }
    }

    /// The credit-conservation audit: every walk ended as exactly one
    /// delivery or one retransmission — a faulted flit cannot strand
    /// its accounting between the two.
    fn assert_credits_conserved(&self) {
        debug_assert_eq!(
            self.delivered.get() + self.retransmits.get(),
            self.walks,
            "router credit leak: walks neither delivered nor retransmitted"
        );
    }

    /// Inject `pkt` at its source at time `now`; walks it hop by hop
    /// (cut-through, with hot-potato deflection under contention) and
    /// returns its delivery time at the destination.
    ///
    /// # Panics
    ///
    /// Panics if source or destination are out of range.
    pub fn send(&mut self, now: SimTime, pkt: Packet<P>) -> (SimTime, Packet<P>) {
        let (t, pkt) = self.walk(now, pkt);
        self.delivered.inc();
        self.hops.record(Duration::from_ns(pkt.age as u64));
        self.assert_credits_conserved();
        (t, pkt)
    }

    /// Re-walk a packet whose previous transmission was lost or failed
    /// its CRC: charges full link bandwidth again (the wire time of the
    /// bad copy is already sunk) and counts as a retransmission rather
    /// than a delivery.
    ///
    /// # Panics
    ///
    /// Panics if source or destination are out of range.
    pub fn resend(&mut self, now: SimTime, pkt: Packet<P>) -> (SimTime, Packet<P>) {
        let (t, pkt) = self.walk(now, pkt);
        self.retransmits.inc();
        self.assert_credits_conserved();
        (t, pkt)
    }

    /// Number of packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Number of retransmissions: fault-recovery re-walks plus
    /// drop-recovery re-walks.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Number of deflections (non-optimal routing decisions).
    pub fn deflections(&self) -> u64 {
        self.deflections.get()
    }

    /// Deflections charged to each node's router (indexed by node).
    pub fn node_deflections(&self) -> &[u64] {
        &self.node_deflections
    }

    /// Packets refused by a full output port.
    pub fn drops(&self) -> u64 {
        self.drops.get()
    }

    /// PFC pause events.
    pub fn pauses(&self) -> u64 {
        self.pauses.get()
    }

    /// Total time packets spent stalled in PFC pauses.
    pub fn pause_time(&self) -> Duration {
        self.pause_time
    }

    /// Total hop-by-hop walks performed (deliveries + retransmissions;
    /// exposed for the conservation tests).
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean_ns()
    }

    /// A snapshot of every occupancy/loss counter, including per-link
    /// wire-time aggregates recomputed from the pipes.
    pub fn stats(&self) -> FabricStats {
        let mut links = 0usize;
        let mut busy = Duration::ZERO;
        let mut max_busy = Duration::ZERO;
        for port in self.links.iter().flatten() {
            links += 1;
            let b = port.busy_time();
            busy += b;
            max_busy = max_busy.max(b);
        }
        FabricStats {
            delivered: self.delivered.get(),
            walks: self.walks,
            retransmits: self.retransmits.get(),
            deflections: self.deflections.get(),
            drops: self.drops.get(),
            pauses: self.pauses.get(),
            pause_time: self.pause_time,
            mean_hops: self.hops.mean_ns(),
            links,
            link_busy: busy,
            max_link_busy: max_busy,
            node_deflections: self.node_deflections.clone(),
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The per-pair conservative delivery bounds:
    /// `bounds[src][dst] = shortest_hops(src, dst) × min_delivery_latency`
    /// (zero on the diagonal). This is a true lower bound on any
    /// delivery the network can perform: [`Network::send`] charges at
    /// least one short-packet serialization plus one hop fall-through
    /// per hop taken, longer packets serialize slower, hot-potato
    /// deflection only ever *lengthens* the path (a deflected packet
    /// still pays every hop it takes, and it can never take fewer hops
    /// than the BFS distance), dimension-order paths are exactly the
    /// BFS distance, and every queue discipline only *adds* waiting
    /// (pause stalls) or whole extra walks (drop recovery). On a fully
    /// connected topology (the paper's glueless 4-chip configuration)
    /// every off-diagonal entry degenerates to the global quantum
    /// [`NetworkConfig::min_delivery_latency`].
    pub fn pair_bounds(&self) -> Vec<Vec<Duration>> {
        let per_hop = self.cfg.min_delivery_latency();
        self.topo
            .distances()
            .into_iter()
            .map(|row| row.into_iter().map(|h| per_hop.times(h as u64)).collect())
            .collect()
    }

    /// [`Network::pair_bounds`] restricted to the host nodes (the
    /// machine's lanes): the submatrix the system layer feeds to its
    /// lookahead. Phantom switch nodes never source or sink events, so
    /// their rows/columns are irrelevant to the conservative engine —
    /// and the bounds between hosts are computed on the *full* graph,
    /// so routing through switches is already accounted for. At least a
    /// 2×2 matrix is returned (the engine's lookahead needs two
    /// parties), which is always available: every builder produces ≥ 2
    /// nodes.
    pub fn host_pair_bounds(&self) -> Vec<Vec<Duration>> {
        let n = self.topo.hosts().max(2).min(self.topo.nodes());
        let mut bounds = self.pair_bounds();
        bounds.truncate(n);
        for row in &mut bounds {
            row.truncate(n);
        }
        bounds
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::topology::TopologyKind;
    use piranha_types::Lane;

    fn pkt(src: u16, dst: u16) -> Packet<u32> {
        Packet::new(NodeId(src), NodeId(dst), Lane::Low, PacketKind::Short, 0)
    }

    #[test]
    fn ring_topology_shape() {
        let t = Topology::ring(6);
        assert_eq!(t.nodes(), 6);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.neighbours(NodeId(0)), &[NodeId(5), NodeId(1)]);
    }

    #[test]
    fn two_node_ring_has_single_link() {
        let t = Topology::ring(2);
        assert_eq!(t.neighbours(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn mesh_degrees_within_channel_budget() {
        let t = Topology::mesh(4, 4);
        assert_eq!(t.nodes(), 16);
        assert!(t.max_degree() <= MAX_CHANNELS);
    }

    #[test]
    fn exact_mesh_has_no_phantom_nodes() {
        // 7 nodes used to round up to a 3×3 mesh (9 nodes); mesh_of
        // builds exactly 7, all reachable.
        for n in 2..=20 {
            let t = Topology::mesh_of(n);
            assert_eq!(t.nodes(), n, "mesh_of({n}) must be exact");
            assert_eq!(t.hosts(), n);
            assert!(t.max_degree() <= MAX_CHANNELS);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn torus_wraps_and_dedups() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.max_degree(), 4);
        // Corner-to-corner is 2 hops on a 4×4 torus (vs 6 on the mesh).
        assert_eq!(t.distances()[0][15], 2);
        // A 2-wide dimension wraps onto the same neighbour: deduped.
        let narrow = Topology::torus(2, 3);
        assert!(narrow.max_degree() <= 3);
        assert!(narrow.is_connected());
    }

    #[test]
    fn fat_tree_leaves_are_hosts_switches_are_phantom() {
        let t = Topology::fat_tree(16);
        assert_eq!(t.hosts(), 16);
        assert_eq!(t.nodes(), 16 + 4 + 2, "4 edge switches + 2 roots");
        // Every leaf has exactly one uplink; same-pod leaves are 2
        // hops apart, cross-pod leaves 4.
        assert_eq!(t.neighbours(NodeId(0)).len(), 1);
        let d = t.distances();
        assert_eq!(d[0][1], 2);
        assert_eq!(d[0][15], 4);
        // Small instance: one switch, no roots.
        let small = Topology::fat_tree(3);
        assert_eq!(small.nodes(), 4);
        assert_eq!(small.hosts(), 3);
    }

    #[test]
    fn topology_kind_parses_flag_spellings() {
        for kind in [
            TopologyKind::Auto,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::FatTree,
        ] {
            assert_eq!(TopologyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(TopologyKind::parse("fat-tree"), Some(TopologyKind::FatTree));
        assert_eq!(TopologyKind::parse("hypercube"), None);
    }

    #[test]
    fn queue_discipline_parses_flag_spellings() {
        for q in ["droptail", "lossy", "pfc"] {
            let d = QueueDiscipline::parse(q).expect("known discipline");
            assert_eq!(d.label(), q);
            assert_eq!(d.capacity(), Duration::from_ns(CONGESTED_CAPACITY_NS));
        }
        assert_eq!(QueueDiscipline::parse("red"), None);
    }

    #[test]
    fn fully_connected_limited_to_five() {
        assert_eq!(Topology::fully_connected(5).max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "4 channels")]
    fn oversized_full_mesh_panics() {
        Topology::fully_connected(6);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_custom_rejected() {
        Topology::custom(vec![vec![NodeId(1)], vec![]]);
    }

    #[test]
    fn shortest_paths_on_ring() {
        let mut net: Network<u32> = Network::new(Topology::ring(8), NetworkConfig::paper_default());
        let (_, p) = net.send(SimTime::ZERO, pkt(0, 3));
        assert_eq!(p.age, 3);
        let (_, p) = net.send(SimTime::ZERO, pkt(0, 6));
        assert_eq!(p.age, 2, "goes the short way round");
    }

    #[test]
    fn direct_link_latency() {
        let cfg = NetworkConfig::paper_default();
        let mut net: Network<u32> = Network::new(Topology::fully_connected(4), cfg);
        let (t, p) = net.send(SimTime::ZERO, pkt(0, 3));
        assert_eq!(p.age, 1);
        // 16 bytes at 4 GB/s = 4ns + 16ns hop = 20ns.
        assert_eq!(t.as_ns(), 20);
    }

    #[test]
    fn min_delivery_latency_is_the_paper_quantum() {
        // The conservative lookahead bound equals the best-case direct
        // delivery above: short serialization (4 ns) + one hop (16 ns).
        let cfg = NetworkConfig::paper_default();
        assert_eq!(cfg.min_delivery_latency(), Duration::from_ns(20));
        // And it really is a lower bound for an idle direct link.
        let mut net: Network<u32> = Network::new(Topology::fully_connected(4), cfg);
        let (t, _) = net.send(SimTime::ZERO, pkt(0, 1));
        assert!(t.since(SimTime::ZERO) >= cfg.min_delivery_latency());
    }

    #[test]
    fn long_packets_cost_more_wire_time() {
        let mut net: Network<u32> =
            Network::new(Topology::fully_connected(2), NetworkConfig::paper_default());
        let long = Packet::new(NodeId(0), NodeId(1), Lane::High, PacketKind::Long, 0);
        let (t, _) = net.send(SimTime::ZERO, long);
        assert_eq!(t.as_ns(), 36, "80 bytes at 4 GB/s + 16ns hop");
    }

    #[test]
    fn contention_deflects_but_delivers() {
        let mut net: Network<u32> =
            Network::new(Topology::mesh(3, 3), NetworkConfig::paper_default());
        // Saturate node 0's preferred link toward node 2 with many
        // packets injected at the same instant.
        let mut deliveries = 0;
        for _ in 0..200 {
            let long = Packet::new(NodeId(0), NodeId(2), Lane::High, PacketKind::Long, 0);
            let (_, p) = net.send(SimTime::ZERO, long);
            assert_eq!(p.dst, NodeId(2));
            deliveries += 1;
        }
        assert_eq!(net.delivered(), deliveries);
        assert!(
            net.deflections() > 0,
            "saturation must trigger hot-potato routing"
        );
        // The new per-node counters decompose the global one.
        assert_eq!(
            net.node_deflections().iter().sum::<u64>(),
            net.deflections()
        );
        assert!(net.node_deflections()[0] > 0, "deflections happen at 0");
    }

    #[test]
    fn dimension_order_is_deterministic_and_never_deflects() {
        let mut cfg = NetworkConfig::paper_default();
        cfg.route = RoutePolicy::DimensionOrder;
        let mut net: Network<u32> = Network::new(Topology::torus(4, 4), cfg);
        let bounds = net.pair_bounds();
        for _ in 0..200 {
            let long = Packet::new(NodeId(0), NodeId(10), Lane::High, PacketKind::Long, 0);
            let (arrive, p) = net.send(SimTime::ZERO, long);
            // X then Y on a torus: exactly the BFS distance (node 10 is
            // (2,2) from (0,0): 2 X steps + 2 Y steps), every time.
            assert_eq!(p.age, 4);
            assert!(arrive.since(SimTime::ZERO) >= bounds[0][10]);
        }
        assert_eq!(net.deflections(), 0, "dimension-order never deflects");
    }

    #[test]
    fn droptail_congestion_drops_then_delivers() {
        let mut cfg = NetworkConfig::paper_default();
        cfg.queue = QueueDiscipline::DropTail {
            capacity: Duration::from_ns(40),
        };
        let mut net: Network<u32> = Network::new(Topology::ring(8), cfg);
        let sent = 300u64;
        for _ in 0..sent {
            let long = Packet::new(NodeId(0), NodeId(4), Lane::High, PacketKind::Long, 0);
            let (_, p) = net.send(SimTime::ZERO, long);
            assert_eq!(p.dst, NodeId(4), "drops recover; nothing is lost");
        }
        assert_eq!(net.delivered(), sent);
        assert!(net.drops() > 0, "a 40ns buffer must overflow");
        assert_eq!(net.pauses(), 0);
        // Ledger: every walk is a delivery or a retransmission, and
        // every drop caused exactly one retransmission here (no fault
        // plane in this test).
        assert_eq!(net.delivered() + net.retransmits(), net.walks());
        assert_eq!(net.drops(), net.retransmits());
    }

    #[test]
    fn lossy_nack_charges_return_latency() {
        let mut cfg = NetworkConfig::paper_default();
        cfg.queue = QueueDiscipline::LossyNack {
            capacity: Duration::from_ns(40),
        };
        let mut net: Network<u32> = Network::new(Topology::ring(8), cfg);
        let mut last = SimTime::ZERO;
        for _ in 0..300 {
            let long = Packet::new(NodeId(0), NodeId(4), Lane::High, PacketKind::Long, 0);
            let (t, _) = net.send(SimTime::ZERO, long);
            last = last.max(t);
        }
        assert!(net.drops() > 0);
        assert_eq!(net.delivered() + net.retransmits(), net.walks());
        // A NACKed packet pays the return trip + backoff on top of its
        // eventual full walk: later than any same-instant clean path.
        let bounds = net.pair_bounds();
        assert!(last.since(SimTime::ZERO) > bounds[0][4]);
    }

    #[test]
    fn pfc_pauses_but_never_drops() {
        let mut cfg = NetworkConfig::paper_default();
        cfg.queue = QueueDiscipline::Pfc {
            capacity: Duration::from_ns(40),
        };
        let mut net: Network<u32> = Network::new(Topology::ring(8), cfg);
        for _ in 0..300 {
            let long = Packet::new(NodeId(0), NodeId(4), Lane::High, PacketKind::Long, 0);
            net.send(SimTime::ZERO, long);
        }
        assert_eq!(net.drops(), 0, "PFC is lossless");
        assert!(net.pauses() > 0, "a 40ns credit limit must assert pause");
        assert!(net.pause_time() > Duration::ZERO);
        assert_eq!(net.delivered() + net.retransmits(), net.walks());
    }

    #[test]
    fn stats_snapshot_aggregates_links() {
        let mut net: Network<u32> =
            Network::new(Topology::mesh(3, 3), NetworkConfig::paper_default());
        for i in 0..50u16 {
            net.send(SimTime::ZERO, pkt(i % 9, (i * 7 + 1) % 9));
        }
        let s = net.stats();
        assert_eq!(s.delivered, net.delivered());
        assert!(s.links > 0);
        assert!(s.link_busy > Duration::ZERO, "wire time was charged");
        assert!(s.max_link_busy <= s.link_busy);
        assert!(s.occupancy(Duration::from_ns(10_000)) > 0.0);
        assert_eq!(s.node_deflections.len(), 9);
    }

    #[test]
    fn resend_counts_retransmits_not_deliveries() {
        let mut net: Network<u32> = Network::new(Topology::ring(4), NetworkConfig::paper_default());
        let (t1, _) = net.send(SimTime::ZERO, pkt(0, 2));
        // Two failed attempts re-walk the same route, then success.
        let (t2, _) = net.resend(t1, pkt(0, 2));
        let (t3, p) = net.resend(t2, pkt(0, 2));
        assert_eq!(p.dst, NodeId(2));
        assert_eq!(net.delivered(), 1);
        assert_eq!(net.retransmits(), 2);
        assert!(t3 > t2 && t2 > t1, "each re-walk charges real wire time");
    }

    #[test]
    fn interleaved_send_resend_conserves_credits() {
        // The debug assertion inside send/resend is the real check; this
        // exercises it under a mixed workload.
        let mut net: Network<u32> =
            Network::new(Topology::mesh(3, 2), NetworkConfig::paper_default());
        let mut t = SimTime::ZERO;
        for i in 0..200u16 {
            let (s, d) = (i % 6, (i * 5 + 1) % 6);
            if s == d {
                continue;
            }
            let (arrive, _) = net.send(t, pkt(s, d));
            if i % 3 == 0 {
                let (again, _) = net.resend(arrive, pkt(s, d));
                t = again;
            } else {
                t = arrive;
            }
        }
        assert!(net.retransmits() > 0 && net.delivered() > net.retransmits());
    }

    #[test]
    fn distances_are_symmetric_shortest_hops() {
        let t = Topology::ring(6);
        let d = t.distances();
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, hops) in row.iter().enumerate() {
                assert_eq!(*hops, d[j][i], "ring distances are symmetric");
            }
        }
        assert_eq!(d[0][3], 3, "opposite side of a 6-ring");
        assert_eq!(d[0][5], 1, "wraps the short way");
    }

    #[test]
    fn pair_bounds_degenerate_to_the_global_quantum_on_table1_config() {
        // The paper's glueless 4-chip configuration is fully connected:
        // every pair is one hop, so the whole lookahead matrix collapses
        // to the single 20 ns quantum the fixed-quantum engine used.
        let net: Network<u32> =
            Network::new(Topology::fully_connected(4), NetworkConfig::paper_default());
        let bounds = net.pair_bounds();
        let q = net.config().min_delivery_latency();
        assert_eq!(q, Duration::from_ns(20));
        for (s, row) in bounds.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                if s == d {
                    assert_eq!(b, Duration::ZERO);
                } else {
                    assert_eq!(b, q, "{s}->{d} is a single hop on a full mesh");
                }
            }
        }
    }

    #[test]
    fn pair_bounds_scale_with_topology_distance() {
        let net: Network<u32> = Network::new(Topology::ring(8), NetworkConfig::paper_default());
        let bounds = net.pair_bounds();
        let q = net.config().min_delivery_latency();
        assert_eq!(bounds[0][1], q);
        assert_eq!(bounds[0][4], q.times(4), "4 hops across an 8-ring");
    }

    #[test]
    fn host_pair_bounds_truncate_phantom_switches() {
        let net: Network<u32> = Network::new(Topology::fat_tree(8), NetworkConfig::paper_default());
        let full = net.pair_bounds();
        let hosts = net.host_pair_bounds();
        assert_eq!(full.len(), net.topology().nodes());
        assert_eq!(hosts.len(), 8);
        let q = net.config().min_delivery_latency();
        // Leaf→leaf through the tree: 2 hops same pod, 4 cross-pod —
        // strictly positive everywhere off the diagonal.
        assert_eq!(hosts[0][1], q.times(2));
        assert_eq!(hosts[0][7], q.times(4));
        for (s, row) in hosts.iter().enumerate() {
            for (d, &b) in row.iter().enumerate() {
                assert_eq!(b == Duration::ZERO, s == d);
            }
        }
    }

    mod bound_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_topology(shape: usize, a: usize, b: usize) -> Topology {
            match shape {
                0 => Topology::ring(a + b),           // 4..10 nodes
                1 => Topology::fully_connected(a),    // 2..=5 nodes
                2 => Topology::mesh(a - 1, b.max(2)), // (1..5) x (2..5)
                3 => Topology::torus(a.max(2), b),    // (2..6) x (2..5)
                4 => Topology::fat_tree(a * b),       // 4..20 leaves
                _ => Topology::mesh_of(a * b + 1),    // 5..21 nodes, exact
            }
        }

        fn arb_queue(sel: usize) -> QueueDiscipline {
            let capacity = Duration::from_ns(40);
            match sel {
                0 => QueueDiscipline::unbounded(),
                1 => QueueDiscipline::DropTail { capacity },
                2 => QueueDiscipline::LossyNack { capacity },
                _ => QueueDiscipline::Pfc { capacity },
            }
        }

        proptest! {
            /// Every delivery the network performs — including under
            /// heavy contention, where hot-potato deflection reroutes
            /// packets along longer paths, and under every queue
            /// discipline and route policy, where drops/pauses delay
            /// them further — takes at least the pair's computed bound.
            /// This is the property the parallel engine's per-pair
            /// `debug_assert` relies on, on every topology.
            #[test]
            fn every_delivery_respects_its_pair_bound(
                shape in 0usize..6,
                a in 2usize..6,
                b in 2usize..5,
                queue_sel in 0usize..4,
                dimorder in proptest::bool::ANY,
                sends in proptest::collection::vec(
                    (0usize..64, 0usize..64, 0u64..500, proptest::bool::ANY),
                    1..120,
                ),
            ) {
                let topo = arb_topology(shape, a, b);
                let mut cfg = NetworkConfig::paper_default();
                cfg.queue = arb_queue(queue_sel);
                if dimorder {
                    cfg.route = RoutePolicy::DimensionOrder;
                }
                let mut net: Network<u32> = Network::new(topo, cfg);
                let bounds = net.pair_bounds();
                let n = bounds.len();
                let mut sent = 0u64;
                for (s, d, at, long) in sends {
                    let (s, d) = (s % n, d % n);
                    if s == d {
                        continue;
                    }
                    let kind = if long { PacketKind::Long } else { PacketKind::Short };
                    let t = SimTime::from_ns(at);
                    let p = Packet::new(NodeId(s as u16), NodeId(d as u16), Lane::Low, kind, 0);
                    let (arrive, _) = net.send(t, p);
                    sent += 1;
                    prop_assert!(
                        arrive.since(t) >= bounds[s][d],
                        "{s}->{d} delivered in {:?}, bound {:?}",
                        arrive.since(t),
                        bounds[s][d]
                    );
                }
                // Packet ledger: everything injected was delivered, and
                // every walk is a delivery or a retransmission.
                prop_assert_eq!(net.delivered(), sent);
                prop_assert_eq!(net.delivered() + net.retransmits(), net.walks());
                prop_assert_eq!(net.drops(), net.retransmits());
                if matches!(cfg.queue, QueueDiscipline::Pfc { .. }) {
                    prop_assert_eq!(net.drops(), 0);
                }
            }
        }
    }

    #[test]
    fn every_pair_reachable_on_mesh() {
        let mut net: Network<u32> =
            Network::new(Topology::mesh(4, 2), NetworkConfig::paper_default());
        for s in 0..8u16 {
            for d in 0..8u16 {
                if s == d {
                    continue;
                }
                let (t, p) = net.send(SimTime::ZERO, pkt(s, d));
                assert_eq!(p.dst, NodeId(d));
                assert!(t > SimTime::ZERO);
            }
        }
        assert!(net.mean_hops() >= 1.0);
    }
}
