//! The DC-balanced 19-in-22 link encoding (paper §2.6.1).
//!
//! Each channel wire pair carries codewords in which exactly 11 of 22
//! wires are high, so the net current along the channel is zero and a
//! reference voltage for the differential receivers can be generated at
//! the termination. 18 payload bits map to balanced codewords chosen so
//! that *no two codewords are complementary* — achieved here by using
//! only codewords whose most significant wire is 0 — and the 19th bit is
//! encoded by inverting all 22 wires (which preserves balance and makes
//! the code inversion-insensitive, allowing transformer coupling and
//! statistical DC balance in the time domain).
//!
//! The 18-bit payload is mapped by *combinatorial unranking*: codewords
//! with MSB 0 and weight 11 are the 21-choose-11 = 352,716 ways of
//! placing 11 ones in the low 21 wires, indexed lexicographically; 2^18 =
//! 262,144 of them are used.

/// Number of wires per direction per channel.
pub const WIRES: u32 = 22;
/// Ones per codeword (DC balance).
pub const WEIGHT: u32 = 11;
/// Payload bits carried per codeword (16 data + 2 CRC/flow-control + 1
/// inversion bit, per the paper).
pub const PAYLOAD_BITS: u32 = 19;

/// An encoding/decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload exceeds 19 bits.
    PayloadTooWide(u32),
    /// The received word is not a valid codeword (wrong weight or out of
    /// the code space) — on a real link this triggers the CRC/retry path.
    InvalidCodeword(u32),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::PayloadTooWide(v) => write!(f, "payload {v:#x} wider than 19 bits"),
            CodecError::InvalidCodeword(w) => write!(f, "invalid 22-bit codeword {w:#x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Binomial coefficient (small arguments only).
fn choose(n: u32, k: u32) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u64 = 1;
    let mut den: u64 = 1;
    for i in 0..k as u64 {
        num *= (n as u64) - i;
        den *= i + 1;
    }
    num / den
}

/// Unrank `index` into the lexicographically-ordered 21-bit words of
/// weight 11 (bit 20 is the most significant position considered).
fn unrank(mut index: u64) -> u32 {
    let mut word = 0u32;
    let mut ones_left = WEIGHT;
    for pos in (0..WIRES - 1).rev() {
        if ones_left == 0 {
            break;
        }
        // Codewords with bit `pos` = 0 come first; there are
        // choose(pos, ones_left) of them.
        let without = choose(pos, ones_left);
        if index < without {
            continue;
        }
        index -= without;
        word |= 1 << pos;
        ones_left -= 1;
    }
    word
}

/// Rank a 21-bit weight-11 word back to its lexicographic index.
fn rank(word: u32) -> u64 {
    let mut index = 0u64;
    let mut ones_left = WEIGHT;
    for pos in (0..WIRES - 1).rev() {
        if ones_left == 0 {
            break;
        }
        if word & (1 << pos) != 0 {
            index += choose(pos, ones_left);
            ones_left -= 1;
        }
    }
    index
}

/// Encode a 19-bit payload into a DC-balanced 22-bit codeword.
///
/// # Errors
///
/// Returns [`CodecError::PayloadTooWide`] if `payload >= 2^19`.
///
/// # Examples
///
/// ```
/// let w = piranha_net::encode22(0x1234).unwrap();
/// assert_eq!(w.count_ones(), 11);
/// assert_eq!(piranha_net::decode22(w).unwrap(), 0x1234);
/// ```
pub fn encode22(payload: u32) -> Result<u32, CodecError> {
    if payload >= 1 << PAYLOAD_BITS {
        return Err(CodecError::PayloadTooWide(payload));
    }
    let invert = payload >> 18 != 0;
    let base = unrank((payload & 0x3_ffff) as u64);
    debug_assert_eq!(base.count_ones(), WEIGHT);
    debug_assert_eq!(base >> (WIRES - 1), 0, "MSB must be 0 before inversion");
    Ok(if invert {
        !base & ((1 << WIRES) - 1)
    } else {
        base
    })
}

/// Decode a 22-bit codeword back to its 19-bit payload.
///
/// # Errors
///
/// Returns [`CodecError::InvalidCodeword`] if the word is not balanced or
/// falls outside the code space.
pub fn decode22(word: u32) -> Result<u32, CodecError> {
    if word >= 1 << WIRES || word.count_ones() != WEIGHT {
        return Err(CodecError::InvalidCodeword(word));
    }
    let inverted = word >> (WIRES - 1) != 0;
    let base = if inverted {
        !word & ((1 << WIRES) - 1)
    } else {
        word
    };
    let index = rank(base);
    if index >= 1 << 18 {
        return Err(CodecError::InvalidCodeword(word));
    }
    Ok(index as u32 | (u32::from(inverted) << 18))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_space_is_large_enough() {
        // C(21,11) codewords with MSB 0 must cover 2^18 payloads.
        assert!(choose(21, 11) >= 1 << 18);
        assert_eq!(choose(22, 11), 705_432);
        assert_eq!(choose(5, 0), 1);
        assert_eq!(choose(3, 5), 0);
    }

    #[test]
    fn every_codeword_is_balanced() {
        for p in (0..1u32 << 19).step_by(997) {
            let w = encode22(p).unwrap();
            assert_eq!(
                w.count_ones(),
                WEIGHT,
                "payload {p:#x} -> unbalanced {w:#x}"
            );
        }
    }

    #[test]
    fn round_trip_dense_sample() {
        for p in (0..1u32 << 19).step_by(131) {
            assert_eq!(decode22(encode22(p).unwrap()).unwrap(), p);
        }
        // Edges.
        for p in [0, 1, (1 << 18) - 1, 1 << 18, (1 << 19) - 1] {
            assert_eq!(decode22(encode22(p).unwrap()).unwrap(), p);
        }
    }

    #[test]
    fn no_two_codewords_are_complementary() {
        // Inversion flips the MSB, so the base code (MSB=0) and the
        // inverted code (MSB=1) are disjoint; sample-check it.
        for p in (0..1u32 << 18).step_by(1009) {
            let w = encode22(p).unwrap();
            let complement = !w & ((1 << WIRES) - 1);
            // The complement decodes to the *same* low 18 bits with the
            // inversion bit set — it is never the encoding of a different
            // 18-bit payload.
            assert_eq!(decode22(complement).unwrap(), p | (1 << 18));
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert_eq!(encode22(1 << 19), Err(CodecError::PayloadTooWide(1 << 19)));
        assert_eq!(decode22(0), Err(CodecError::InvalidCodeword(0)));
        assert_eq!(
            decode22((1 << 22) - 1),
            Err(CodecError::InvalidCodeword((1 << 22) - 1))
        );
        // Balanced but out of code space: the lexicographically-largest
        // MSB=0 weight-11 words beyond index 2^18 are invalid.
        let top = unrank(choose(21, 11) - 1);
        assert_eq!(decode22(top), Err(CodecError::InvalidCodeword(top)));
        assert!(decode22(1 << 23).is_err(), "width check");
    }

    #[test]
    fn rank_unrank_inverse_on_random_indices() {
        for i in (0..choose(21, 11)).step_by(4099) {
            assert_eq!(rank(unrank(i)), i);
        }
    }

    #[test]
    fn error_display() {
        assert!(CodecError::PayloadTooWide(0x80000)
            .to_string()
            .contains("wider"));
        assert!(CodecError::InvalidCodeword(3)
            .to_string()
            .contains("invalid"));
    }
}
