//! Link-level error recovery: CRC framing checks plus NACK/retransmit.
//!
//! The paper's interconnect (§2.6) frames packets with error detection
//! on every link; a receiver that sees a bad frame drops it and NACKs,
//! and the sender retransmits after an exponentially growing backoff
//! until a retry budget is exhausted. This module provides the
//! detection primitive (a CRC-32 over the payload's debug encoding —
//! the simulator models *data* as version stamps, so the encoding is
//! the canonical byte representation) and the deterministic backoff
//! schedule; `piranha-system` drives the actual resend through
//! [`crate::Network::resend`].

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise —
/// plenty fast for the handful of fault-path checks per run and
/// dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Flip one bit of a byte buffer in place (bit index modulo the buffer
/// width), modelling a single-event upset on the wire.
pub fn flip_bit(data: &mut [u8], bit: u32) {
    if data.is_empty() {
        return;
    }
    let bit = bit as usize % (data.len() * 8);
    data[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let payload = b"Req { kind: ReadShared, line: LineAddr(42) }";
        let good = crc32(payload);
        for bit in 0..(payload.len() as u32 * 8) {
            let mut bad = payload.to_vec();
            flip_bit(&mut bad, bit);
            assert_ne!(crc32(&bad), good, "flip at bit {bit} slipped through");
        }
    }

    #[test]
    fn flip_is_an_involution_and_wraps() {
        let mut data = vec![0xA5u8; 8];
        let orig = data.clone();
        flip_bit(&mut data, 1000); // wraps modulo 64 bits
        assert_ne!(data, orig);
        flip_bit(&mut data, 1000);
        assert_eq!(data, orig);
        flip_bit(&mut [], 3); // empty buffer is a no-op, not a panic
    }
}
