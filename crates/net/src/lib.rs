//! The Piranha system interconnect — paper §2.6.
//!
//! Three components per node move packets between chips:
//!
//! * the **output queue** ([`queues::OutQueue`]) accepts packets from the
//!   protocol engines with four priority levels, giving transit traffic
//!   priority over new injections;
//! * the **router** ([`router::Network`]) is a topology-independent,
//!   adaptive, virtual cut-through design descended from the S3.mp
//!   S-Connect: when the preferred output link is busy it deflects
//!   packets "hot-potato" onto another link with increasing age/priority,
//!   which bounds buffering and guarantees progress;
//! * the **input queue** ([`queues::InQueue`]) interprets arriving
//!   packets through a disposition vector and lets low-priority traffic
//!   bypass blocked high-priority traffic.
//!
//! Physically, each of the four channels per processing node is 22 wires
//! per direction at 2 Gbit/s/wire with a DC-balanced 19-bits-in-22
//! encoding ([`encoding`]) — implemented here exactly as described,
//! including the inversion-insensitive 19th bit.
//!
//! Links also carry error detection ([`recovery`]): a CRC-checked frame
//! that fails is dropped, NACKed, and retransmitted by the sender
//! ([`Network::resend`]) with exponential backoff — the recovery half of
//! the fault model exercised by `piranha-faults`.

#![warn(missing_docs)]

pub mod component;
pub mod encoding;
pub mod packet;
pub mod queues;
pub mod recovery;
pub mod router;
pub mod topology;

pub use component::{Arrive, Depart, Fabric};
pub use encoding::{decode22, encode22, CodecError};
pub use packet::{Packet, PacketKind, PRIORITIES};
pub use queues::{InQueue, OutQueue};
pub use recovery::{crc32, flip_bit};
pub use router::{
    FabricStats, Network, NetworkConfig, QueueDiscipline, RoutePolicy, CONGESTED_CAPACITY_NS,
    MAX_CHANNELS,
};
pub use topology::{Topology, TopologyKind};
