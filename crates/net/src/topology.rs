//! Fabric topologies (paper §2.6).
//!
//! The paper's prototype stops at small glueless configurations (a
//! clique of up to five nodes), but the §2.6 interconnect is explicitly
//! designed for larger "modular and scalable" systems. This module
//! holds the topology zoo the scaling experiments sweep:
//!
//! * [`Topology::ring`] / [`Topology::fully_connected`] /
//!   [`Topology::mesh`] — the original paper-scale builders;
//! * [`Topology::mesh_of`] — an *exact-count* 2-D mesh (the last row
//!   may be partial), so an `n`-node machine gets exactly `n` topology
//!   nodes;
//! * [`Topology::torus`] — a 2-D torus (wraparound mesh), halving the
//!   network diameter at the same ≤ 4 channel budget;
//! * [`Topology::fat_tree`] — a two-level folded-Clos tree in which the
//!   machine's nodes are *leaves* and the interior switches are extra
//!   **phantom nodes** that route but never source or sink traffic.
//!
//! [`TopologyKind`] is the configuration-level selector the system
//! layer (and the `--topology=` CLI rider) uses; the wiring maps a kind
//! plus a node count to a concrete graph.
//!
//! Every builder produces a connected, symmetric graph, and
//! [`Topology::distances`] (all-pairs BFS) stays the single source of
//! the conservative per-pair lookahead bounds: any routing policy
//! charges at least one minimum hop per link traversed and can never
//! use fewer links than the BFS distance.

use piranha_types::NodeId;

/// Which fabric topology to build for a machine — the configuration
/// knob behind `--topology=`. The concrete graph is constructed by the
/// system wiring from the machine's node count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TopologyKind {
    /// The historical default: glueless clique up to five nodes, exact
    /// 2-D mesh beyond, custom dual-homed graph when I/O nodes are
    /// present. All golden configurations use this kind.
    #[default]
    Auto,
    /// A bidirectional ring (2 channels per node).
    Ring,
    /// An exact-count 2-D mesh ([`Topology::mesh_of`]).
    Mesh,
    /// A 2-D torus ([`Topology::torus`]); falls back to a ring when the
    /// node count has no `w × h` factorization with both sides ≥ 2 (a
    /// ring *is* the 1-D torus).
    Torus,
    /// A two-level fat tree ([`Topology::fat_tree`]) with phantom
    /// switch nodes above the machine's leaf nodes.
    FatTree,
}

impl TopologyKind {
    /// Parse a `--topology=` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(TopologyKind::Auto),
            "ring" => Some(TopologyKind::Ring),
            "mesh" => Some(TopologyKind::Mesh),
            "torus" => Some(TopologyKind::Torus),
            "fattree" | "fat-tree" | "fat_tree" => Some(TopologyKind::FatTree),
            _ => None,
        }
    }

    /// The flag spelling (stable, lowercase; used in report rows).
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Auto => "auto",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::FatTree => "fattree",
        }
    }
}

/// Regular 2-D grid geometry, kept by the mesh/torus builders so the
/// deterministic dimension-order route policy can compute next hops
/// arithmetically instead of from the BFS table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Grid {
    pub(crate) w: usize,
    pub(crate) h: usize,
    pub(crate) wrap: bool,
}

/// A system topology: which nodes connect to which.
#[derive(Debug, Clone)]
pub struct Topology {
    /// adjacency[i] = neighbours of node i.
    pub(crate) adj: Vec<Vec<NodeId>>,
    /// Regular grid geometry, when the graph is a full `w × h`
    /// mesh/torus (enables dimension-order routing).
    pub(crate) grid: Option<Grid>,
    /// The first `hosts` nodes source and sink traffic (the machine's
    /// lanes); any nodes beyond are phantom switches that only route
    /// (fat-tree interior). Every builder except [`Topology::fat_tree`]
    /// makes every node a host.
    hosts: usize,
}

impl Topology {
    fn from_adj(adj: Vec<Vec<NodeId>>, grid: Option<Grid>) -> Self {
        let hosts = adj.len();
        Topology { adj, grid, hosts }
    }

    /// A topology from an explicit neighbour list.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency is asymmetric, contains self-loops or
    /// out-of-range nodes, or is not connected.
    pub fn custom(adj: Vec<Vec<NodeId>>) -> Self {
        let n = adj.len();
        for (i, nbrs) in adj.iter().enumerate() {
            for &m in nbrs {
                assert!((m.index()) < n, "neighbour {m} out of range");
                assert_ne!(m.index(), i, "self-loop at node {i}");
                assert!(
                    adj[m.index()].contains(&NodeId(i as u16)),
                    "asymmetric link {i} -> {m}"
                );
            }
        }
        let t = Topology::from_adj(adj, None);
        assert!(t.is_connected(), "topology must be connected");
        t
    }

    /// A bidirectional ring of `n` nodes (2 channels per node).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least 2 nodes");
        let adj = (0..n)
            .map(|i| {
                let prev = NodeId(((i + n - 1) % n) as u16);
                let next = NodeId(((i + 1) % n) as u16);
                if prev == next {
                    vec![next] // n == 2
                } else {
                    vec![prev, next]
                }
            })
            .collect();
        Topology::from_adj(adj, None)
    }

    /// A fully-connected topology (possible gluelessly up to 5 processing
    /// nodes with 4 channels each); used for the paper's 4-chip scaling
    /// study.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > MAX_CHANNELS + 1`.
    pub fn fully_connected(n: usize) -> Self {
        assert!(
            (2..=crate::router::MAX_CHANNELS + 1).contains(&n),
            "full mesh limited by 4 channels/node"
        );
        let adj = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| NodeId(j as u16))
                    .collect()
            })
            .collect();
        Topology::from_adj(adj, None)
    }

    /// A 2-D mesh of `w x h` nodes (≤ 4 channels per node, the paper's
    /// natural large-system topology).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh is a single node.
    pub fn mesh(w: usize, h: usize) -> Self {
        assert!(w * h >= 2, "mesh needs at least 2 nodes");
        let id = |x: usize, y: usize| NodeId((y * w + x) as u16);
        let adj = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                let mut nbrs = Vec::new();
                if x > 0 {
                    nbrs.push(id(x - 1, y));
                }
                if x + 1 < w {
                    nbrs.push(id(x + 1, y));
                }
                if y > 0 {
                    nbrs.push(id(x, y - 1));
                }
                if y + 1 < h {
                    nbrs.push(id(x, y + 1));
                }
                nbrs
            })
            .collect();
        Topology::from_adj(adj, Some(Grid { w, h, wrap: false }))
    }

    /// An **exact-count** 2-D mesh over `n` nodes: rows of width
    /// `ceil(sqrt(n))`, the last row possibly partial. Unlike rounding
    /// `n` up to a full `w × h` rectangle, this never instantiates
    /// topology nodes the machine doesn't have — every node is a lane.
    /// When `n` happens to fill the rectangle exactly the result is
    /// identical to [`Topology::mesh`] (including its dimension-order
    /// geometry).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn mesh_of(n: usize) -> Self {
        assert!(n >= 2, "mesh needs at least 2 nodes");
        let w = (n as f64).sqrt().ceil() as usize;
        let h = n.div_ceil(w);
        if w * h == n {
            return Topology::mesh(w, h);
        }
        let adj = (0..n)
            .map(|i| {
                let x = i % w;
                let mut nbrs = Vec::new();
                if x > 0 {
                    nbrs.push(NodeId((i - 1) as u16));
                }
                if x + 1 < w && i + 1 < n {
                    nbrs.push(NodeId((i + 1) as u16));
                }
                if i >= w {
                    nbrs.push(NodeId((i - w) as u16));
                }
                if i + w < n {
                    nbrs.push(NodeId((i + w) as u16));
                }
                nbrs
            })
            .collect();
        let t = Topology::from_adj(adj, None);
        debug_assert!(t.is_connected(), "partial-row mesh stays connected");
        t
    }

    /// A 2-D torus of `w × h` nodes: a mesh with wraparound links in
    /// both dimensions, halving the diameter at the same ≤ 4 channel
    /// budget. Duplicate links (a 2-wide dimension wraps onto the same
    /// neighbour) are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is < 2.
    pub fn torus(w: usize, h: usize) -> Self {
        assert!(w >= 2 && h >= 2, "torus needs both dimensions >= 2");
        let id = |x: usize, y: usize| NodeId((y * w + x) as u16);
        let adj = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                let mut nbrs: Vec<NodeId> = Vec::new();
                let mut push = |n: NodeId| {
                    if !nbrs.contains(&n) {
                        nbrs.push(n);
                    }
                };
                push(id((x + w - 1) % w, y));
                push(id((x + 1) % w, y));
                push(id(x, (y + h - 1) % h));
                push(id(x, (y + 1) % h));
                nbrs
            })
            .collect();
        Topology::from_adj(adj, Some(Grid { w, h, wrap: true }))
    }

    /// A two-level folded-Clos fat tree over `leaves` machine nodes:
    /// each group of up to four leaves hangs off an edge switch, and
    /// every edge switch connects to two root switches (one root when a
    /// single edge switch suffices, i.e. no roots at all). The switches
    /// are **phantom nodes** — they occupy topology slots after the
    /// leaves, route packets, and never source or sink traffic — so
    /// [`Topology::hosts`] is `leaves`, not [`Topology::nodes`].
    ///
    /// Switch degree exceeds [`crate::MAX_CHANNELS`]: the 4-channel
    /// budget constrains *processing-node* routers (paper §2.6.1), not
    /// dedicated switch silicon. Leaf degree is 1.
    ///
    /// # Panics
    ///
    /// Panics if `leaves < 2`.
    pub fn fat_tree(leaves: usize) -> Self {
        assert!(leaves >= 2, "fat tree needs at least 2 leaves");
        let edges = leaves.div_ceil(4);
        let roots = if edges == 1 { 0 } else { 2 };
        let total = leaves + edges + roots;
        let mut adj: Vec<Vec<NodeId>> = (0..total).map(|_| Vec::new()).collect();
        for leaf in 0..leaves {
            let edge = leaves + leaf / 4;
            adj[leaf].push(NodeId(edge as u16));
            adj[edge].push(NodeId(leaf as u16));
        }
        for e in 0..edges {
            let edge = leaves + e;
            for r in 0..roots {
                let root = leaves + edges + r;
                adj[edge].push(NodeId(root as u16));
                adj[root].push(NodeId(edge as u16));
            }
        }
        let mut t = Topology::from_adj(adj, None);
        t.hosts = leaves;
        debug_assert!(t.is_connected(), "fat tree is connected by construction");
        t
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of nodes that source and sink traffic (the machine's
    /// lanes). Equal to [`Topology::nodes`] on every topology except
    /// the fat tree, whose interior switches are phantom.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Neighbours of `n`.
    pub fn neighbours(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.index()]
    }

    /// Maximum degree (must be ≤ 4 for processing nodes).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    pub(crate) fn is_connected(&self) -> bool {
        let n = self.adj.len();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for &m in &self.adj[i] {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m.index());
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// All-pairs shortest-path hop counts via BFS: `distances[src][dst]`
    /// = minimum hops from `src` to `dst` (0 on the diagonal). The
    /// topology is connected by construction, so every entry is finite.
    pub fn distances(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut table = vec![vec![0usize; n]; n];
        for src in 0..n {
            let dist = &mut table[src];
            let mut seen = vec![false; n];
            seen[src] = true;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        dist[v.index()] = dist[u] + 1;
                        queue.push_back(v.index());
                    }
                }
            }
        }
        table
    }

    /// All-pairs next-hop table via BFS: `table[src][dst]` = neighbour to
    /// take (self for src == dst).
    pub(crate) fn next_hops(&self) -> Vec<Vec<NodeId>> {
        let n = self.adj.len();
        let mut table = vec![vec![NodeId(0); n]; n];
        for dst in 0..n {
            // BFS backwards from dst.
            let mut dist = vec![usize::MAX; n];
            let mut next = vec![NodeId(dst as u16); n];
            let mut queue = std::collections::VecDeque::new();
            dist[dst] = 0;
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if dist[v.index()] == usize::MAX {
                        dist[v.index()] = dist[u] + 1;
                        // First hop from v toward dst is u.
                        next[v.index()] = NodeId(u as u16);
                        queue.push_back(v.index());
                    }
                }
            }
            for src in 0..n {
                table[src][dst] = next[src];
            }
        }
        table
    }

    /// The dimension-order (X then Y) next hop from `at` toward `dst`,
    /// when the topology is a full grid. On a torus each dimension
    /// steps the shorter way around (ties break toward +1). Returns
    /// `None` on non-grid topologies, where the deterministic policy
    /// falls back to the (equally deterministic) BFS next-hop table.
    /// The step count equals the BFS distance on both mesh and torus,
    /// so dimension-order routing never undercuts the pair bounds.
    pub(crate) fn dimension_next(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        let g = self.grid?;
        let (ax, ay) = (at.index() % g.w, at.index() / g.w);
        let (dx, dy) = (dst.index() % g.w, dst.index() / g.w);
        let step = |from: usize, to: usize, len: usize| -> usize {
            if from == to {
                return from;
            }
            if !g.wrap {
                return if to > from { from + 1 } else { from - 1 };
            }
            let fwd = (to + len - from) % len;
            let back = (from + len - to) % len;
            if fwd <= back {
                (from + 1) % len
            } else {
                (from + len - 1) % len
            }
        };
        let (nx, ny) = if ax != dx {
            (step(ax, dx, g.w), ay)
        } else {
            (ax, step(ay, dy, g.h))
        };
        Some(NodeId((ny * g.w + nx) as u16))
    }
}
