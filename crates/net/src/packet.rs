//! Interconnect packet formats (paper §2.6.1).
//!
//! "The system interconnect supports two distinct packet types. The Short
//! packet format is 128 bits long and is used for all data-less
//! transactions. The Long packet has the same 128-bit header format along
//! with a 64 byte (512 bit) data section."

use piranha_types::{Lane, NodeId};

/// Number of packet priority levels in the IQ/OQ (paper §2.6.2).
pub const PRIORITIES: usize = 4;

/// Whether a packet carries a data section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// 128-bit header only (requests, acks, grants).
    Short,
    /// Header plus 64-byte data section (fills, write-backs).
    Long,
}

impl PacketKind {
    /// Packet size in bytes on the wire.
    pub fn bytes(self) -> u64 {
        match self {
            PacketKind::Short => 16,
            PacketKind::Long => 16 + 64,
        }
    }

    /// Transfer time in interconnect clock cycles ("packets are
    /// transferred in either 2 or 10 interconnect clock cycles": 8 bytes
    /// per cycle over 22 wires carrying 16 data bits at 4x clock).
    pub fn wire_cycles(self) -> u64 {
        match self {
            PacketKind::Short => 2,
            PacketKind::Long => 10,
        }
    }
}

/// A packet in flight, generic over the protocol payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<P> {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual lane (deadlock class).
    pub lane: Lane,
    /// Priority level (0 = lowest); raised when the packet is deflected.
    pub priority: u8,
    /// Short or long format.
    pub kind: PacketKind,
    /// Hop count so far (the router's "age": deflected packets age and
    /// gain priority).
    pub age: u32,
    /// The protocol message.
    pub payload: P,
}

impl<P> Packet<P> {
    /// A fresh packet at priority implied by its lane.
    pub fn new(src: NodeId, dst: NodeId, lane: Lane, kind: PacketKind, payload: P) -> Self {
        let priority = match lane {
            Lane::Io => 0,
            Lane::Low => 1,
            Lane::High => 2,
        };
        Packet {
            src,
            dst,
            lane,
            priority,
            kind,
            age: 0,
            payload,
        }
    }

    /// Record a hop, aging the packet; sufficiently old packets rise to
    /// the top priority so they cannot be deflected forever.
    pub fn hop(&mut self, deflected: bool) {
        self.age += 1;
        if deflected && self.age.is_multiple_of(2) {
            self.priority = (self.priority + 1).min(PRIORITIES as u8 - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(PacketKind::Short.bytes(), 16);
        assert_eq!(PacketKind::Long.bytes(), 80);
        assert_eq!(PacketKind::Short.wire_cycles(), 2);
        assert_eq!(PacketKind::Long.wire_cycles(), 10);
    }

    #[test]
    fn lane_sets_initial_priority() {
        let p = Packet::new(NodeId(0), NodeId(1), Lane::High, PacketKind::Short, ());
        assert_eq!(p.priority, 2);
        let p = Packet::new(NodeId(0), NodeId(1), Lane::Io, PacketKind::Short, ());
        assert_eq!(p.priority, 0);
    }

    #[test]
    fn deflection_raises_priority_monotonically() {
        let mut p = Packet::new(NodeId(0), NodeId(1), Lane::Low, PacketKind::Short, ());
        let start = p.priority;
        for _ in 0..10 {
            p.hop(true);
        }
        assert_eq!(p.age, 10);
        assert!(p.priority > start);
        assert!(p.priority < PRIORITIES as u8);
        // Plain hops age but do not escalate.
        let mut q = Packet::new(NodeId(0), NodeId(1), Lane::Low, PacketKind::Short, ());
        for _ in 0..10 {
            q.hop(false);
        }
        assert_eq!(q.priority, 1);
    }
}
