//! Regenerates the §4 sensitivity results: the pessimistic P8 variant
//! and the TPC-C-like workload.
//!
//! Flags: `--quick` (CI scale), `--store=<dir>` (persistent result
//! store; see `piranha::observe::StoreCli`).
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, StoreCli};

fn main() {
    let store = StoreCli::from_env_args().apply();
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    println!("§4 sensitivity (speedups)");
    for (label, s) in experiments::sensitivity(scale) {
        println!("  {label:<32} {s:>6.2}x");
    }
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}
