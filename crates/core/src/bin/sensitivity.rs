//! Regenerates the §4 sensitivity results: the pessimistic P8 variant
//! and the TPC-C-like workload.
use piranha::experiments::{self, RunScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    println!("§4 sensitivity (speedups)");
    for (label, s) in experiments::sensitivity(scale) {
        println!("  {label:<32} {s:>6.2}x");
    }
}
