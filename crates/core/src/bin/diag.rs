//! Calibration diagnostics: per-configuration miss profiles on OLTP and
//! instruction throughput on DSS (a development aid; the shipped figures
//! come from the `fig*` binaries).
use piranha::experiments::{dss, oltp, run_config, RunScale};
use piranha::SystemConfig;

fn main() {
    let scale = RunScale::quick();
    for cfg in [
        SystemConfig::piranha_p1(),
        SystemConfig::ino(),
        SystemConfig::ooo(),
        SystemConfig::piranha_p8(),
    ] {
        let r = run_config(cfg, &oltp(), scale);
        let m = r.merged();
        let period_ns = 1000.0 / r.clock.mhz() as f64;
        println!(
            "{:<5} OLTP instrs={} mpki={:.1} fills[hit,fwd,mem]={:?} stall={:.1}ns/instr busy={:.0}%",
            r.name,
            m.instrs,
            r.mpki(),
            m.fills,
            m.total_stall() as f64 * period_ns / m.instrs as f64,
            r.breakdown().busy * 100.0
        );
    }
    for cfg in [SystemConfig::ino(), SystemConfig::ooo()] {
        let r = run_config(cfg, &dss(), scale);
        let m = r.merged();
        println!(
            "{:<5} DSS instrs={} ipc={:.2}",
            r.name,
            m.instrs,
            m.instrs as f64 / r.wall_cycles() as f64
        );
    }
}
