//! Fabric congestion at scale: bounded OLTP to completion on machines
//! of 16/32/64 single-CPU chips over every explicit topology
//! (mesh/torus/fat-tree) × queue discipline (drop-tail/lossy-NACK/PFC)
//! combination of the pluggable interconnect, reporting throughput,
//! deflection/drop/pause rates, and link occupancy.
//!
//! Flags:
//!
//! - `--quick` — CI scale (fewer transactions per CPU);
//! - `--topology=<mesh|torus|fattree>` — narrow the sweep to one shape;
//! - `--queue=<droptail|lossy|pfc>` — narrow the sweep to one
//!   discipline;
//! - `--check` — exit nonzero unless some swept point shows measurable
//!   congestion (nonzero drops or pause stalls — this is what the CI
//!   `scale-smoke` step runs; the per-row packet-ledger conservation is
//!   asserted unconditionally inside the sweep);
//! - `--metrics=<path>` — write the sweep as JSON;
//! - `--parallel=<n>` — run every machine with `n` lane workers
//!   (bit-identical to serial; only wall-clock changes);
//! - `--store=<dir>` — persistent result store; see
//!   `piranha::observe::StoreCli`.
use piranha::experiments::{self, ScaleReport};
use piranha::observe::{self, FabricCli, ParallelCli, ProbeCli, StoreCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let quick = std::env::args().any(|a| a == "--quick");
    let fabric = FabricCli::from_env_args();
    let (topology, queue) = match fabric.resolve() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let rep = experiments::fig_scale(quick, topology, queue);
    print!("{}", experiments::render_scale_report(&rep));

    let cli = ProbeCli::from_env_args();
    if let Some(path) = &cli.metrics {
        if let Err(e) = std::fs::write(path, observe::json::scale_report(&rep)) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("scale report -> {}", path.display());
    }

    if std::env::args().any(|a| a == "--check") {
        check(&rep);
        println!("scale-smoke checks passed");
    }
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}

/// The CI assertion: finite port buffers must actually bite somewhere
/// in the sweep — at least one row with drops (drop-tail/lossy) and at
/// least one with pause stalls (PFC). The packet-ledger conservation of
/// every row is already asserted inside `fig_scale` itself.
fn check(rep: &ScaleReport) {
    assert!(!rep.rows.is_empty(), "sweep produced no rows");
    assert!(
        rep.rows.iter().any(|r| r.fabric.drops > 0),
        "no swept point dropped a packet — port capacity never bit"
    );
    assert!(
        rep.rows
            .iter()
            .any(|r| r.fabric.pauses > 0 && r.fabric.drops == 0),
        "no PFC point paused without dropping"
    );
    for r in &rep.rows {
        assert!(
            r.fabric.delivered > 0 && r.committed > 0,
            "{}x{}x{}: degenerate row",
            r.nodes,
            r.topology,
            r.queue
        );
    }
}
