//! A worked example of the experiment service: submit a small plan of
//! runs, stream its progress, then resubmit the identical plan and show
//! the instant all-cached answer.
//!
//! By default the binary spawns an in-process server on an ephemeral
//! port (so the demo is self-contained and leaves nothing running);
//! point it at a long-running `piranha_serve` instead to exercise
//! cross-process reuse.
//!
//! Flags:
//!
//! - `--addr=<host:port>` — connect to an external `piranha_serve`
//!   instead of spawning one in-process;
//! - `--store=<dir>` — persistent result store for the in-process
//!   server (ignored with `--addr=`; the external server owns its
//!   store), with the usual `PIRANHA_STORE` fallback;
//! - `--parallel=<n>` — lane workers per simulation (in-process server
//!   only).
use std::sync::Arc;
use std::time::Instant;

use piranha::observe::{ParallelCli, StoreCli};
use piranha::serve::{Client, DiskStore, JobStatus, RunSpec, Server, ServerConfig};

fn main() {
    ParallelCli::from_env_args().apply();
    let addr = std::env::args().find_map(|a| a.strip_prefix("--addr=").map(str::to_string));

    // Without --addr=, run the whole service in this process.
    let (addr, local) = match addr {
        Some(a) => (a, None),
        None => {
            let store = StoreCli::from_env_args()
                .dir
                .map(|dir| match DiskStore::open(&dir) {
                    Ok(s) => Arc::new(s) as Arc<dyn piranha::harness::ResultStore>,
                    Err(e) => {
                        eprintln!("cannot open result store {}: {e}", dir.display());
                        std::process::exit(1);
                    }
                });
            let server = Server::bind("127.0.0.1:0", store, ServerConfig::default())
                .expect("bind an ephemeral port");
            let addr = server.local_addr().expect("bound socket has an address");
            println!("in-process server on {addr}");
            (addr.to_string(), Some(std::thread::spawn(|| server.run())))
        }
    };

    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let workers = client.ping().expect("ping");
    println!("connected to {addr} ({workers} workers)");

    // The demo plan: the paper's single-chip ladder plus a two-chip
    // machine, at the smallest scale so the cold pass stays snappy.
    let plan = vec![
        RunSpec::new("p1", "oltp", "tiny"),
        RunSpec::new("p4", "oltp", "tiny"),
        RunSpec::new("p8", "oltp", "tiny"),
        RunSpec::new("p4", "oltp", "tiny").with_chips(2),
        RunSpec::new("p8", "dss", "tiny"),
    ];

    let t0 = Instant::now();
    let ticket = client.submit(&plan).expect("submit");
    println!(
        "job {}: {} entries, {} answered from cache at submit",
        ticket.job, ticket.total, ticket.cached
    );
    client
        .watch(ticket.job, |ev| {
            if let Some(kind) = ev.get("event").and_then(|v| v.as_str()) {
                let label = ev.get("label").and_then(|v| v.as_str()).unwrap_or("");
                match kind {
                    "done" => {
                        let prov = ev.get("provenance").and_then(|v| v.as_str()).unwrap_or("?");
                        let ms = ev.get("wall_ms").and_then(|v| v.as_u64()).unwrap_or(0);
                        println!("  done    {label}  ({prov}, {ms} ms)");
                    }
                    "job_done" => {}
                    _ => println!("  {kind:<7} {label}"),
                }
            }
        })
        .expect("watch");
    let cold = t0.elapsed();
    let status = client.status(ticket.job).expect("status");
    print_table(&status);
    println!("cold pass: {:.2}s", cold.as_secs_f64());

    // The identical plan again: every entry must come straight out of
    // the in-memory cache, acknowledged as cached in the submit ack.
    let t1 = Instant::now();
    let again = client.submit(&plan).expect("resubmit");
    assert_eq!(
        again.cached, again.total,
        "a resubmitted plan must be fully cached"
    );
    let warm = client.status(again.job).expect("status");
    assert!(warm.is_done(), "a fully cached job completes at submit");
    println!(
        "job {}: {}/{} cached, answered in {:.1} ms",
        again.job,
        again.cached,
        again.total,
        t1.elapsed().as_secs_f64() * 1e3
    );

    if let Some(handle) = local {
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        println!("in-process server drained");
    }
}

fn print_table(status: &JobStatus) {
    println!("job {} — {}/{} done", status.job, status.done, status.total);
    for row in &status.rows {
        println!(
            "  {:<24} {:<8} {:<8} {:>6} ms  {}  {:.3} instrs/ns",
            row.label,
            row.state,
            row.provenance.as_deref().unwrap_or("-"),
            row.wall_ms.unwrap_or(0),
            row.fingerprint.as_deref().unwrap_or("-"),
            row.ipns.unwrap_or(0.0),
        );
    }
}
