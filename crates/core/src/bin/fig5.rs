//! Regenerates Figure 5: single-chip performance of Piranha (P1, P8)
//! versus the out-of-order (OOO) and in-order (INO) baselines on OLTP
//! and DSS, with execution-time breakdowns (OOO = 100).
//!
//! Flags: `--quick` (CI scale), `--fingerprints` (print one
//! `label\tfingerprint` line per run and nothing else — the CI golden
//! smoke diffs this against `tests/golden_fig5_quick.tsv`),
//! `--parallel=<n>` (run multi-chip machines with `n` lane workers —
//! bit-identical to serial; fig5's machines are all single-chip so the
//! flag only matters for the probed exemplar),
//! `--trace=<path>` (Chrome-trace JSON of a probed exemplar run),
//! `--metrics=<path>` (flat metric dump),
//! `--sample=<period>/<window>` (run every configuration under
//! SMARTS-style statistical sampling and print CPI / stall estimates
//! with 95% confidence intervals instead of the normalized figures),
//! `--traffic=<rate|curve>` (run the two-chip exemplar under open-loop
//! arrivals and print its tail-latency summary; see
//! `piranha::observe::TrafficCli` for the spec grammar),
//! `--store=<dir>` (persist every run in an on-disk result store and
//! resume from it on re-runs; `PIRANHA_STORE` works too — see
//! `piranha::observe::StoreCli`; a summary line goes to stderr).
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, ParallelCli, ProbeCli, SampleCli, StoreCli, TrafficCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let scale = scale_from_args();
    if std::env::args().any(|a| a == "--fingerprints") {
        print!(
            "{}",
            experiments::render_fingerprints(&experiments::fig5_fingerprints(scale))
        );
        report_store(&store);
        return;
    }
    if let Some(sample) = SampleCli::from_env_args().sample_config() {
        for (title, w) in [
            (
                "Figure 5 — OLTP, sampled (estimate ± 95% CI)",
                experiments::oltp(),
            ),
            (
                "Figure 5 — DSS, sampled (estimate ± 95% CI)",
                experiments::dss(),
            ),
        ] {
            println!(
                "{}",
                experiments::render_sampled_bars(
                    title,
                    &experiments::fig5_sampled(&w, scale, &sample)
                )
            );
        }
        report_store(&store);
        return;
    }
    println!(
        "{}",
        experiments::render_bars(
            "Figure 5 — OLTP (normalized execution time, OOO = 100)",
            &experiments::fig5(&experiments::oltp(), scale)
        )
    );
    println!(
        "{}",
        experiments::render_bars(
            "Figure 5 — DSS (normalized execution time, OOO = 100)",
            &experiments::fig5(&experiments::dss(), scale)
        )
    );
    run_probe_exports(scale);
    run_traffic_exemplar();
    report_store(&store);
}

fn report_store(store: &Option<std::sync::Arc<piranha::serve::DiskStore>>) {
    if let Some(store) = store {
        eprintln!("{}", observe::store_summary(store));
    }
}

fn run_traffic_exemplar() {
    let cli = TrafficCli::from_env_args();
    if !cli.active() {
        return;
    }
    match observe::run_traffic_exemplar(&cli, 20) {
        Ok(summary) => print!("{summary}"),
        Err(e) => {
            eprintln!("traffic exemplar failed: {e}");
            std::process::exit(1);
        }
    }
}

fn scale_from_args() -> RunScale {
    if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    }
}

fn run_probe_exports(scale: RunScale) {
    let cli = ProbeCli::from_env_args();
    if !cli.active() {
        return;
    }
    match observe::export_probed_run(&cli, &experiments::oltp(), scale) {
        Ok(summary) => print!("{summary}"),
        Err(e) => {
            eprintln!("probe export failed: {e}");
            std::process::exit(1);
        }
    }
}
