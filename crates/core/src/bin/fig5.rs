//! Regenerates Figure 5: single-chip performance of Piranha (P1, P8)
//! versus the out-of-order (OOO) and in-order (INO) baselines on OLTP
//! and DSS, with execution-time breakdowns (OOO = 100).
use piranha::experiments::{self, RunScale};

fn main() {
    let scale = scale_from_args();
    println!(
        "{}",
        experiments::render_bars(
            "Figure 5 — OLTP (normalized execution time, OOO = 100)",
            &experiments::fig5(&experiments::oltp(), scale)
        )
    );
    println!(
        "{}",
        experiments::render_bars(
            "Figure 5 — DSS (normalized execution time, OOO = 100)",
            &experiments::fig5(&experiments::dss(), scale)
        )
    );
}

fn scale_from_args() -> RunScale {
    if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    }
}
