//! Regenerates Figure 8: the performance potential of a full-custom
//! Piranha (P8F) on OLTP and DSS (OOO = 100).
use piranha::experiments::{self, RunScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    println!(
        "{}",
        experiments::render_bars(
            "Figure 8 — OLTP (OOO = 100)",
            &experiments::fig8(&experiments::oltp(), scale)
        )
    );
    println!(
        "{}",
        experiments::render_bars(
            "Figure 8 — DSS (OOO = 100)",
            &experiments::fig8(&experiments::dss(), scale)
        )
    );
}
