//! Regenerates Figure 8: the performance potential of a full-custom
//! Piranha (P8F) on OLTP and DSS (OOO = 100).
//!
//! Flags: `--quick` (CI scale), `--trace=<path>` (Chrome-trace JSON of
//! a probed exemplar run), `--metrics=<path>` (flat metric dump).
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, ProbeCli};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    println!(
        "{}",
        experiments::render_bars(
            "Figure 8 — OLTP (OOO = 100)",
            &experiments::fig8(&experiments::oltp(), scale)
        )
    );
    println!(
        "{}",
        experiments::render_bars(
            "Figure 8 — DSS (OOO = 100)",
            &experiments::fig8(&experiments::dss(), scale)
        )
    );
    let cli = ProbeCli::from_env_args();
    if cli.active() {
        match observe::export_probed_run(&cli, &experiments::dss(), scale) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("probe export failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
