//! Regenerates Figure 8: the performance potential of a full-custom
//! Piranha (P8F) on OLTP and DSS (OOO = 100).
//!
//! Flags: `--quick` (CI scale), `--parallel=<n>` (run multi-chip
//! machines with `n` lane workers — bit-identical to serial),
//! `--fingerprints` (print one `label\tfingerprint` line per run and
//! nothing else; includes the Figure 7 multi-chip rows so the CI
//! parsim smoke exercises the quantum engine), `--trace=<path>`
//! (Chrome-trace JSON of a probed exemplar run), `--metrics=<path>`
//! (flat metric dump), `--topology=`/`--queue=` (run the two-chip
//! exemplar on an overridden fabric and print its fabric counters; see
//! `piranha::observe::FabricCli`), `--store=<dir>` (persistent result
//! store; see `piranha::observe::StoreCli`).
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, FabricCli, ParallelCli, ProbeCli, StoreCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    if std::env::args().any(|a| a == "--fingerprints") {
        print!(
            "{}",
            experiments::render_fingerprints(&experiments::fig8_fingerprints(scale))
        );
        report_store(&store);
        return;
    }
    println!(
        "{}",
        experiments::render_bars(
            "Figure 8 — OLTP (OOO = 100)",
            &experiments::fig8(&experiments::oltp(), scale)
        )
    );
    println!(
        "{}",
        experiments::render_bars(
            "Figure 8 — DSS (OOO = 100)",
            &experiments::fig8(&experiments::dss(), scale)
        )
    );
    let cli = ProbeCli::from_env_args();
    if cli.active() {
        match observe::export_probed_run(&cli, &experiments::dss(), scale) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("probe export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let fabric = FabricCli::from_env_args();
    if fabric.active() {
        match observe::run_fabric_exemplar(&fabric, 20) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("fabric exemplar failed: {e}");
                std::process::exit(1);
            }
        }
    }
    report_store(&store);
}

fn report_store(store: &Option<std::sync::Arc<piranha::serve::DiskStore>>) {
    if let Some(store) = store {
        eprintln!("{}", observe::store_summary(store));
    }
}
