//! Regenerates Table 1: parameters for the different processor designs.
fn main() {
    println!("{}", piranha::experiments::table1());
}
