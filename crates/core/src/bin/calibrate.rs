//! Calibration helper: prints the key figure shapes at a chosen scale.
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, StoreCli};

fn main() {
    let store = StoreCli::from_env_args().apply();
    let scale = match std::env::args().nth(1).as_deref() {
        Some("full") => RunScale::full(),
        _ => RunScale::quick(),
    };
    let t0 = std::time::Instant::now();
    println!(
        "{}",
        experiments::render_bars("Fig5 OLTP", &experiments::fig5(&experiments::oltp(), scale))
    );
    println!("[{:.1}s]", t0.elapsed().as_secs_f32());
    println!(
        "{}",
        experiments::render_bars("Fig5 DSS", &experiments::fig5(&experiments::dss(), scale))
    );
    println!("[{:.1}s]", t0.elapsed().as_secs_f32());
    println!("Fig6a speedups: {:?}", experiments::fig6a(scale));
    println!("Fig6b breakdown: {:?}", experiments::fig6b(scale));
    println!("Mem page hit rate: {:.2}", experiments::mem_pages(scale));
    println!("[{:.1}s total]", t0.elapsed().as_secs_f32());
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}
