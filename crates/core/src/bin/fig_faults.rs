//! Availability under fault injection (paper §2.7): sweeps fault rate ×
//! configuration on a bounded OLTP workload run to completion, then runs
//! a headline faulted configuration **twice** to prove bit-identical
//! determinism, and reports the availability ledger.
//!
//! Flags:
//!
//! - `--quick` — CI scale (fewer transactions per CPU);
//! - `--faults=<seed|script>` — a `u64` seeds a random schedule; any
//!   other value is parsed as a fault script (`"corrupt@50, flap@60"`);
//! - `--fault-rate=<f64>` — injection rate of a seeded schedule
//!   (default `1e-4`);
//! - `--metrics=<path>` — write the headline availability report as
//!   JSON (this is what the CI `fault-smoke` step validates);
//! - `--parallel=<n>` — run multi-chip machines (the sweep's and the
//!   headline's) with `n` lane workers; bit-identical to serial;
//! - `--store=<dir>` — persistent result store; see
//!   `piranha::observe::StoreCli`.
use piranha::experiments::{self, RunScale};
use piranha::harness::run_config;
use piranha::observe::{self, FaultCli, ParallelCli, ProbeCli, StoreCli};
use piranha::FaultConfig;

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let quick = std::env::args().any(|a| a == "--quick");
    let txns: u64 = if quick { 40 } else { 200 };
    let fcli = FaultCli::from_env_args();
    let faults = match fcli.fault_config() {
        Ok(cfg) if cfg.enabled() => cfg,
        // No flags: still exercise the recovery machinery by default.
        Ok(_) => FaultConfig::seeded(42, 1e-4),
        Err(e) => {
            eprintln!("bad --faults value: {e}");
            std::process::exit(2);
        }
    };

    // The sweep: fault rate × configuration, through the memoized
    // parallel harness, each paired against its fault-free baseline.
    let seed = faults.seed;
    let rows = experiments::fig_faults(seed, txns);
    println!(
        "{}",
        experiments::render_fault_rows(
            &format!(
                "Availability — fault rate x configuration \
                 (bounded OLTP, {txns} txns/CPU, run to completion, seed {seed})"
            ),
            &rows
        )
    );

    // The headline run: the CLI-selected schedule on the two-chip
    // exemplar, executed twice to prove bit-identical determinism, plus
    // the fault-free baseline of the same machine for slowdown.
    let w = experiments::oltp_bounded(txns);
    let scale = RunScale::completion();
    let mut cfg = observe::exemplar_config();
    cfg.faults = faults;
    let r1 = run_config(cfg.clone(), &w, scale);
    let r2 = run_config(cfg.clone(), &w, scale);
    let mut base_cfg = cfg.clone();
    base_cfg.faults = FaultConfig::default();
    let base = run_config(base_cfg, &w, scale);

    assert_eq!(
        r1.fingerprint(),
        r2.fingerprint(),
        "same seed + same schedule must be bit-identical"
    );
    assert!(
        r1.availability.is_consistent(),
        "corrected + escalated != injected"
    );
    assert_eq!(
        r1.committed_txns, base.committed_txns,
        "a recoverable schedule must not lose work"
    );

    let slowdown = r1.window.as_ps() as f64 / base.window.as_ps().max(1) as f64;
    let av = &r1.availability;
    println!("Headline run: {} ({txns} txns/CPU)", cfg.name);
    println!(
        "  injected {}  corrected {}  escalated {}  retransmits {}  \
         mttr {} cycles  slowdown {slowdown:.4}x",
        av.injected,
        av.corrected,
        av.escalated,
        av.retransmits,
        av.mttr_cycles()
    );
    println!(
        "  fingerprint {:#018x} (repeat run identical: {})",
        r1.fingerprint(),
        r1.fingerprint() == r2.fingerprint()
    );

    let probe_cli = ProbeCli::from_env_args();
    if let Some(path) = &probe_cli.metrics {
        let body = observe::json::fault_headline(&cfg.name, txns, &r1, &r2, slowdown);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("  availability report -> {}", path.display());
    }
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}
