//! Tail latency versus offered load under open-loop traffic: calibrates
//! the closed-loop service rate of the two-chip P4 exemplar on a bounded
//! OLTP workload, then sweeps Poisson arrivals across fractions of that
//! rate and reports p50/p95/p99 transaction latency, drop rate, and the
//! saturation knee (the classic open-loop hockey-stick).
//!
//! Flags:
//!
//! - `--quick` — CI scale (fewer transactions per CPU);
//! - `--check` — exit nonzero unless p99 is monotone non-decreasing
//!   across the sweep (10% tolerance for sampling noise) and a knee was
//!   detected (this is what the CI `latency-smoke` step runs);
//! - `--metrics=<path>` — write the sweep as JSON;
//! - `--parallel=<n>` — run the multi-chip machines with `n` lane
//!   workers (bit-identical to serial; only wall-clock changes);
//! - `--topology=<ring|mesh|torus|fattree>` / `--queue=<droptail|lossy|pfc>`
//!   — sweep the same load fractions over an overridden fabric
//!   (calibration reruns on the overridden machine, so the load
//!   fractions stay anchored to *its* service rate);
//! - `--store=<dir>` — persistent result store; see
//!   `piranha::observe::StoreCli`.
use piranha::experiments::{self, LatencyReport};
use piranha::observe::{self, FabricCli, ParallelCli, ProbeCli, StoreCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = experiments::fig_latency_config();
    if let Err(e) = FabricCli::from_env_args().apply(&mut cfg) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let rep = experiments::fig_latency_on(cfg, quick);
    print!("{}", experiments::render_latency_report(&rep));

    let cli = ProbeCli::from_env_args();
    if let Some(path) = &cli.metrics {
        if let Err(e) = std::fs::write(path, observe::json::latency_report(&rep)) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("latency report -> {}", path.display());
    }

    if std::env::args().any(|a| a == "--check") {
        check(&rep);
        println!("latency-smoke checks passed");
    }
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}

/// The CI assertions: the hockey-stick must be monotone (within a 10%
/// sampling-noise tolerance between adjacent points) and must reach its
/// knee inside the swept range.
fn check(rep: &LatencyReport) {
    for pair in rep.rows.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        assert!(
            hi.p99_ns as f64 >= lo.p99_ns as f64 * 0.9,
            "p99 regressed with load: {} ns @ {:.2}x -> {} ns @ {:.2}x",
            lo.p99_ns,
            lo.fraction,
            hi.p99_ns,
            hi.fraction
        );
    }
    assert!(
        rep.knee.is_some(),
        "no saturation knee detected within the swept range"
    );
}
