//! Tail latency versus offered load under open-loop traffic: calibrates
//! the closed-loop service rate of the two-chip P4 exemplar on a bounded
//! OLTP workload, then sweeps Poisson arrivals across fractions of that
//! rate and reports p50/p95/p99 transaction latency, drop rate, and the
//! saturation knee (the classic open-loop hockey-stick).
//!
//! Flags:
//!
//! - `--quick` — CI scale (fewer transactions per CPU);
//! - `--check` — exit nonzero unless p99 is monotone non-decreasing
//!   across the sweep (10% tolerance for sampling noise) and a knee was
//!   detected (this is what the CI `latency-smoke` step runs);
//! - `--metrics=<path>` — write the sweep as JSON;
//! - `--parallel=<n>` — run the multi-chip machines with `n` lane
//!   workers (bit-identical to serial; only wall-clock changes);
//! - `--topology=<ring|mesh|torus|fattree>` / `--queue=<droptail|lossy|pfc>`
//!   — sweep the same load fractions over an overridden fabric
//!   (calibration reruns on the overridden machine, so the load
//!   fractions stay anchored to *its* service rate).
use piranha::experiments::{self, LatencyReport};
use piranha::observe::{FabricCli, ParallelCli, ProbeCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = experiments::fig_latency_config();
    if let Err(e) = FabricCli::from_env_args().apply(&mut cfg) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let rep = experiments::fig_latency_on(cfg, quick);
    print!("{}", experiments::render_latency_report(&rep));

    let cli = ProbeCli::from_env_args();
    if let Some(path) = &cli.metrics {
        if let Err(e) = std::fs::write(path, report_json(&rep)) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("latency report -> {}", path.display());
    }

    if std::env::args().any(|a| a == "--check") {
        check(&rep);
        println!("latency-smoke checks passed");
    }
}

/// The CI assertions: the hockey-stick must be monotone (within a 10%
/// sampling-noise tolerance between adjacent points) and must reach its
/// knee inside the swept range.
fn check(rep: &LatencyReport) {
    for pair in rep.rows.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        assert!(
            hi.p99_ns as f64 >= lo.p99_ns as f64 * 0.9,
            "p99 regressed with load: {} ns @ {:.2}x -> {} ns @ {:.2}x",
            lo.p99_ns,
            lo.fraction,
            hi.p99_ns,
            hi.fraction
        );
    }
    assert!(
        rep.knee.is_some(),
        "no saturation knee detected within the swept range"
    );
}

/// The JSON report the CI `latency-smoke` step uploads.
fn report_json(rep: &LatencyReport) -> String {
    let rows: Vec<String> = rep
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"fraction\":{},\"rate_tpmc\":{},\"p50_ns\":{},\
                 \"p95_ns\":{},\"p99_ns\":{},\"mean_ns\":{},\
                 \"drop_rate\":{},\"generated\":{},\"accepted\":{},\
                 \"dropped\":{},\"deferred\":{},\"completed\":{},\
                 \"fingerprint\":{}}}",
                r.fraction,
                r.rate_tpmc,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.mean_ns,
                r.drop_rate,
                r.ledger.generated,
                r.ledger.accepted,
                r.ledger.dropped,
                r.ledger.deferred,
                r.ledger.completed,
                r.fingerprint
            )
        })
        .collect();
    format!(
        "{{\"config\":\"{}\",\"txns_per_cpu\":{},\"service_tpmc\":{},\
         \"knee\":{},\"rows\":[{}]}}\n",
        rep.config,
        rep.txns_per_cpu,
        rep.service_tpmc,
        rep.knee.map_or("null".into(), |k| k.to_string()),
        rows.join(",")
    )
}
