//! Regenerates Figure 6: (a) Piranha's OLTP speedup with 1..8 on-chip
//! CPUs, and (b) the L1-miss breakdown (L2 hit / L2 fwd / L2 miss).
//!
//! Flags: `--quick` (CI scale), `--parallel=<n>` (lane workers for
//! multi-chip machines — here only the probed exemplar),
//! `--trace=<path>` (Chrome-trace JSON of a probed exemplar run),
//! `--metrics=<path>` (flat metric dump), `--store=<dir>` (persistent
//! result store; see `piranha::observe::StoreCli`).
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, ParallelCli, ProbeCli, StoreCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    println!("Figure 6(a) — OLTP speedup vs number of cores (P1 = 1.0)");
    for (name, s) in experiments::fig6a(scale) {
        println!("  {name:<4} {s:>6.2}x");
    }
    println!("\nFigure 6(b) — L1 miss breakdown (fractions)");
    println!(
        "  {:<4} {:>8} {:>8} {:>8}",
        "Cfg", "L2 Hit", "L2 Fwd", "L2 Miss"
    );
    for (name, h, f, m) in experiments::fig6b(scale) {
        println!("  {name:<4} {h:>8.2} {f:>8.2} {m:>8.2}");
    }
    let cli = ProbeCli::from_env_args();
    if cli.active() {
        match observe::export_probed_run(&cli, &experiments::oltp(), scale) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("probe export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}
