//! Regenerates the §2.4 claim: RDRAM open-page hit rate on OLTP with a
//! ~1 µs page-open policy.
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, StoreCli};

fn main() {
    let store = StoreCli::from_env_args().apply();
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    let r = experiments::mem_pages(scale);
    println!(
        "RDRAM open-page hit rate on OLTP (1µs hold): {:.0}%",
        r * 100.0
    );
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}
