//! The paper's §6 conjecture: web-server workloads like the AltaVista
//! search engine "exhibit behavior similar to decision support (DSS)
//! workloads" — so Piranha's throughput advantage should carry over.
use piranha::experiments::RunScale;
use piranha::workloads::{DssConfig, WebConfig, Workload};
use piranha::{Machine, SystemConfig};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    let web = Workload::Web(WebConfig::paper_default());
    let dss = Workload::Dss(DssConfig::paper_default());
    println!("§6 — AltaVista-like web search vs DSS (normalized time, OOO = 100)");
    println!("{:<10} {:>10} {:>10}", "Config", "Web", "DSS");
    let ooo_web = Machine::new(SystemConfig::ooo(), &web).run(scale.warmup, scale.measure);
    let ooo_dss = Machine::new(SystemConfig::ooo(), &dss).run(scale.warmup, scale.measure);
    for cfg in [
        SystemConfig::piranha_p1(),
        SystemConfig::ooo(),
        SystemConfig::piranha_p8(),
    ] {
        let name = cfg.name.clone();
        let w = Machine::new(cfg.clone(), &web).run(scale.warmup, scale.measure);
        let d = Machine::new(cfg, &dss).run(scale.warmup, scale.measure);
        println!(
            "{:<10} {:>10.1} {:>10.1}",
            name,
            w.normalized_time_vs(&ooo_web) * 100.0,
            d.normalized_time_vs(&ooo_dss) * 100.0
        );
    }
}
