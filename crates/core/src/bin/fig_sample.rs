//! Validates SMARTS-style statistical sampling against full detail:
//! runs a bounded OLTP workload to completion on P8 in detailed mode,
//! then once per sampling schedule with functional warming between
//! detailed windows, and reports CPI error, 95%-CI coverage, detailed
//! share, and host wall-clock speedup.
//!
//! Flags:
//!
//! - `--quick` — CI scale (fewer transactions per CPU);
//! - `--metrics=<path>` — write the sweep as JSON (this is what the CI
//!   `sample-smoke` step validates);
//! - `--parallel=<n>` — run detailed windows with `n` lane workers
//!   (single-chip P8 always runs serially; the flag is accepted for
//!   symmetry with the other figure binaries);
//! - `--store=<dir>` — persistent result store; see
//!   `piranha::observe::StoreCli`.
use piranha::experiments;
use piranha::observe::{self, ParallelCli, ProbeCli, StoreCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let quick = std::env::args().any(|a| a == "--quick");
    let rep = experiments::fig_sample(quick);
    print!("{}", experiments::render_sample_report(&rep));

    let cli = ProbeCli::from_env_args();
    if let Some(path) = &cli.metrics {
        if let Err(e) = std::fs::write(path, observe::json::sample_report(&rep)) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("sampling report -> {}", path.display());
    }
    if let Some(store) = &store {
        eprintln!("{}", observe::store_summary(store));
    }
}
