//! Validates SMARTS-style statistical sampling against full detail:
//! runs a bounded OLTP workload to completion on P8 in detailed mode,
//! then once per sampling schedule with functional warming between
//! detailed windows, and reports CPI error, 95%-CI coverage, detailed
//! share, and host wall-clock speedup.
//!
//! Flags:
//!
//! - `--quick` — CI scale (fewer transactions per CPU);
//! - `--metrics=<path>` — write the sweep as JSON (this is what the CI
//!   `sample-smoke` step validates);
//! - `--parallel=<n>` — run detailed windows with `n` lane workers
//!   (single-chip P8 always runs serially; the flag is accepted for
//!   symmetry with the other figure binaries).
use piranha::experiments::{self, SampleReport};
use piranha::observe::{ParallelCli, ProbeCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let quick = std::env::args().any(|a| a == "--quick");
    let rep = experiments::fig_sample(quick);
    print!("{}", experiments::render_sample_report(&rep));

    let cli = ProbeCli::from_env_args();
    if let Some(path) = &cli.metrics {
        if let Err(e) = std::fs::write(path, report_json(&rep)) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("sampling report -> {}", path.display());
    }
}

/// The JSON report the CI `sample-smoke` step validates.
fn report_json(rep: &SampleReport) -> String {
    let rows: Vec<String> = rep
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"period\":{},\"window\":{},\"windows\":{},\
                 \"cpi_mean\":{},\"cpi_ci95\":{},\"stall_mean\":{},\
                 \"detailed_fraction\":{},\"detailed_instrs\":{},\
                 \"warmed_instrs\":{},\"cpi_error\":{},\"within_ci\":{},\
                 \"speedup\":{},\"host_secs\":{}}}",
                r.period,
                r.window,
                r.estimate.windows,
                r.estimate.cpi_mean,
                r.estimate.cpi_ci95,
                r.estimate.stall_mean,
                r.estimate.detailed_fraction,
                r.estimate.detailed_instrs,
                r.estimate.warmed_instrs,
                r.cpi_error,
                r.within_ci,
                r.speedup,
                r.host_secs
            )
        })
        .collect();
    format!(
        "{{\"config\":\"{}\",\"txns_per_cpu\":{},\"ref_cpi\":{},\
         \"ref_committed\":{},\"host_secs_detailed\":{},\"rows\":[{}]}}\n",
        rep.config,
        rep.txns_per_cpu,
        rep.ref_cpi,
        rep.ref_committed,
        rep.host_secs_detailed,
        rows.join(",")
    )
}
