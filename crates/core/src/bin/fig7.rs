//! Regenerates Figure 7: OLTP speedup of multi-chip (NUMA) systems —
//! 4-CPU Piranha chips versus OOO chips, 1 to 4 chips.
use piranha::experiments::{self, RunScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    println!("Figure 7 — multi-chip OLTP speedup (vs each design's single chip)");
    println!("  {:<6} {:>10} {:>10}", "Chips", "Piranha", "OOO");
    for (chips, p, o) in experiments::fig7(scale) {
        println!("  {chips:<6} {p:>10.2} {o:>10.2}");
    }
}
