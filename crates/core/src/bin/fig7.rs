//! Regenerates Figure 7: OLTP speedup of multi-chip (NUMA) systems —
//! 4-CPU Piranha chips versus OOO chips, 1 to 4 chips.
//!
//! Flags: `--quick` (CI scale), `--parallel=<n>` (run each multi-chip
//! machine with `n` lane workers — bit-identical to serial),
//! `--fingerprints` (print one `label\tfingerprint` line per run and
//! nothing else), `--trace=<path>` (Chrome-trace JSON of a probed
//! exemplar run), `--metrics=<path>` (flat metric dump),
//! `--traffic=<rate|curve>` (run the two-chip exemplar under open-loop
//! arrivals and print its tail-latency summary; see
//! `piranha::observe::TrafficCli` for the spec grammar),
//! `--topology=`/`--queue=` (run the exemplar on an overridden fabric
//! and print its fabric counters; see `piranha::observe::FabricCli`),
//! `--store=<dir>` (persistent result store; see
//! `piranha::observe::StoreCli`).
use piranha::experiments::{self, RunScale};
use piranha::observe::{self, FabricCli, ParallelCli, ProbeCli, StoreCli, TrafficCli};

fn main() {
    ParallelCli::from_env_args().apply();
    let store = StoreCli::from_env_args().apply();
    let scale = if std::env::args().any(|a| a == "--quick") {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    if std::env::args().any(|a| a == "--fingerprints") {
        print!(
            "{}",
            experiments::render_fingerprints(&experiments::fig7_fingerprints(scale))
        );
        report_store(&store);
        return;
    }
    println!("Figure 7 — multi-chip OLTP speedup (vs each design's single chip)");
    println!("  {:<6} {:>10} {:>10}", "Chips", "Piranha", "OOO");
    for (chips, p, o) in experiments::fig7(scale) {
        println!("  {chips:<6} {p:>10.2} {o:>10.2}");
    }
    let cli = ProbeCli::from_env_args();
    if cli.active() {
        match observe::export_probed_run(&cli, &experiments::oltp(), scale) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("probe export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let traffic = TrafficCli::from_env_args();
    if traffic.active() {
        match observe::run_traffic_exemplar(&traffic, 20) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("traffic exemplar failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let fabric = FabricCli::from_env_args();
    if fabric.active() {
        match observe::run_fabric_exemplar(&fabric, 20) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("fabric exemplar failed: {e}");
                std::process::exit(1);
            }
        }
    }
    report_store(&store);
}

fn report_store(store: &Option<std::sync::Arc<piranha::serve::DiskStore>>) {
    if let Some(store) = store {
        eprintln!("{}", observe::store_summary(store));
    }
}
