//! Regenerators for every table and figure in the paper's evaluation
//! (§4). Each function runs the relevant configurations and returns the
//! same rows/series the paper reports; the `fig*`/`table*` binaries and
//! the Criterion benches print them.
//!
//! Absolute numbers will not match the paper (our substrate is a
//! from-scratch simulator with synthetic workloads), but the *shape* —
//! who wins, rough factors, crossovers — is the reproduction target; see
//! `EXPERIMENTS.md` for the side-by-side record.
//!
//! ## The harness
//!
//! All figures are produced through the parallel, memoizing
//! [`Harness`]: each figure declares the
//! `(SystemConfig, Workload, RunScale)` tuples it needs as a
//! [`RunPlan`], unique runs execute across scoped worker threads, and
//! shared baselines (OOO, P1, P8 appear in four or more figures each)
//! are simulated exactly once. [`all_figures`] regenerates the entire
//! evaluation through one shared cache; because every simulation is
//! deterministic, its output is bit-identical to the serial
//! [`all_figures_serial`] path.

use piranha_system::{
    FabricStats, FaultConfig, QueueDiscipline, RunResult, SystemConfig, TopologyKind,
    TrafficConfig, TrafficLedger,
};
use piranha_workloads::{DssConfig, OltpConfig, Workload};

pub use piranha_harness::{cache_key, default_threads, Harness, RunPlan, RunRequest, RunScale};

/// The two paper workloads.
pub fn oltp() -> Workload {
    Workload::Oltp(OltpConfig::paper_default())
}

/// The DSS (TPC-D Q6-like) workload.
pub fn dss() -> Workload {
    Workload::Dss(DssConfig::paper_default())
}

/// The TPC-C-like OLTP variant used by the §4 sensitivity analysis.
fn tpcc() -> Workload {
    Workload::Oltp(OltpConfig::tpcc_like())
}

/// Run one configuration against one workload (serially, no cache).
pub fn run_config(cfg: SystemConfig, w: &Workload, scale: RunScale) -> RunResult {
    piranha_harness::run_config(cfg, w, scale)
}

/// One bar of Figure 5/8: a configuration's normalized execution time
/// and its breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Configuration name.
    pub name: String,
    /// Execution time normalized to OOO = 100.
    pub norm_time: f64,
    /// CPU-busy component (same normalization).
    pub busy: f64,
    /// L2-hit stall component.
    pub l2_hit: f64,
    /// L2-miss stall component.
    pub l2_miss: f64,
}

impl Bar {
    fn from(r: &RunResult, base: &RunResult) -> Bar {
        let t = r.normalized_time_vs(base) * 100.0;
        let b = r.breakdown();
        Bar {
            name: r.name.clone(),
            norm_time: t,
            busy: t * b.busy,
            l2_hit: t * b.l2_hit,
            l2_miss: t * b.l2_miss,
        }
    }
}

/// **Table 1**: the configuration parameters of P8, OOO/INO, and P8F.
pub fn table1() -> String {
    let configs = [
        SystemConfig::piranha_p8(),
        SystemConfig::ooo(),
        SystemConfig::piranha_p8f(),
    ];
    let mut out = format!(
        "{:<28} {:>14} {:>14} {:>14}\n",
        "Parameter", "Piranha (P8)", "OOO/INO", "P8F (custom)"
    );
    let rows: Vec<_> = configs.iter().map(|c| c.table1_row()).collect();
    for (i, (label, p8)) in rows[0].iter().enumerate() {
        out.push_str(&format!(
            "{:<28} {:>14} {:>14} {:>14}\n",
            label, p8, rows[1][i].1, rows[2][i].1
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Per-figure plans: the simulations each figure needs. `all_figures`
// merges these into one deduplicated batch.
// ---------------------------------------------------------------------

fn fig5_plan(w: &Workload, scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    for cfg in [
        SystemConfig::piranha_p1(),
        SystemConfig::ooo(),
        SystemConfig::ino(),
        SystemConfig::piranha_p8(),
    ] {
        p.add(cfg, w.clone(), scale);
    }
    p
}

fn fig6_plan(scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    for n in [1usize, 2, 4, 8] {
        p.add(SystemConfig::piranha_pn(n), oltp(), scale);
    }
    p.add(SystemConfig::ooo(), oltp(), scale);
    p
}

fn fig7_plan(scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    p.add(SystemConfig::piranha_pn(4), oltp(), scale);
    p.add(SystemConfig::ooo(), oltp(), scale);
    for chips in [2usize, 4] {
        p.add(
            SystemConfig::piranha_pn(4).scaled_to_chips(chips),
            oltp(),
            scale,
        );
        p.add(SystemConfig::ooo().scaled_to_chips(chips), oltp(), scale);
    }
    p
}

fn fig8_plan(w: &Workload, scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    for cfg in [
        SystemConfig::ooo(),
        SystemConfig::piranha_p8(),
        SystemConfig::piranha_p8f(),
    ] {
        p.add(cfg, w.clone(), scale);
    }
    p
}

fn sensitivity_plan(scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    p.add(SystemConfig::ooo(), oltp(), scale);
    p.add(SystemConfig::piranha_p8(), oltp(), scale);
    p.add(SystemConfig::piranha_p8_pessimistic(), oltp(), scale);
    p.add(SystemConfig::ooo(), tpcc(), scale);
    p.add(SystemConfig::piranha_p8(), tpcc(), scale);
    p
}

fn mem_pages_plan(scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    p.add(SystemConfig::piranha_p8(), oltp(), scale);
    p
}

// ---------------------------------------------------------------------
// Figure assemblers: pull memoized results out of a harness. The
// public `figN(...)` wrappers execute the figure's own plan first, so
// standalone calls parallelize across the figure's configurations.
// ---------------------------------------------------------------------

/// **Figure 5**: single-chip normalized execution time (OOO = 100) with
/// CPU-busy / L2-hit / L2-miss breakdown, for P1, OOO, INO, P8, on the
/// given workload, assembled from `h`'s cache.
pub fn fig5_with(h: &mut Harness, w: &Workload, scale: RunScale) -> Vec<Bar> {
    let base = h.get(&SystemConfig::ooo(), w, scale);
    vec![
        Bar::from(&h.get(&SystemConfig::piranha_p1(), w, scale), &base),
        Bar::from(&base, &base),
        Bar::from(&h.get(&SystemConfig::ino(), w, scale), &base),
        Bar::from(&h.get(&SystemConfig::piranha_p8(), w, scale), &base),
    ]
}

/// **Figure 5** with a private parallel harness.
pub fn fig5(w: &Workload, scale: RunScale) -> Vec<Bar> {
    let mut h = Harness::new();
    h.execute(&fig5_plan(w, scale));
    fig5_with(&mut h, w, scale)
}

/// **Figure 5 under sampling** (the `--sample=<period>/<window>` flag):
/// each configuration runs once under SMARTS-style sampling instead of
/// full detail, so rows carry a CPI / stall-fraction estimate with 95%
/// confidence intervals rather than exact normalized figure numbers
/// (golden fingerprints only apply with the flag absent).
pub fn fig5_sampled(
    w: &Workload,
    scale: RunScale,
    sample: &piranha_system::SampleConfig,
) -> Vec<(String, piranha_system::SampleEstimate)> {
    [
        SystemConfig::piranha_p1(),
        SystemConfig::ooo(),
        SystemConfig::ino(),
        SystemConfig::piranha_p8(),
    ]
    .into_iter()
    .map(|cfg| {
        let name = cfg.name.clone();
        let r = piranha_harness::run_config_sampled(cfg, w, scale, sample);
        let est = r.sample.expect("sampled run carries an estimate");
        (name, est)
    })
    .collect()
}

/// Render sampled-run rows ([`fig5_sampled`]) as a text table.
pub fn render_sampled_bars(
    title: &str,
    rows: &[(String, piranha_system::SampleEstimate)],
) -> String {
    let mut out = format!(
        "{title}\n{:<8} {:>8} {:>14} {:>14} {:>8}\n",
        "Config", "Windows", "CPI±CI95", "Stall±CI95", "Detail%"
    );
    for (name, e) in rows {
        out.push_str(&format!(
            "{:<8} {:>8} {:>8.3}±{:.3} {:>8.3}±{:.3} {:>7.1}%\n",
            name,
            e.windows,
            e.cpi_mean,
            e.cpi_ci95,
            e.stall_mean,
            e.stall_ci,
            e.detailed_fraction * 100.0,
        ));
    }
    out
}

/// **Figure 6(a)**: OLTP speedup of an n-CPU Piranha chip over P1, for
/// n in {1, 2, 4, 8}, plus the OOO point for reference, assembled from
/// `h`'s cache. Returns `(name, speedup_vs_p1)` pairs.
pub fn fig6a_with(h: &mut Harness, scale: RunScale) -> Vec<(String, f64)> {
    let w = oltp();
    let p1 = h.get(&SystemConfig::piranha_p1(), &w, scale);
    let mut out = vec![("P1".to_string(), 1.0)];
    for n in [2usize, 4, 8] {
        let r = h.get(&SystemConfig::piranha_pn(n), &w, scale);
        out.push((format!("P{n}"), r.speedup_over(&p1)));
    }
    let ooo = h.get(&SystemConfig::ooo(), &w, scale);
    out.push(("OOO".to_string(), ooo.speedup_over(&p1)));
    out
}

/// **Figure 6(a)** with a private parallel harness.
pub fn fig6a(scale: RunScale) -> Vec<(String, f64)> {
    let mut h = Harness::new();
    h.execute(&fig6_plan(scale));
    fig6a_with(&mut h, scale)
}

/// **Figure 6(b)**: breakdown of L1 misses (L2 hit / L2 fwd / L2 miss)
/// for P1, P2, P4, P8 on OLTP, assembled from `h`'s cache. Returns
/// `(name, hit, fwd, miss)` rows, fractions summing to 1.
pub fn fig6b_with(h: &mut Harness, scale: RunScale) -> Vec<(String, f64, f64, f64)> {
    let w = oltp();
    [1usize, 2, 4, 8]
        .iter()
        .map(|&n| {
            let r = h.get(&SystemConfig::piranha_pn(n), &w, scale);
            let (hit, f, m) = r.l1_miss_breakdown();
            (format!("P{n}"), hit, f, m)
        })
        .collect()
}

/// **Figure 6(b)** with a private parallel harness.
pub fn fig6b(scale: RunScale) -> Vec<(String, f64, f64, f64)> {
    let mut h = Harness::new();
    h.execute(&fig6_plan(scale));
    fig6b_with(&mut h, scale)
}

/// **Figure 7**: OLTP speedup of multi-chip systems (1, 2, 4 chips),
/// Piranha with 4 CPUs/chip versus OOO chips, each normalized to its own
/// single-chip result, assembled from `h`'s cache. Returns
/// `(chips, piranha_speedup, ooo_speedup)`.
pub fn fig7_with(h: &mut Harness, scale: RunScale) -> Vec<(usize, f64, f64)> {
    let w = oltp();
    let p_base = h.get(&SystemConfig::piranha_pn(4), &w, scale);
    let o_base = h.get(&SystemConfig::ooo(), &w, scale);
    let mut out = vec![(1, 1.0, 1.0)];
    for chips in [2usize, 4] {
        let p = h.get(
            &SystemConfig::piranha_pn(4).scaled_to_chips(chips),
            &w,
            scale,
        );
        let o = h.get(&SystemConfig::ooo().scaled_to_chips(chips), &w, scale);
        out.push((chips, p.speedup_over(&p_base), o.speedup_over(&o_base)));
    }
    out
}

/// **Figure 7** with a private parallel harness.
pub fn fig7(scale: RunScale) -> Vec<(usize, f64, f64)> {
    let mut h = Harness::new();
    h.execute(&fig7_plan(scale));
    fig7_with(&mut h, scale)
}

/// **Figure 8**: the full-custom chip (P8F) against OOO and P8, on the
/// given workload (OOO = 100), assembled from `h`'s cache.
pub fn fig8_with(h: &mut Harness, w: &Workload, scale: RunScale) -> Vec<Bar> {
    let base = h.get(&SystemConfig::ooo(), w, scale);
    vec![
        Bar::from(&base, &base),
        Bar::from(&h.get(&SystemConfig::piranha_p8(), w, scale), &base),
        Bar::from(&h.get(&SystemConfig::piranha_p8f(), w, scale), &base),
    ]
}

/// **Figure 8** with a private parallel harness.
pub fn fig8(w: &Workload, scale: RunScale) -> Vec<Bar> {
    let mut h = Harness::new();
    h.execute(&fig8_plan(w, scale));
    fig8_with(&mut h, w, scale)
}

/// **§4 sensitivity**: the pessimistic P8 (400 MHz, 32 KB 1-way L1s,
/// 22/32 ns L2) and the TPC-C-like workload, assembled from `h`'s
/// cache. Returns `(label, speedup_over_ooo)` rows.
pub fn sensitivity_with(h: &mut Harness, scale: RunScale) -> Vec<(String, f64)> {
    let w = oltp();
    let ooo = h.get(&SystemConfig::ooo(), &w, scale);
    let p8 = h.get(&SystemConfig::piranha_p8(), &w, scale);
    let pess = h.get(&SystemConfig::piranha_p8_pessimistic(), &w, scale);
    let tpcc_w = tpcc();
    let ooo_c = h.get(&SystemConfig::ooo(), &tpcc_w, scale);
    let p8_c = h.get(&SystemConfig::piranha_p8(), &tpcc_w, scale);
    vec![
        ("P8 vs OOO (TPC-B)".into(), p8.speedup_over(&ooo)),
        (
            "P8-pessimistic vs OOO (TPC-B)".into(),
            pess.speedup_over(&ooo),
        ),
        ("P8-pessimistic vs P8".into(), pess.speedup_over(&p8)),
        ("P8 vs OOO (TPC-C-like)".into(), p8_c.speedup_over(&ooo_c)),
    ]
}

/// **§4 sensitivity** with a private parallel harness.
pub fn sensitivity(scale: RunScale) -> Vec<(String, f64)> {
    let mut h = Harness::new();
    h.execute(&sensitivity_plan(scale));
    sensitivity_with(&mut h, scale)
}

/// **§2.4 claim**: RDRAM open-page hit rate on OLTP (the paper reports
/// >50% with ~1 µs page-open time), assembled from `h`'s cache.
pub fn mem_pages_with(h: &mut Harness, scale: RunScale) -> f64 {
    h.get(&SystemConfig::piranha_p8(), &oltp(), scale)
        .mem_page_hit_rate
}

/// **§2.4 claim** with a private harness.
pub fn mem_pages(scale: RunScale) -> f64 {
    let mut h = Harness::new();
    h.execute(&mem_pages_plan(scale));
    mem_pages_with(&mut h, scale)
}

// ---------------------------------------------------------------------
// Fault injection & availability (paper §2.7): the fig_faults sweep.
// ---------------------------------------------------------------------

/// The per-consult fault rates `fig_faults` sweeps (0 is the paired
/// fault-free baseline of each configuration).
pub const FAULT_RATES: [f64; 4] = [0.0, 1e-5, 1e-4, 1e-3];

/// A bounded OLTP workload (`txn_limit` transactions per CPU stream) —
/// the run-to-completion workload of the fault experiments, so a
/// faulted run provably commits the same work as its baseline.
pub fn oltp_bounded(txns_per_cpu: u64) -> Workload {
    Workload::Oltp(OltpConfig {
        txn_limit: txns_per_cpu,
        ..OltpConfig::paper_default()
    })
}

/// The configurations the fault sweep covers: the paper's single-chip
/// P8 and a two-chip P4 system (the latter exercises the inter-chip
/// link recovery paths).
fn fig_faults_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::piranha_p8(),
        SystemConfig::piranha_pn(4).scaled_to_chips(2),
    ]
}

fn faulted(mut cfg: SystemConfig, seed: u64, rate: f64) -> SystemConfig {
    if rate > 0.0 {
        cfg.faults = FaultConfig::seeded(seed, rate);
    }
    cfg
}

/// One row of the fault-rate × configuration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Configuration name.
    pub config: String,
    /// Injection rate per consult point (0 = baseline).
    pub rate: f64,
    /// The availability ledger of the run.
    pub availability: piranha_system::AvailabilityReport,
    /// Transactions committed (must match the baseline row exactly).
    pub committed: u64,
    /// Run time relative to the rate-0 baseline (1.0 = no slowdown).
    pub slowdown: f64,
    /// The run's deterministic fingerprint.
    pub fingerprint: u64,
}

/// The plan of every simulation `fig_faults` needs.
pub fn fig_faults_plan(seed: u64, txns_per_cpu: u64) -> RunPlan {
    let w = oltp_bounded(txns_per_cpu);
    let mut p = RunPlan::new();
    for cfg in fig_faults_configs() {
        for rate in FAULT_RATES {
            p.add(
                faulted(cfg.clone(), seed, rate),
                w.clone(),
                RunScale::completion(),
            );
        }
    }
    p
}

/// Assemble the fault sweep from `h`'s cache: for each configuration,
/// the fault-free baseline plus each nonzero rate, with slowdown
/// measured against the fingerprint-verified baseline.
///
/// # Panics
///
/// Panics if a faulted run commits different work than its baseline or
/// its availability ledger is inconsistent — both are structural
/// guarantees of the recovery machinery.
pub fn fig_faults_with(h: &mut Harness, seed: u64, txns_per_cpu: u64) -> Vec<FaultRow> {
    let w = oltp_bounded(txns_per_cpu);
    let mut rows = Vec::new();
    for cfg in fig_faults_configs() {
        let base = h.get(&faulted(cfg.clone(), seed, 0.0), &w, RunScale::completion());
        let base_committed = base.committed_txns.expect("bounded workload reports work");
        for rate in FAULT_RATES {
            let r = h.get(
                &faulted(cfg.clone(), seed, rate),
                &w,
                RunScale::completion(),
            );
            assert!(
                r.availability.is_consistent(),
                "{}@{rate}: corrected + escalated != injected",
                cfg.name
            );
            let committed = r.committed_txns.expect("bounded workload reports work");
            assert_eq!(
                committed, base_committed,
                "{}@{rate}: a recoverable fault rate must not lose work",
                cfg.name
            );
            let slowdown = r.window.as_ps() as f64 / base.window.as_ps().max(1) as f64;
            let mut availability = r.availability.clone();
            availability.slowdown = Some(slowdown);
            rows.push(FaultRow {
                config: cfg.name.clone(),
                rate,
                availability,
                committed,
                slowdown,
                fingerprint: r.fingerprint(),
            });
        }
    }
    rows
}

/// The fault sweep with a private parallel harness.
pub fn fig_faults(seed: u64, txns_per_cpu: u64) -> Vec<FaultRow> {
    let mut h = Harness::new();
    h.execute(&fig_faults_plan(seed, txns_per_cpu));
    fig_faults_with(&mut h, seed, txns_per_cpu)
}

/// Render the fault sweep as a text table.
pub fn render_fault_rows(title: &str, rows: &[FaultRow]) -> String {
    let mut out = format!(
        "{title}\n{:<10} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}\n",
        "Config",
        "Rate",
        "Injected",
        "Corrected",
        "Escalated",
        "Retrans",
        "MTTR",
        "Committed",
        "Slowdown"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>8.0e} {:>8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>8.3}x\n",
            r.config,
            r.rate,
            r.availability.injected,
            r.availability.corrected,
            r.availability.escalated,
            r.availability.retransmits,
            r.availability.mttr_cycles(),
            r.committed,
            r.slowdown,
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Statistical sampling (SMARTS-style): the fig_sample sweep.
// ---------------------------------------------------------------------

/// The `(period, window)` pairs `fig_sample` sweeps, in instructions
/// per CPU: denser and sparser detailed-window schedules around the
/// ~10% detailed share SMARTS-style sampling targets. The pairs are
/// sized to the workload (`quick` streams are ~82k instructions per
/// CPU, full ones ~825k) so the windows span the whole stream rather
/// than clustering in its prologue.
pub fn sample_specs(quick: bool) -> [(u64, u64); 3] {
    if quick {
        [(2_500, 400), (4_000, 400), (8_000, 400)]
    } else {
        [(12_500, 1_000), (25_000, 1_000), (50_000, 1_000)]
    }
}

/// Aggregate CPI of a detailed run: wall cycles × CPUs over total
/// instructions — the same cycles-over-instructions quantity a sampled
/// run estimates per window.
pub fn aggregate_cpi(r: &RunResult) -> f64 {
    let cycles = r.clock.cycles(r.window) as f64 * r.cpus.len() as f64;
    cycles / r.total_instrs().max(1) as f64
}

/// One row of the sampling-period sweep.
#[derive(Debug, Clone)]
pub struct SampleRow {
    /// Sampling period (instructions per CPU between window starts).
    pub period: u64,
    /// Detailed-window length (instructions per CPU).
    pub window: u64,
    /// The sampled run's estimate.
    pub estimate: piranha_system::SampleEstimate,
    /// Relative CPI error versus the detailed reference.
    pub cpi_error: f64,
    /// Whether the reference CPI falls inside the estimate's 95% CI.
    pub within_ci: bool,
    /// Host wall-clock speedup of the sampled run over full detail.
    pub speedup: f64,
    /// Host seconds the sampled run took.
    pub host_secs: f64,
}

/// The `fig_sample` sweep: the detailed reference plus one row per
/// sampling schedule.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Configuration name.
    pub config: String,
    /// Transactions per CPU of the bounded OLTP workload.
    pub txns_per_cpu: u64,
    /// Aggregate CPI of the full-detail reference run.
    pub ref_cpi: f64,
    /// Transactions the reference committed.
    pub ref_committed: u64,
    /// Host seconds of the full-detail reference run.
    pub host_secs_detailed: f64,
    /// One row per sampling schedule.
    pub rows: Vec<SampleRow>,
}

/// **Sampling validation**: run a bounded OLTP workload to completion
/// on P8 in full detail, then once per [`sample_specs`] schedule under
/// SMARTS-style sampling, and report CPI error, CI coverage, and
/// wall-clock speedup. `quick` shrinks the workload to CI scale.
///
/// # Panics
///
/// Panics if a sampled run commits different work than the detailed
/// reference — functional warming executes the same instruction
/// streams, so completed work must match exactly.
pub fn fig_sample(quick: bool) -> SampleReport {
    let cfg = SystemConfig::piranha_p8();
    let txns = if quick { 200 } else { 2_000 };
    let w = oltp_bounded(txns);
    let scale = RunScale::completion();

    let t0 = std::time::Instant::now();
    let detailed = run_config(cfg.clone(), &w, scale);
    let host_secs_detailed = t0.elapsed().as_secs_f64();
    let ref_cpi = aggregate_cpi(&detailed);
    let ref_committed = detailed
        .committed_txns
        .expect("bounded workload reports work");

    let rows = sample_specs(quick)
        .iter()
        .map(|&(period, window)| {
            let sample = piranha_system::SampleConfig::new(period, window);
            let t = std::time::Instant::now();
            let r = piranha_harness::run_config_sampled(cfg.clone(), &w, scale, &sample);
            let host_secs = t.elapsed().as_secs_f64();
            let est = r.sample.clone().expect("sampled run carries an estimate");
            assert_eq!(
                r.committed_txns,
                Some(ref_committed),
                "functional warming must complete the same work"
            );
            SampleRow {
                period,
                window,
                cpi_error: (est.cpi_mean - ref_cpi).abs() / ref_cpi,
                within_ci: est.covers_cpi(ref_cpi),
                speedup: host_secs_detailed / host_secs.max(1e-9),
                host_secs,
                estimate: est,
            }
        })
        .collect();

    SampleReport {
        config: cfg.name,
        txns_per_cpu: txns,
        ref_cpi,
        ref_committed,
        host_secs_detailed,
        rows,
    }
}

/// Render the sampling sweep as a text table.
pub fn render_sample_report(rep: &SampleReport) -> String {
    let mut out = format!(
        "Sampling vs full detail — {} (bounded OLTP, {} txns/CPU, run to completion)\n\
         reference CPI {:.4} ({} txns committed, {:.2}s host)\n\
         {:<16} {:>8} {:>12} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
        rep.config,
        rep.txns_per_cpu,
        rep.ref_cpi,
        rep.ref_committed,
        rep.host_secs_detailed,
        "Period/Window",
        "Windows",
        "CPI±CI95",
        "Err%",
        "InCI",
        "Detail%",
        "Speedup",
        "Host(s)"
    );
    for r in &rep.rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>5.3}±{:.3} {:>7.2}% {:>9} {:>8.1}% {:>8.2}x {:>9.2}\n",
            format!("{}/{}", r.period, r.window),
            r.estimate.windows,
            r.estimate.cpi_mean,
            r.estimate.cpi_ci95,
            r.cpi_error * 100.0,
            if r.within_ci { "yes" } else { "NO" },
            r.estimate.detailed_fraction * 100.0,
            r.speedup,
            r.host_secs,
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Open-loop traffic (piranha-traffic): the fig_latency sweep.
// ---------------------------------------------------------------------

/// The offered-load fractions of the measured closed-loop service rate
/// that `fig_latency` sweeps: well below, approaching, and past the
/// saturation knee. The open-loop hockey-stick — tail latency flat at
/// low load, super-linear past the knee — only shows up because the
/// arrival process keeps offering work whether or not the cores are
/// ready.
pub const LOAD_FRACTIONS: [f64; 5] = [0.2, 0.5, 0.8, 1.1, 1.5];

/// The configuration `fig_latency` loads: the two-chip P4 exemplar, so
/// the sweep exercises arrival admission across the quantum-stepped
/// multi-chip engine (worker-invariance is guarded by
/// `tests/traffic_determinism.rs`).
pub fn fig_latency_config() -> SystemConfig {
    SystemConfig::piranha_pn(4).scaled_to_chips(2)
}

/// One offered-load point of the latency sweep.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Offered load as a fraction of the calibrated service rate.
    pub fraction: f64,
    /// Offered load in transactions per million cycles per core.
    pub rate_tpmc: f64,
    /// Median transaction latency (birth → commit), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile transaction latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile transaction latency, nanoseconds.
    pub p99_ns: u64,
    /// Mean transaction latency, nanoseconds.
    pub mean_ns: f64,
    /// Fraction of generated transactions shed at the admission gate.
    pub drop_rate: f64,
    /// The full generated/accepted/dropped/deferred/completed ledger.
    pub ledger: TrafficLedger,
    /// The run's deterministic fingerprint.
    pub fingerprint: u64,
}

/// The `fig_latency` sweep: calibration plus one row per load fraction.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// Configuration name.
    pub config: String,
    /// Transactions per CPU of the bounded OLTP workload.
    pub txns_per_cpu: u64,
    /// Calibrated closed-loop service rate, transactions per million
    /// cycles per core (the `1.0` point of [`LOAD_FRACTIONS`]).
    pub service_tpmc: f64,
    /// One row per offered-load fraction, in sweep order.
    pub rows: Vec<LatencyRow>,
    /// Index of the first row past the knee (p99 more than 3× the
    /// lowest-load row, or any drops), if the sweep reached it.
    pub knee: Option<usize>,
}

/// **Tail latency vs offered load**: calibrate the closed-loop service
/// rate of [`fig_latency_config`] on a bounded OLTP workload, then
/// sweep open-loop Poisson arrivals across [`LOAD_FRACTIONS`] of that
/// rate and report p50/p95/p99 transaction latency and drop rate at
/// each point. `quick` shrinks the workload to CI scale.
///
/// Every run is deterministic, so the whole report (fingerprints
/// included) is reproducible bit-for-bit at any `--parallel` worker
/// count.
///
/// # Panics
///
/// Panics if a loaded run's traffic ledger does not conserve
/// (`accepted + dropped + deferred == generated`) — a structural
/// guarantee of the admission gate.
pub fn fig_latency(quick: bool) -> LatencyReport {
    fig_latency_on(fig_latency_config(), quick)
}

/// [`fig_latency`] on an explicit configuration — the
/// `--topology=`/`--queue=` rider of the latency binary sweeps the same
/// load fractions over an overridden fabric.
///
/// # Panics
///
/// Panics as [`fig_latency`] does when a traffic ledger fails to
/// conserve.
pub fn fig_latency_on(cfg: SystemConfig, quick: bool) -> LatencyReport {
    let txns = if quick { 12 } else { 60 };
    let w = oltp_bounded(txns);

    // Closed-loop calibration: with no arrival gating the machine runs
    // at 100% utilization, so committed work over wall cycles is the
    // per-core service rate the load fractions are anchored to.
    let base = run_config(cfg.clone(), &w, RunScale::completion());
    let committed = base.committed_txns.expect("bounded workload reports work") as f64;
    let cycles = base.clock.cycles(base.window).max(1) as f64;
    let service_tpmc = committed / base.cpus.len() as f64 / cycles * 1e6;

    let rows: Vec<LatencyRow> = LOAD_FRACTIONS
        .iter()
        .map(|&fraction| {
            let rate_tpmc = fraction * service_tpmc;
            let traffic = TrafficConfig::poisson(rate_tpmc);
            let r = piranha_harness::run_config_traffic(
                cfg.clone(),
                &w,
                RunScale::completion(),
                traffic,
            );
            let t = r.traffic.clone().expect("traffic was enabled");
            assert!(
                t.ledger.conserved(),
                "{} @ {fraction}: ledger must conserve, got {:?}",
                cfg.name,
                t.ledger
            );
            LatencyRow {
                fraction,
                rate_tpmc,
                p50_ns: t.p50_ns(),
                p95_ns: t.p95_ns(),
                p99_ns: t.p99_ns(),
                mean_ns: t.latency.mean_ns(),
                drop_rate: t.ledger.drop_rate(),
                ledger: t.ledger,
                fingerprint: r.fingerprint(),
            }
        })
        .collect();

    let knee = rows
        .iter()
        .position(|r| r.drop_rate > 0.0 || r.p99_ns > rows[0].p99_ns.saturating_mul(3));

    LatencyReport {
        config: cfg.name,
        txns_per_cpu: txns,
        service_tpmc,
        rows,
        knee,
    }
}

/// Render the latency sweep as a text table.
pub fn render_latency_report(rep: &LatencyReport) -> String {
    let mut out = format!(
        "Tail latency vs offered load — {} (bounded OLTP, {} txns/CPU, open-loop Poisson)\n\
         calibrated service rate {:.2} txns per million cycles per core\n\
         {:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}\n",
        rep.config,
        rep.txns_per_cpu,
        rep.service_tpmc,
        "Load",
        "Rate",
        "p50(ns)",
        "p95(ns)",
        "p99(ns)",
        "mean(ns)",
        "Drop%",
        "Offered"
    );
    for (i, r) in rep.rows.iter().enumerate() {
        let marker = if rep.knee == Some(i) { "  <- knee" } else { "" };
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>10} {:>10} {:>10} {:>10.0} {:>7.2}% {:>8}{}\n",
            format!("{:.2}x", r.fraction),
            r.rate_tpmc,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.mean_ns,
            r.drop_rate * 100.0,
            r.ledger.generated,
            marker
        ));
    }
    if rep.knee.is_none() {
        out.push_str("(no knee within the swept range)\n");
    }
    out
}

// ---------------------------------------------------------------------
// Fabric congestion at scale: the fig_scale sweep (16–64 nodes ×
// topology × queue discipline over the pluggable interconnect).
// ---------------------------------------------------------------------

/// The machine sizes (single-CPU chips) the scale sweep covers.
pub const SCALE_NODES: [usize; 3] = [16, 32, 64];

/// The explicit fabric shapes the scale sweep covers. `Auto` and `Ring`
/// are omitted: auto is the paper layout the other figures already
/// measure, and a 64-node ring is pathological enough to drown the
/// comparison.
pub const SCALE_TOPOLOGIES: [TopologyKind; 3] = [
    TopologyKind::Mesh,
    TopologyKind::Torus,
    TopologyKind::FatTree,
];

/// The queue disciplines the scale sweep covers, each bounded at the
/// congested port capacity
/// ([`piranha_net::CONGESTED_CAPACITY_NS`]) so finite buffering
/// actually bites.
pub fn scale_queues() -> [QueueDiscipline; 3] {
    let capacity = piranha_types::Duration::from_ns(piranha_net::CONGESTED_CAPACITY_NS);
    [
        QueueDiscipline::DropTail { capacity },
        QueueDiscipline::LossyNack { capacity },
        QueueDiscipline::Pfc { capacity },
    ]
}

/// One `nodes × topology × queue` point of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Processing-node count (single-CPU chips).
    pub nodes: usize,
    /// Fabric shape label (`mesh`/`torus`/`fattree`).
    pub topology: &'static str,
    /// Queue-discipline label (`droptail`/`lossy`/`pfc`).
    pub queue: &'static str,
    /// Transactions committed (identical across queue disciplines of
    /// one size — the fabric delays work, never loses it).
    pub committed: u64,
    /// Closed-loop throughput, transactions per million cycles per
    /// core.
    pub tpmc: f64,
    /// Final simulated time, microseconds.
    pub sim_us: f64,
    /// The fabric counters of the run (delivery ledger, deflections,
    /// drops, pauses, link occupancy aggregates).
    pub fabric: FabricStats,
    /// Mean link utilization over the run.
    pub occupancy: f64,
    /// The run's deterministic fingerprint.
    pub fingerprint: u64,
}

/// The `fig_scale` sweep.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Transactions per CPU of the bounded OLTP workload.
    pub txns_per_cpu: u64,
    /// One row per `nodes × topology × queue` combination, nodes
    /// outermost.
    pub rows: Vec<ScaleRow>,
}

/// **Fabric congestion at scale**: run bounded OLTP to completion on
/// machines of 16/32/64 single-CPU chips over every
/// [`SCALE_TOPOLOGIES`] × [`scale_queues`] combination, and report
/// throughput, deflection/drop/pause rates, and link occupancy.
/// Optional filters narrow the sweep to one shape or discipline (the
/// `--topology=`/`--queue=` riders). `quick` shrinks the workload to CI
/// scale.
///
/// Every run is deterministic, so the whole report (fingerprints
/// included) is reproducible bit-for-bit at any `--parallel` worker
/// count.
///
/// # Panics
///
/// Panics if any row violates the packet ledger — a structural
/// guarantee of the fabric: every walk either delivers or retransmits
/// (`delivered + retransmits == walks`), bounded-queue refusals are
/// exactly the non-fault retransmits (`drops == retransmits`, since the
/// sweep injects no link faults), and PFC pauses instead of dropping
/// (`drops == 0`).
pub fn fig_scale(
    quick: bool,
    topology: Option<TopologyKind>,
    queue: Option<QueueDiscipline>,
) -> ScaleReport {
    let txns = if quick { 2 } else { 6 };
    let w = oltp_bounded(txns);
    let workers = piranha_harness::node_workers();
    let mut rows = Vec::new();
    for nodes in SCALE_NODES {
        for topo in SCALE_TOPOLOGIES {
            if topology.is_some_and(|t| t != topo) {
                continue;
            }
            for q in scale_queues() {
                if queue.is_some_and(|f| f.label() != q.label()) {
                    continue;
                }
                let mut cfg = SystemConfig::piranha_pn(1).scaled_to_chips(nodes);
                cfg.topology = topo;
                cfg.net.queue = q;
                let (r, m) = piranha_harness::run_config_parallel_machine(
                    cfg,
                    &w,
                    RunScale::completion(),
                    workers,
                );
                let fs = m.fabric_stats();
                assert_eq!(
                    fs.delivered + fs.retransmits,
                    fs.walks,
                    "{nodes}x{}x{}: every walk must deliver or retransmit",
                    topo.label(),
                    q.label()
                );
                assert_eq!(
                    fs.drops,
                    fs.retransmits,
                    "{nodes}x{}x{}: faultless runs retransmit only on drops",
                    topo.label(),
                    q.label()
                );
                if matches!(q, QueueDiscipline::Pfc { .. }) {
                    assert_eq!(fs.drops, 0, "PFC pauses instead of dropping");
                }
                let committed = r.committed_txns.expect("bounded workload reports work");
                let cycles = r.clock.cycles(r.window).max(1) as f64;
                let elapsed = m.now().since(piranha_types::SimTime::ZERO);
                rows.push(ScaleRow {
                    nodes,
                    topology: topo.label(),
                    queue: q.label(),
                    committed,
                    tpmc: committed as f64 / r.cpus.len() as f64 / cycles * 1e6,
                    sim_us: elapsed.as_ps() as f64 / 1e6,
                    occupancy: fs.occupancy(elapsed),
                    fabric: fs,
                    fingerprint: r.fingerprint(),
                });
            }
        }
    }
    ScaleReport {
        txns_per_cpu: txns,
        rows,
    }
}

/// Render the scale sweep as a text table.
pub fn render_scale_report(rep: &ScaleReport) -> String {
    let mut out = format!(
        "Fabric congestion at scale — bounded OLTP ({} txns/CPU) on single-CPU chips\n\
         {:<6} {:<8} {:<9} {:>8} {:>7} {:>10} {:>9} {:>7} {:>7} {:>8} {:>6}\n",
        rep.txns_per_cpu,
        "Nodes",
        "Fabric",
        "Queue",
        "Txns",
        "tpmc",
        "Delivered",
        "Deflect",
        "Drops",
        "Pauses",
        "MeanHop",
        "Occ%"
    );
    for r in &rep.rows {
        out.push_str(&format!(
            "{:<6} {:<8} {:<9} {:>8} {:>7.2} {:>10} {:>9} {:>7} {:>7} {:>8.2} {:>5.1}%\n",
            r.nodes,
            r.topology,
            r.queue,
            r.committed,
            r.tpmc,
            r.fabric.delivered,
            r.fabric.deflections,
            r.fabric.drops,
            r.fabric.pauses,
            r.fabric.mean_hops,
            r.occupancy * 100.0
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Golden fingerprints: the event-ordering regression guard. Every
// refactor of the simulator core must keep these bit-identical — the
// checked-in `tests/golden_fingerprints.tsv` is diffed by
// `tests/golden_fingerprint.rs` and by the CI smoke job.
// ---------------------------------------------------------------------

/// Fault-schedule seed of the golden set (the `fig_faults` headline
/// schedule, shared with the CI fault smoke).
pub const GOLDEN_FAULT_SEED: u64 = 42;

/// Transactions per CPU of the golden bounded-OLTP completion runs.
pub const GOLDEN_FAULT_TXNS: u64 = 3;

fn workload_tag(w: &Workload) -> String {
    match w {
        Workload::Oltp(c) if c.txn_limit > 0 => format!("oltp[txn={}]", c.txn_limit),
        Workload::Oltp(_) => "oltp".into(),
        Workload::Dss(c) if c.line_limit > 0 => format!("dss[lines={}]", c.line_limit),
        Workload::Dss(_) => "dss".into(),
        Workload::Synth(_) => "synth".into(),
        Workload::Web(_) => "web".into(),
    }
}

fn scale_tag(scale: RunScale) -> String {
    if scale.to_completion {
        "completion".into()
    } else {
        format!("w{}+m{}", scale.warmup, scale.measure)
    }
}

/// A short, stable, human-readable label naming one golden run:
/// `config|workload|scale[|faults]`. Unique across [`golden_plan`]
/// (asserted by the golden test).
pub fn golden_label(req: &RunRequest) -> String {
    let mut label = format!(
        "{}|{}|{}",
        req.cfg.name,
        workload_tag(&req.workload),
        scale_tag(req.scale)
    );
    if req.cfg.faults.enabled() {
        label.push_str(&format!(
            "|faults[seed={},rate={:e}]",
            req.cfg.faults.seed, req.cfg.faults.rate
        ));
    }
    label
}

/// The golden plan: every fig5–fig8 configuration at `scale` plus the
/// fig_faults headline schedule (seed [`GOLDEN_FAULT_SEED`],
/// [`GOLDEN_FAULT_TXNS`] transactions per CPU, run to completion).
pub fn golden_plan(scale: RunScale) -> RunPlan {
    let mut p = RunPlan::new();
    p.merge(fig5_plan(&oltp(), scale));
    p.merge(fig5_plan(&dss(), scale));
    p.merge(fig6_plan(scale));
    p.merge(fig7_plan(scale));
    p.merge(fig8_plan(&oltp(), scale));
    p.merge(fig8_plan(&dss(), scale));
    p.merge(fig_faults_plan(GOLDEN_FAULT_SEED, GOLDEN_FAULT_TXNS));
    p
}

fn plan_fingerprints(plan: &RunPlan) -> Vec<(String, u64)> {
    let mut h = Harness::new();
    h.execute(plan);
    plan.requests()
        .iter()
        .map(|req| {
            let r = h.get(&req.cfg, &req.workload, req.scale);
            (golden_label(req), r.fingerprint())
        })
        .collect()
}

/// Labeled deterministic fingerprints of the whole golden set, in plan
/// order.
pub fn golden_fingerprints(scale: RunScale) -> Vec<(String, u64)> {
    plan_fingerprints(&golden_plan(scale))
}

/// Labeled fingerprints of just the Figure 5 runs (OLTP + DSS) — the
/// cheap subset the CI smoke job diffs via `fig5 --fingerprints`.
pub fn fig5_fingerprints(scale: RunScale) -> Vec<(String, u64)> {
    let mut plan = fig5_plan(&oltp(), scale);
    plan.merge(fig5_plan(&dss(), scale));
    plan_fingerprints(&plan)
}

/// Labeled fingerprints of the Figure 7 multi-chip scaling runs — the
/// rows that exercise the conservative parallel engine (every other
/// figure's configs are single-chip except fig7's 2- and 4-chip
/// points).
pub fn fig7_fingerprints(scale: RunScale) -> Vec<(String, u64)> {
    plan_fingerprints(&fig7_plan(scale))
}

/// Labeled fingerprints of the Figure 8 runs (OLTP + DSS) plus the
/// Figure 7 multi-chip scaling runs — the subset the CI parsim smoke
/// diffs via `fig8 --quick --parallel=2 --fingerprints`. The fig7 rows
/// ride along because fig8's own configurations are single-chip; with
/// them the smoke provably drives multi-chip machines through the
/// quantum-stepped engine and still matches the serially-blessed
/// golden file.
pub fn fig8_fingerprints(scale: RunScale) -> Vec<(String, u64)> {
    let mut plan = fig8_plan(&oltp(), scale);
    plan.merge(fig8_plan(&dss(), scale));
    plan.merge(fig7_plan(scale));
    plan_fingerprints(&plan)
}

/// Render labeled fingerprints in the golden-file format: one
/// `label\tfingerprint-hex` line per run.
pub fn render_fingerprints(rows: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (label, fp) in rows {
        out.push_str(&format!("{label}\t{fp:016x}\n"));
    }
    out
}

// ---------------------------------------------------------------------
// The whole evaluation in one batch.
// ---------------------------------------------------------------------

/// Every figure of the paper's §4 evaluation, regenerated together.
#[derive(Debug, Clone, PartialEq)]
pub struct Figures {
    /// Figure 5 on OLTP.
    pub fig5_oltp: Vec<Bar>,
    /// Figure 5 on DSS.
    pub fig5_dss: Vec<Bar>,
    /// Figure 6(a): chip-level speedup over P1.
    pub fig6a: Vec<(String, f64)>,
    /// Figure 6(b): L1-miss breakdown.
    pub fig6b: Vec<(String, f64, f64, f64)>,
    /// Figure 7: multi-chip scaling.
    pub fig7: Vec<(usize, f64, f64)>,
    /// Figure 8 on OLTP.
    pub fig8_oltp: Vec<Bar>,
    /// Figure 8 on DSS.
    pub fig8_dss: Vec<Bar>,
    /// §4 sensitivity rows.
    pub sensitivity: Vec<(String, f64)>,
    /// §2.4 RDRAM open-page hit rate.
    pub mem_page_hit_rate: f64,
}

/// The union plan of every figure at one scale.
pub fn all_figures_plan(scale: RunScale) -> RunPlan {
    let mut plan = RunPlan::new();
    plan.merge(fig5_plan(&oltp(), scale));
    plan.merge(fig5_plan(&dss(), scale));
    plan.merge(fig6_plan(scale));
    plan.merge(fig7_plan(scale));
    plan.merge(fig8_plan(&oltp(), scale));
    plan.merge(fig8_plan(&dss(), scale));
    plan.merge(sensitivity_plan(scale));
    plan.merge(mem_pages_plan(scale));
    plan
}

/// Assemble every figure from `h`'s cache (executing the union plan
/// first so the assembly itself is all cache hits).
pub fn all_figures_with(h: &mut Harness, scale: RunScale) -> Figures {
    h.execute(&all_figures_plan(scale));
    Figures {
        fig5_oltp: fig5_with(h, &oltp(), scale),
        fig5_dss: fig5_with(h, &dss(), scale),
        fig6a: fig6a_with(h, scale),
        fig6b: fig6b_with(h, scale),
        fig7: fig7_with(h, scale),
        fig8_oltp: fig8_with(h, &oltp(), scale),
        fig8_dss: fig8_with(h, &dss(), scale),
        sensitivity: sensitivity_with(h, scale),
        mem_page_hit_rate: mem_pages_with(h, scale),
    }
}

/// Regenerate the entire §4 evaluation through one parallel, memoizing
/// harness: every shared baseline (OOO, P1, P8, …) is simulated exactly
/// once per workload, and the unique runs fan out across worker threads
/// (`PIRANHA_THREADS` overrides the count). Bit-identical to
/// [`all_figures_serial`].
pub fn all_figures(scale: RunScale) -> Figures {
    let mut h = Harness::new();
    all_figures_with(&mut h, scale)
}

/// The pre-harness behavior, kept as the performance and correctness
/// baseline: each figure runs serially with its own private cache, so
/// cross-figure baselines are re-simulated from scratch (35 runs at
/// paper shape versus the ~19 unique ones `all_figures` executes).
pub fn all_figures_serial(scale: RunScale) -> Figures {
    let serial_fig = |plan: RunPlan| {
        let mut h = Harness::serial();
        h.execute(&plan);
        h
    };
    let fig5_oltp = fig5_with(&mut serial_fig(fig5_plan(&oltp(), scale)), &oltp(), scale);
    let fig5_dss = fig5_with(&mut serial_fig(fig5_plan(&dss(), scale)), &dss(), scale);
    let fig6a = fig6a_with(&mut serial_fig(fig6_plan(scale)), scale);
    let fig6b = fig6b_with(&mut serial_fig(fig6_plan(scale)), scale);
    let fig7 = fig7_with(&mut serial_fig(fig7_plan(scale)), scale);
    let fig8_oltp = fig8_with(&mut serial_fig(fig8_plan(&oltp(), scale)), &oltp(), scale);
    let fig8_dss = fig8_with(&mut serial_fig(fig8_plan(&dss(), scale)), &dss(), scale);
    let sensitivity = sensitivity_with(&mut serial_fig(sensitivity_plan(scale)), scale);
    let mem_page_hit_rate = mem_pages_with(&mut serial_fig(mem_pages_plan(scale)), scale);
    Figures {
        fig5_oltp,
        fig5_dss,
        fig6a,
        fig6b,
        fig7,
        fig8_oltp,
        fig8_dss,
        sensitivity,
        mem_page_hit_rate,
    }
}

impl Figures {
    /// Render every figure as one text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&render_bars(
            "Figure 5 — OLTP (normalized execution time, OOO = 100)",
            &self.fig5_oltp,
        ));
        out.push('\n');
        out.push_str(&render_bars(
            "Figure 5 — DSS (normalized execution time, OOO = 100)",
            &self.fig5_dss,
        ));
        out.push_str("\nFigure 6(a) — OLTP speedup over P1\n");
        for (name, s) in &self.fig6a {
            out.push_str(&format!("{name:<10} {s:>8.2}x\n"));
        }
        out.push_str("\nFigure 6(b) — L1 miss breakdown (hit/fwd/miss)\n");
        for (name, h, f, m) in &self.fig6b {
            out.push_str(&format!("{name:<10} {h:>6.2} {f:>6.2} {m:>6.2}\n"));
        }
        out.push_str("\nFigure 7 — multi-chip speedup (Piranha P4 vs OOO)\n");
        for (chips, p, o) in &self.fig7 {
            out.push_str(&format!("{chips} chip(s)  P4 {p:>6.2}x  OOO {o:>6.2}x\n"));
        }
        out.push('\n');
        out.push_str(&render_bars(
            "Figure 8 — OLTP (P8F, OOO = 100)",
            &self.fig8_oltp,
        ));
        out.push('\n');
        out.push_str(&render_bars(
            "Figure 8 — DSS (P8F, OOO = 100)",
            &self.fig8_dss,
        ));
        out.push_str("\nSensitivity (§4)\n");
        for (label, s) in &self.sensitivity {
            out.push_str(&format!("{label:<32} {s:>6.2}x\n"));
        }
        out.push_str(&format!(
            "\nRDRAM open-page hit rate on OLTP: {:.0}%\n",
            self.mem_page_hit_rate * 100.0
        ));
        out
    }
}

/// Render a set of Figure-5-style bars as a text table.
pub fn render_bars(title: &str, bars: &[Bar]) -> String {
    let mut out = format!(
        "{title}\n{:<10} {:>10} {:>10} {:>10} {:>10}\n",
        "Config", "NormTime", "Busy", "L2HitStall", "L2MissStall"
    );
    for b in bars {
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            b.name, b.norm_time, b.busy, b.l2_hit, b.l2_miss
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_configs() {
        let t = table1();
        assert!(t.contains("500 MHz"));
        assert!(t.contains("1000 MHz"));
        assert!(t.contains("1250 MHz"));
        assert!(t.contains("Issue Width"));
    }

    #[test]
    fn bar_normalization() {
        use piranha_types::time::Clock;
        use piranha_types::Duration;
        let base = RunResult::new(
            "OOO".into(),
            Duration::from_ns(1000),
            Clock::from_mhz(1000),
            vec![piranha_cpu::CoreStats {
                instrs: 1000,
                ..Default::default()
            }],
        );
        let twice = RunResult::new(
            "X".into(),
            Duration::from_ns(2000),
            Clock::from_mhz(500),
            vec![piranha_cpu::CoreStats {
                instrs: 1000,
                ..Default::default()
            }],
        );
        let b = Bar::from(&twice, &base);
        assert!((b.norm_time - 200.0).abs() < 1e-9);
        assert!(
            (b.busy - 200.0).abs() < 1e-6,
            "no stalls recorded: all busy"
        );
    }

    #[test]
    fn render_is_readable() {
        let bars = vec![Bar {
            name: "P8".into(),
            norm_time: 34.0,
            busy: 20.0,
            l2_hit: 9.0,
            l2_miss: 5.0,
        }];
        let s = render_bars("Figure 5 (OLTP)", &bars);
        assert!(s.contains("P8"));
        assert!(s.contains("34.0"));
    }

    #[test]
    fn union_plan_dedups_shared_baselines() {
        let plan = all_figures_plan(RunScale::quick());
        // 35 figure slots collapse to the unique configurations: the
        // OOO/P1/P8 baselines appear in several figures but only once
        // in the plan.
        assert!(plan.len() < 25, "plan must deduplicate: got {}", plan.len());
        let keys: std::collections::HashSet<_> = plan.requests().iter().map(|r| r.key()).collect();
        assert_eq!(keys.len(), plan.len(), "all keys unique");
    }

    #[test]
    fn fault_sweep_is_consistent_and_loses_no_work() {
        let rows = fig_faults(42, 3);
        assert_eq!(rows.len(), fig_faults_configs().len() * FAULT_RATES.len());
        for cfg in fig_faults_configs() {
            let per: Vec<&FaultRow> = rows.iter().filter(|r| r.config == cfg.name).collect();
            let base = per.iter().find(|r| r.rate == 0.0).unwrap();
            assert_eq!(base.availability.injected, 0);
            assert!((base.slowdown - 1.0).abs() < 1e-12);
            for r in &per {
                // fig_faults_with already asserts ledger consistency and
                // committed-work equality; re-check the rendered facts.
                assert_eq!(r.committed, base.committed);
                assert!(r.slowdown > 0.0);
            }
        }
        let highest = rows
            .iter()
            .filter(|r| r.rate == 1e-3)
            .map(|r| r.availability.injected)
            .sum::<u64>();
        assert!(highest > 0, "the top rate injects something");
        let table = render_fault_rows("Availability", &rows);
        assert!(table.contains("P8") && table.contains("Slowdown"));
    }
}
