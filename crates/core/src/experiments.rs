//! Regenerators for every table and figure in the paper's evaluation
//! (§4). Each function runs the relevant configurations and returns the
//! same rows/series the paper reports; the `fig*`/`table*` binaries and
//! the Criterion benches print them.
//!
//! Absolute numbers will not match the paper (our substrate is a
//! from-scratch simulator with synthetic workloads), but the *shape* —
//! who wins, rough factors, crossovers — is the reproduction target; see
//! `EXPERIMENTS.md` for the side-by-side record.

use piranha_system::{Machine, RunResult, SystemConfig};
use piranha_workloads::{DssConfig, OltpConfig, Workload};

/// How long to run each configuration. Figures in the paper used 500
/// OLTP transactions; we size in instructions per CPU.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Warm-up instructions per CPU (caches, open pages, BTB).
    pub warmup: u64,
    /// Measured instructions per CPU.
    pub measure: u64,
}

impl RunScale {
    /// Full-size runs for the shipped figures.
    pub fn full() -> Self {
        RunScale { warmup: 600_000, measure: 1_000_000 }
    }

    /// Small runs for CI / Criterion iterations.
    pub fn quick() -> Self {
        RunScale { warmup: 200_000, measure: 300_000 }
    }
}

/// The two paper workloads.
pub fn oltp() -> Workload {
    Workload::Oltp(OltpConfig::paper_default())
}

/// The DSS (TPC-D Q6-like) workload.
pub fn dss() -> Workload {
    Workload::Dss(DssConfig::paper_default())
}

/// Run one configuration against one workload.
pub fn run_config(cfg: SystemConfig, w: &Workload, scale: RunScale) -> RunResult {
    let mut m = Machine::new(cfg, w);
    m.run(scale.warmup, scale.measure)
}

/// One bar of Figure 5/8: a configuration's normalized execution time
/// and its breakdown.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Configuration name.
    pub name: String,
    /// Execution time normalized to OOO = 100.
    pub norm_time: f64,
    /// CPU-busy component (same normalization).
    pub busy: f64,
    /// L2-hit stall component.
    pub l2_hit: f64,
    /// L2-miss stall component.
    pub l2_miss: f64,
}

impl Bar {
    fn from(r: &RunResult, base: &RunResult) -> Bar {
        let t = r.normalized_time_vs(base) * 100.0;
        let b = r.breakdown();
        Bar {
            name: r.name.clone(),
            norm_time: t,
            busy: t * b.busy,
            l2_hit: t * b.l2_hit,
            l2_miss: t * b.l2_miss,
        }
    }
}

/// **Table 1**: the configuration parameters of P8, OOO/INO, and P8F.
pub fn table1() -> String {
    let configs =
        [SystemConfig::piranha_p8(), SystemConfig::ooo(), SystemConfig::piranha_p8f()];
    let mut out = format!(
        "{:<28} {:>14} {:>14} {:>14}\n",
        "Parameter", "Piranha (P8)", "OOO/INO", "P8F (custom)"
    );
    let rows: Vec<_> = configs.iter().map(|c| c.table1_row()).collect();
    for (i, (label, p8)) in rows[0].iter().enumerate() {
        out.push_str(&format!(
            "{:<28} {:>14} {:>14} {:>14}\n",
            label, p8, rows[1][i].1, rows[2][i].1
        ));
    }
    out
}

/// **Figure 5**: single-chip normalized execution time (OOO = 100) with
/// CPU-busy / L2-hit / L2-miss breakdown, for P1, OOO, INO, P8, on the
/// given workload.
pub fn fig5(w: &Workload, scale: RunScale) -> Vec<Bar> {
    let base = run_config(SystemConfig::ooo(), w, scale);
    let mut bars = vec![Bar::from(&run_config(SystemConfig::piranha_p1(), w, scale), &base)];
    bars.push(Bar::from(&base, &base));
    bars.push(Bar::from(&run_config(SystemConfig::ino(), w, scale), &base));
    bars.push(Bar::from(&run_config(SystemConfig::piranha_p8(), w, scale), &base));
    bars
}

/// **Figure 6(a)**: OLTP speedup of an n-CPU Piranha chip over P1, for
/// n in {1, 2, 4, 8}, plus the OOO point for reference. Returns
/// `(name, speedup_vs_p1)` pairs.
pub fn fig6a(scale: RunScale) -> Vec<(String, f64)> {
    let w = oltp();
    let p1 = run_config(SystemConfig::piranha_p1(), &w, scale);
    let mut out = vec![("P1".to_string(), 1.0)];
    for n in [2usize, 4, 8] {
        let r = run_config(SystemConfig::piranha_pn(n), &w, scale);
        out.push((format!("P{n}"), r.speedup_over(&p1)));
    }
    let ooo = run_config(SystemConfig::ooo(), &w, scale);
    out.push(("OOO".to_string(), ooo.speedup_over(&p1)));
    out
}

/// **Figure 6(b)**: breakdown of L1 misses (L2 hit / L2 fwd / L2 miss)
/// for P1, P2, P4, P8 on OLTP. Returns `(name, hit, fwd, miss)` rows,
/// fractions summing to 1.
pub fn fig6b(scale: RunScale) -> Vec<(String, f64, f64, f64)> {
    let w = oltp();
    [1usize, 2, 4, 8]
        .iter()
        .map(|&n| {
            let r = run_config(SystemConfig::piranha_pn(n), &w, scale);
            let (h, f, m) = r.l1_miss_breakdown();
            (format!("P{n}"), h, f, m)
        })
        .collect()
}

/// **Figure 7**: OLTP speedup of multi-chip systems (1, 2, 4 chips),
/// Piranha with 4 CPUs/chip versus OOO chips, each normalized to its own
/// single-chip result. Returns `(chips, piranha_speedup, ooo_speedup)`.
pub fn fig7(scale: RunScale) -> Vec<(usize, f64, f64)> {
    let w = oltp();
    let p_base = run_config(SystemConfig::piranha_pn(4), &w, scale);
    let o_base = run_config(SystemConfig::ooo(), &w, scale);
    let mut out = vec![(1, 1.0, 1.0)];
    for chips in [2usize, 4] {
        let p = run_config(SystemConfig::piranha_pn(4).scaled_to_chips(chips), &w, scale);
        let o = run_config(SystemConfig::ooo().scaled_to_chips(chips), &w, scale);
        out.push((chips, p.speedup_over(&p_base), o.speedup_over(&o_base)));
    }
    out
}

/// **Figure 8**: the full-custom chip (P8F) against OOO and P8, on the
/// given workload (OOO = 100).
pub fn fig8(w: &Workload, scale: RunScale) -> Vec<Bar> {
    let base = run_config(SystemConfig::ooo(), w, scale);
    vec![
        Bar::from(&base, &base),
        Bar::from(&run_config(SystemConfig::piranha_p8(), w, scale), &base),
        Bar::from(&run_config(SystemConfig::piranha_p8f(), w, scale), &base),
    ]
}

/// **§4 sensitivity**: the pessimistic P8 (400 MHz, 32 KB 1-way L1s,
/// 22/32 ns L2) and the TPC-C-like workload. Returns
/// `(label, speedup_over_ooo)` rows.
pub fn sensitivity(scale: RunScale) -> Vec<(String, f64)> {
    let w = oltp();
    let ooo = run_config(SystemConfig::ooo(), &w, scale);
    let p8 = run_config(SystemConfig::piranha_p8(), &w, scale);
    let pess = run_config(SystemConfig::piranha_p8_pessimistic(), &w, scale);
    let tpcc = Workload::Oltp(OltpConfig::tpcc_like());
    let ooo_c = run_config(SystemConfig::ooo(), &tpcc, scale);
    let p8_c = run_config(SystemConfig::piranha_p8(), &tpcc, scale);
    vec![
        ("P8 vs OOO (TPC-B)".into(), p8.speedup_over(&ooo)),
        ("P8-pessimistic vs OOO (TPC-B)".into(), pess.speedup_over(&ooo)),
        ("P8-pessimistic vs P8".into(), pess.speedup_over(&p8)),
        ("P8 vs OOO (TPC-C-like)".into(), p8_c.speedup_over(&ooo_c)),
    ]
}

/// **§2.4 claim**: RDRAM open-page hit rate on OLTP (the paper reports
/// >50% with ~1 µs page-open time).
pub fn mem_pages(scale: RunScale) -> f64 {
    let mut m = Machine::new(SystemConfig::piranha_p8(), &oltp());
    m.run(scale.warmup, scale.measure);
    m.mem_page_hit_rate()
}

/// Render a set of Figure-5-style bars as a text table.
pub fn render_bars(title: &str, bars: &[Bar]) -> String {
    let mut out = format!("{title}\n{:<10} {:>10} {:>10} {:>10} {:>10}\n", "Config", "NormTime", "Busy", "L2HitStall", "L2MissStall");
    for b in bars {
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            b.name, b.norm_time, b.busy, b.l2_hit, b.l2_miss
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_configs() {
        let t = table1();
        assert!(t.contains("500 MHz"));
        assert!(t.contains("1000 MHz"));
        assert!(t.contains("1250 MHz"));
        assert!(t.contains("Issue Width"));
    }

    #[test]
    fn bar_normalization() {
        use piranha_types::time::Clock;
        use piranha_types::Duration;
        let base = RunResult::new(
            "OOO".into(),
            Duration::from_ns(1000),
            Clock::from_mhz(1000),
            vec![piranha_cpu::CoreStats { instrs: 1000, ..Default::default() }],
        );
        let twice = RunResult::new(
            "X".into(),
            Duration::from_ns(2000),
            Clock::from_mhz(500),
            vec![piranha_cpu::CoreStats { instrs: 1000, ..Default::default() }],
        );
        let b = Bar::from(&twice, &base);
        assert!((b.norm_time - 200.0).abs() < 1e-9);
        assert!((b.busy - 200.0).abs() < 1e-6, "no stalls recorded: all busy");
    }

    #[test]
    fn render_is_readable() {
        let bars = vec![Bar { name: "P8".into(), norm_time: 34.0, busy: 20.0, l2_hit: 9.0, l2_miss: 5.0 }];
        let s = render_bars("Figure 5 (OLTP)", &bars);
        assert!(s.contains("P8"));
        assert!(s.contains("34.0"));
    }
}
