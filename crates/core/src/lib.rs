//! # Piranha: a scalable architecture based on single-chip multiprocessing
//!
//! A full-system timing simulator reproducing the ISCA 2000 paper by
//! Barroso et al. This crate is the public facade of the workspace: it
//! re-exports every subsystem and provides the [`experiments`] module
//! that regenerates each table and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```no_run
//! use piranha::{Machine, SystemConfig};
//! use piranha::workloads::{OltpConfig, Workload};
//!
//! // Build the paper's 8-CPU Piranha chip running the OLTP workload.
//! let mut p8 = Machine::new(
//!     SystemConfig::piranha_p8(),
//!     &Workload::Oltp(OltpConfig::paper_default()),
//! );
//! let result = p8.run(200_000, 500_000);
//! println!(
//!     "P8: {:.2} instrs/ns, busy {:.0}%",
//!     result.throughput_ipns(),
//!     result.breakdown().busy * 100.0
//! );
//! ```
//!
//! ## Architecture map
//!
//! | Paper section | Module |
//! |---|---|
//! | §2.1 CPU core + L1s | [`cpu`], [`cache`] |
//! | §2.2 Intra-chip switch | [`ics`] |
//! | §2.3 Non-inclusive shared L2 | [`cache`] |
//! | §2.4 Memory controller / RDRAM | [`mem`] |
//! | §2.5 Protocol engines + inter-node protocol | [`protocol`] |
//! | §2.6 System interconnect | [`net`] |
//! | §2.7 Reliability (fault injection, ECC, recovery) | [`faults`] |
//! | §3.1 Workloads (OLTP, DSS) | [`workloads`] |
//! | §4 Evaluation | [`experiments`] |
//! | Observability (tracing & metrics) | [`probe`], [`observe`] |
//! | Result store & experiment service | [`serve`] |

#![warn(missing_docs)]

pub use piranha_system::{
    ArrivalKind, AvailabilityReport, CoreKind, CpuBreakdown, DiurnalCurve, FabricStats,
    FaultConfig, FaultKind, Machine, OverflowPolicy, ParsimStats, PathLatencies, Probe,
    ProbeConfig, QueueDiscipline, RoutePolicy, RunResult, SampleConfig, SampleEstimate,
    SystemConfig, TopologyKind, TraceLevel, TrafficConfig, TrafficLedger, TrafficSummary,
};

/// Shared architectural types (re-export of `piranha-types`).
pub mod types {
    pub use piranha_types::*;
}
/// Simulation kernel (re-export of `piranha-kernel`).
pub mod kernel {
    pub use piranha_kernel::*;
}
/// Alpha-like ISA (re-export of `piranha-isa`).
pub mod isa {
    pub use piranha_isa::*;
}
/// CPU timing models (re-export of `piranha-cpu`).
pub mod cpu {
    pub use piranha_cpu::*;
}
/// Cache hierarchy (re-export of `piranha-cache`).
pub mod cache {
    pub use piranha_cache::*;
}
/// Intra-chip switch (re-export of `piranha-ics`).
pub mod ics {
    pub use piranha_ics::*;
}
/// Memory and directory storage (re-export of `piranha-mem`).
pub mod mem {
    pub use piranha_mem::*;
}
/// Interconnect (re-export of `piranha-net`).
pub mod net {
    pub use piranha_net::*;
}
/// Parallel-in-space execution engine (re-export of `piranha-parsim`).
pub mod parsim {
    pub use piranha_parsim::*;
}
/// Protocol engines (re-export of `piranha-protocol`).
pub mod protocol {
    pub use piranha_protocol::*;
}
/// Workload engines (re-export of `piranha-workloads`).
pub mod workloads {
    pub use piranha_workloads::*;
}
/// Parallel, memoizing experiment harness (re-export of
/// `piranha-harness`).
pub mod harness {
    pub use piranha_harness::*;
}
/// Tracing & metrics subsystem (re-export of `piranha-probe`).
pub mod probe {
    pub use piranha_probe::*;
}
/// Persistent result store and long-running experiment service
/// (re-export of `piranha-serve`).
pub mod serve {
    pub use piranha_serve::*;
}
/// Fault injection, recovery, and availability reporting (re-export of
/// `piranha-faults`).
pub mod faults {
    pub use piranha_faults::*;
}

pub mod experiments;
pub mod observe;
